"""Shared helpers for the benchmark harness.

Every paper table/figure has a bench here.  Scale comes from
``REPRO_SCALE`` (default: the ``default`` preset — minutes, not hours;
``smoke`` collapses everything to seconds for CI).  Each bench both
*times* the experiment (pytest-benchmark) and *saves* its paper-style
rendering under ``results/`` so the reproduction is inspectable after the
run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import get_scale
from repro.experiments.reporting import results_dir


@pytest.fixture(scope="session")
def scale():
    """The active scale preset for this benchmark session."""
    return get_scale()


@pytest.fixture(scope="session")
def out_dir():
    """Directory where benches drop their rendered artifacts."""
    return results_dir()


def save_artifact(out_dir, name, text):
    """Write a rendered table/figure to results/<name>.txt and echo it."""
    path = os.path.join(out_dir, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[artifact: {path}]")
    return path
