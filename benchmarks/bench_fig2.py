"""Regenerates Fig. 2: accuracy vs NWC for the three large workloads.

Panels: (a) ConvNet/CIFAR, (b) ResNet-18/CIFAR, (c) ResNet-18/TinyImageNet.
Shape assertions per panel: SWIM dominates Magnitude and Random at
NWC=0.1, and the write-verify methods agree at NWC=1.0.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig2 import render_fig2_panel, run_fig2_panel

from .conftest import save_artifact


def _check_shape(outcome):
    swim = outcome.curve("swim")
    magnitude = outcome.curve("magnitude")
    random = outcome.curve("random")
    # Random never beats SWIM at the paper's headline budget.
    assert swim.means()[1] >= random.means()[1] - 0.01
    # Against Magnitude, compare the low-NWC region as a whole: at the
    # default scale each panel is one paired draw, and when the
    # unverified floor is already high (small dynamic range) a single
    # draw can favor either method at one isolated point.
    low = slice(1, 4)  # NWC in {0.1, 0.3, 0.5}
    assert swim.means()[low].mean() >= magnitude.means()[low].mean() - 0.02
    assert swim.means()[low].mean() >= random.means()[low].mean() - 0.01
    # All write-verify methods meet at NWC=1.0 (same verified weights).
    final = [c.means()[-1] for c in (swim, magnitude, random)]
    assert max(final) - min(final) < 0.03


@pytest.mark.parametrize("panel", ["a", "b", "c"])
def test_fig2(benchmark, scale, out_dir, panel):
    outcome = benchmark.pedantic(
        lambda: run_fig2_panel(scale, panel),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    save_artifact(out_dir, f"fig2{panel}", render_fig2_panel(outcome, panel))
    _check_shape(outcome)
