"""Benchmark: what fault tolerance costs, and what recovery buys.

Three questions about the robustness layer, each with a correctness
gate (byte-identical outcomes) attached:

1. **Supervision overhead** — the same fault-free retention grid run
   serially and under the supervised ``jobs=N`` pool.  Supervision
   (process-per-cell, result queue, liveness polling) must stay a
   small constant per cell, not a tax proportional to cell runtime.
2. **Recovery cost** — the same grid with an injected worker crash and
   a hung cell (killed by timeout): wall-clock overhead of detecting,
   killing, and retrying versus the fault-free parallel run, with the
   final rows still byte-identical.
3. **Resume speedup** — a fully-checkpointed grid re-run with
   ``resume=True``: the whole Monte Carlo cost collapses to cache
   reads, byte-identically.

Writes ``$REPRO_RESULTS_DIR/BENCH_robustness.json`` (CI uploads it)::

    PYTHONPATH=src python benchmarks/bench_robustness.py          # default
    PYTHONPATH=src python benchmarks/bench_robustness.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

METHODS = ("swim", "magnitude")
TECHNOLOGIES = ("pcm",)


def _rows(result):
    from repro.experiments.reporting import _sweep_rows

    return [
        row
        for key in sorted(result.outcomes)
        for row in _sweep_rows(result.outcomes[key], f"{key}")
    ]


def _run(scale, cache_root, jobs=None, resume=None, faults=None, ledger=None):
    """One retention grid run, returning (rows, seconds, RunReport)."""
    from repro.experiments.retention import run_retention
    from repro.plan import PlanArtifactCache

    previous = {
        key: os.environ.get(key)
        for key in ("REPRO_FAULTS", "REPRO_FAULTS_DIR", "REPRO_RETRY_BACKOFF")
    }
    if faults is not None:
        os.environ["REPRO_FAULTS"] = faults
        os.environ["REPRO_FAULTS_DIR"] = ledger
        os.environ["REPRO_RETRY_BACKOFF"] = "0"
    else:
        for key in previous:
            os.environ.pop(key, None)
    reports = []
    try:
        start = time.perf_counter()
        result = run_retention(
            scale,
            technologies=TECHNOLOGIES,
            methods=METHODS,
            plan_cache=PlanArtifactCache(root=cache_root),
            jobs=jobs,
            resume=resume,
            report_out=reports,
        )
        seconds = time.perf_counter() - start
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return _rows(result), seconds, reports[-1]


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the robustness layer's overhead and recovery."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale sanity run (CI)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="supervised worker count")
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: "
                             "$REPRO_RESULTS_DIR/BENCH_robustness.json)")
    args = parser.parse_args(argv)

    from repro.experiments.config import get_scale
    from repro.experiments.reporting import results_dir

    scale = get_scale("smoke" if args.smoke else "default")
    report = {"scale": scale.name, "jobs": args.jobs}
    failures = []

    print(f"# bench_robustness — scale: {scale.name}")
    with tempfile.TemporaryDirectory(prefix="bench-robust-") as root:
        serial_rows, serial_s, _ = _run(scale, os.path.join(root, "serial"))
        clean_rows, clean_s, clean_rep = _run(
            scale, os.path.join(root, "clean"), jobs=args.jobs
        )
        cells = len(clean_rep.cells)
        overhead = (clean_s - serial_s / max(args.jobs, 1)) / max(cells, 1)
        report["supervision"] = {
            "cells": cells,
            "serial_seconds": serial_s,
            "supervised_seconds": clean_s,
            "per_cell_overhead_seconds": overhead,
            "byte_identical": clean_rows == serial_rows,
        }
        print(
            f"supervision: serial {serial_s:.1f}s vs supervised --jobs "
            f"{args.jobs} {clean_s:.1f}s over {cells} cells "
            f"(~{overhead:.2f}s/cell overhead), byte identical: "
            f"{clean_rows == serial_rows}"
        )
        if clean_rows != serial_rows:
            failures.append("supervised grid diverged from serial")

        # Recovery: crash the first cell, judge wall-clock vs clean run.
        os.environ["REPRO_CELL_TIMEOUT"] = "0"  # crashes only, no hang
        try:
            faulted_rows, faulted_s, faulted_rep = _run(
                scale, os.path.join(root, "faulted"), jobs=args.jobs,
                faults="crash:cell@0", ledger=os.path.join(root, "ledger"),
            )
        finally:
            os.environ.pop("REPRO_CELL_TIMEOUT", None)
        recovered = faulted_rep.count("recovered")
        report["recovery"] = {
            "faults": "crash:cell@0",
            "recovered_cells": recovered,
            "failed_cells": len(faulted_rep.failed),
            "fault_free_seconds": clean_s,
            "faulted_seconds": faulted_s,
            "recovery_overhead_seconds": faulted_s - clean_s,
            "byte_identical": faulted_rows == serial_rows,
        }
        print(
            f"recovery: faulted run {faulted_s:.1f}s vs fault-free "
            f"{clean_s:.1f}s ({recovered} recovered, "
            f"{len(faulted_rep.failed)} failed), byte identical: "
            f"{faulted_rows == serial_rows}"
        )
        if faulted_rows != serial_rows or recovered < 1 or faulted_rep.failed:
            failures.append("faulted grid did not recover byte-identically")

        # Resume: every cell checkpointed by the serial run above.
        resumed_rows, resumed_s, resumed_rep = _run(
            scale, os.path.join(root, "serial"), resume=True
        )
        report["resume"] = {
            "resumed_cells": resumed_rep.count("resumed"),
            "straight_seconds": serial_s,
            "resume_seconds": resumed_s,
            "speedup": serial_s / max(resumed_s, 1e-9),
            "byte_identical": resumed_rows == serial_rows,
        }
        print(
            f"resume: straight-through {serial_s:.1f}s vs resumed "
            f"{resumed_s:.1f}s ({serial_s / max(resumed_s, 1e-9):.1f}x, "
            f"{resumed_rep.count('resumed')}/{cells} cells from "
            f"checkpoints), byte identical: {resumed_rows == serial_rows}"
        )
        if resumed_rows != serial_rows or resumed_rep.count("resumed") != cells:
            failures.append("resume did not replay the grid byte-identically")

    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    if failures:
        return 1

    out_path = args.output or os.path.join(
        results_dir(), "BENCH_robustness.json"
    )
    os.makedirs(os.path.dirname(os.path.abspath(out_path)), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"[saved {out_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
