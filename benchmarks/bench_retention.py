"""Retention drift after programming: does SWIM's advantage persist?

Write-verify guarantees precision at t=0; conductances then drift.  This
bench deploys (a) fully write-verified and (b) SWIM-10% weights, applies
power-law drift at increasing time points, and reports the accuracy decay
of both.  The expected shape: both degrade together — selective verify
does not age worse than full verify, because drift hits verified and
unverified devices alike.
"""

from __future__ import annotations

import numpy as np

from repro.cim import CimAccelerator, DeviceConfig, MappingConfig, RetentionModel
from repro.core import SwimScorer, WeightSpace, evaluate_accuracy
from repro.experiments.model_zoo import load_workload
from repro.utils.rng import RngStream
from repro.utils.tables import Table

from .conftest import save_artifact

_TIMES = (1.0, 3600.0, 86400.0, 30 * 86400.0)
_LABELS = ("t0", "1 hour", "1 day", "30 days")


def test_retention_decay_swim_vs_full(benchmark, scale, out_dir):
    zoo = load_workload(scale.workload("lenet-digits"))
    data = zoo.data
    mapping = MappingConfig(weight_bits=zoo.spec.weight_bits,
                            device=DeviceConfig(bits=4, sigma=0.1))
    accelerator = CimAccelerator(zoo.model, mapping_config=mapping)
    space = WeightSpace.from_model(zoo.model)
    retention = RetentionModel(nu=0.01, sigma_nu=0.004,
                               relaxation_sigma=0.004)
    eval_x = data.test_x[: scale.eval_samples]
    eval_y = data.test_y[: scale.eval_samples]
    rng = RngStream(707).child("retention")

    def run():
        accelerator.program(rng.child("p").generator)
        accelerator.write_verify_all(rng.child("wv").generator)
        order = SwimScorer(max_batches=2).ranking(
            zoo.model, space,
            data.train_x[: scale.sense_samples],
            data.train_y[: scale.sense_samples],
        )
        count = int(round(0.1 * space.total_size))
        selections = {
            "full write-verify": {
                name: np.ones(m.codes.shape, dtype=bool)
                for name, m in accelerator.map_model().items()
            },
            "SWIM @ NWC~0.1": space.masks_from_indices(order[:count]),
        }
        results = {}
        for label, masks in selections.items():
            accelerator.apply_selection(masks)
            deployed = {
                name: layer.weight_override.copy()
                for name, layer in accelerator._layers.items()
            }
            accs = []
            for t in _TIMES:
                drift_rng = rng.child("drift", label, str(t)).generator
                for name, layer in accelerator._layers.items():
                    mapped = accelerator._mapped[name]
                    # Drift the deployed *weights* via their code view.
                    codes = deployed[name] / mapped.scale
                    drifted = retention.apply(
                        np.abs(codes), t, drift_rng,
                        device_max_level=mapping.qmax,
                    ) * np.sign(codes)
                    layer.set_weight_override(
                        (drifted * mapped.scale).astype(
                            layer.weight.data.dtype)
                    )
                accs.append(evaluate_accuracy(zoo.model, eval_x, eval_y))
            results[label] = accs
        accelerator.clear()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    table = Table(["deployment"] + list(_LABELS),
                  title="Accuracy decay under retention drift")
    for label, accs in results.items():
        table.add_row([label] + [f"{100 * a:.2f}%" for a in accs])
    save_artifact(out_dir, "retention_decay", table.render())

    full = results["full write-verify"]
    swim = results["SWIM @ NWC~0.1"]
    # Both age; SWIM must not collapse disproportionately (within 10% of
    # the full-verify decay at the 30-day point).
    assert swim[-1] >= full[-1] - 0.10
    # Drift hurts eventually: the 30-day accuracy is not above t0 + noise.
    assert full[-1] <= full[0] + 0.02
