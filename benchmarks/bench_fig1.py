"""Regenerates Fig. 1: which metric predicts weight sensitivity?

Shape assertions: the second derivative correlates with the measured
accuracy drop substantially better than the weight magnitude does (the
paper reports Pearson 0.83 vs "little correlation").
"""

from __future__ import annotations

from repro.experiments.fig1 import Fig1Config, run_fig1
from repro.experiments.model_zoo import load_workload
from repro.experiments.reporting import render_fig1
from repro.utils.rng import RngStream

from .conftest import save_artifact


def test_fig1(benchmark, scale, out_dir):
    zoo = load_workload(scale.workload("lenet-digits"))
    config = Fig1Config(
        n_weights=scale.fig1_weights,
        mc_runs=scale.fig1_mc_runs,
        eval_samples=scale.fig1_eval_samples,
    )
    result = benchmark.pedantic(
        lambda: run_fig1(zoo, config, RngStream(101).child("fig1")),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    save_artifact(out_dir, "fig1", render_fig1(result, workload=zoo.spec.key))

    # Fig. 1b beats Fig. 1a: curvature predicts the loss increase far
    # better than magnitude does (loss increase is the continuous target
    # Eq. 5 actually bounds; accuracy drop is its discretized proxy).
    # The correlation strengthens with the Monte Carlo pair count: 0.7+
    # at 8 pairs/weight (EXPERIMENTS.md); the bench's reduced budget
    # asserts the robust part — positive and clearly above magnitude.
    assert result.pearson_curvature_loss > 0.2, (
        f"curvature/loss correlation too weak: {result.pearson_curvature_loss}"
    )
    assert result.pearson_curvature_loss > result.pearson_magnitude_loss + 0.1
    # Accuracy drops are a coarse discretization; only compare when the
    # perturbations moved accuracy at all (guaranteed at larger scales).
    if result.accuracy_drops.std() > 0:
        assert result.pearson_curvature_acc >= result.pearson_magnitude_acc - 0.1
