"""Benchmark: per-technology runtime + accuracy of the device stack.

Runs the ``runner devices`` sweep body once per registered technology
(trial-batched path) and records wall-clock, SWIM accuracy at the NWC
grid, and the endurance wear summary, so the perf trajectory of the
nonideality stack is tracked across PRs.  Results are printed and
written as JSON to ``$REPRO_RESULTS_DIR/BENCH_devices.json`` (CI
uploads it as an artifact)::

    PYTHONPATH=src python benchmarks/bench_devices.py          # default
    PYTHONPATH=src python benchmarks/bench_devices.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def bench_technology(zoo, scale, name, nwc_targets, seed=11):
    """One batched sweep on one technology; returns the report row."""
    from repro.experiments.sweeps import run_method_sweep
    from repro.utils.rng import RngStream

    start = time.perf_counter()
    outcome = run_method_sweep(
        zoo,
        sigma=None,
        technology=name,
        nwc_targets=nwc_targets,
        mc_runs=scale.mc_runs_devices,
        rng=RngStream(seed).child("devices", name),
        eval_samples=scale.eval_samples,
        sense_samples=scale.sense_samples,
        methods=("swim", "random"),
    )
    seconds = time.perf_counter() - start
    swim = outcome.curves["swim"]
    return {
        "technology": name,
        "sigma": outcome.sigma,
        "seconds": seconds,
        "mc_runs": scale.mc_runs_devices,
        "nwc_targets": list(nwc_targets),
        "swim_accuracy_mean": [float(v) for v in swim.means()],
        "swim_accuracy_std": [float(v) for v in swim.stds()],
        "wear": outcome.wear,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the device-technology nonideality stack."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale sanity run (CI)")
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: "
                             "$REPRO_RESULTS_DIR/BENCH_devices.json)")
    args = parser.parse_args(argv)

    from repro.cim import technology_names
    from repro.experiments.config import get_scale
    from repro.experiments.model_zoo import load_workload
    from repro.experiments.reporting import results_dir

    scale = get_scale("smoke" if args.smoke else "default")
    nwc_targets = (0.0, 0.3, 0.7, 1.0)
    zoo = load_workload(scale.workload("lenet-digits"))
    report = {"scale": scale.name, "workload": zoo.spec.key,
              "clean_accuracy": zoo.clean_accuracy, "technologies": []}

    print(f"# bench_devices — scale: {scale.name}")
    for name in technology_names():
        row = bench_technology(zoo, scale, name, nwc_targets)
        report["technologies"].append(row)
        wear = row["wear"] or {}
        print(
            f"{name}: {row['seconds']:.2f}s, swim acc "
            f"{100 * row['swim_accuracy_mean'][0]:.2f}% -> "
            f"{100 * row['swim_accuracy_mean'][-1]:.2f}%, "
            f"{wear.get('deployments_to_failure', float('nan')):.3g} "
            "deployments to failure"
        )

    out_path = args.output or os.path.join(results_dir(), "BENCH_devices.json")
    os.makedirs(os.path.dirname(os.path.abspath(out_path)), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"[saved {out_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
