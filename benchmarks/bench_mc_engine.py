"""Benchmark: trial-batched Monte Carlo engine vs the scalar loop.

Three sections, each timing the batched path against the scalar
reference it is numerically equivalent to:

``write_verify``
    The masked pulse loop on an ``(n_trials, n_devices)`` stack vs one
    loop per trial.
``fig1``
    The Fig. 1 perturbation study (the paper's sensitivity-correlation
    Monte Carlo): trial-batched prefix-sharing evaluation vs one full
    forward pass per perturbation draw.  This is the headline number —
    the default scale matches the Fig. 1 default preset.
``sweep``
    The accuracy-vs-NWC sweep behind Table 1 / Fig. 2, batched engine vs
    scalar per-trial pipeline.

Results are printed and written as JSON under ``REPRO_RESULTS_DIR``
(default ``results/``).  Run ``--smoke`` for a seconds-scale sanity pass
(CI) or nothing for the Fig. 1 default scale::

    PYTHONPATH=src python benchmarks/bench_mc_engine.py          # default
    PYTHONPATH=src python benchmarks/bench_mc_engine.py --smoke  # quick
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np


def _time(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


#: LeNet's mapped tensor sizes — the per-tensor workload the accelerator
#: actually feeds the verify loop (one call per tensor per slice).
_LENET_TENSOR_SIZES = (150, 2400, 48000, 10080, 840)


def bench_write_verify(n_trials, tensor_sizes=_LENET_TENSOR_SIZES, seed=0):
    """Masked pulse loop over a model's tensors: batched stack vs per-trial.

    Mirrors ``CimAccelerator``: the scalar path runs one masked loop per
    (trial, tensor); the batched path one per tensor with all trials
    stacked on the leading axis.
    """
    from repro.cim.device import DeviceConfig
    from repro.cim.write_verify import WriteVerifyConfig, write_verify_trials

    device = DeviceConfig(bits=4, sigma=0.1)
    config = WriteVerifyConfig()
    gen = np.random.default_rng(seed)
    targets = [gen.uniform(0, device.max_level, size=s) for s in tensor_sizes]
    initial = [
        np.stack([device.program(t, np.random.default_rng(seed + 1 + i))
                  for i in range(n_trials)])
        for t in targets
    ]

    def scalar():
        rngs = [np.random.default_rng(seed + 1000 + i) for i in range(n_trials)]
        return [
            write_verify_trials(t, init, device, config, trial_rngs=rngs,
                                batched=False)
            for t, init in zip(targets, initial)
        ]

    def batched():
        rng = np.random.default_rng(seed + 2)
        return [
            write_verify_trials(t, init, device, config, rng=rng)
            for t, init in zip(targets, initial)
        ]

    scalar_s, scalar_results = _time(scalar)
    batched_s, batched_results = _time(batched)
    mean = lambda results: float(np.mean([r.mean_cycles for r in results]))
    return {
        "n_trials": n_trials,
        "tensor_sizes": list(tensor_sizes),
        "scalar_seconds": scalar_s,
        "batched_seconds": batched_s,
        "speedup": scalar_s / batched_s,
        "scalar_mean_cycles": mean(scalar_results),
        "batched_mean_cycles": mean(batched_results),
    }


def bench_fig1(scale):
    """The Fig. 1 perturbation Monte Carlo, batched vs scalar."""
    from repro.experiments.fig1 import Fig1Config, run_fig1
    from repro.experiments.model_zoo import load_workload
    from repro.utils.rng import RngStream

    config = Fig1Config(
        n_weights=scale.fig1_weights,
        mc_runs=scale.fig1_mc_runs,
        eval_samples=scale.fig1_eval_samples,
    )
    # Fresh zoo per path: run_fig1 promotes parameters to float64 in place.
    zoo = load_workload(scale.workload("lenet-digits"))
    batched_s, batched = _time(
        lambda: run_fig1(zoo, config, RngStream(101).child("fig1"), batched=True)
    )
    zoo = load_workload(scale.workload("lenet-digits"))
    scalar_s, scalar = _time(
        lambda: run_fig1(zoo, config, RngStream(101).child("fig1"), batched=False)
    )
    return {
        "n_weights": config.n_weights,
        "mc_runs": config.mc_runs,
        "eval_samples": config.eval_samples,
        "scalar_seconds": scalar_s,
        "batched_seconds": batched_s,
        "speedup": scalar_s / batched_s,
        "max_accuracy_drop_deviation": float(
            np.abs(batched.accuracy_drops - scalar.accuracy_drops).max()
        ),
        "max_loss_increase_deviation": float(
            np.abs(batched.loss_increases - scalar.loss_increases).max()
        ),
    }


def bench_sweep(scale, mc_runs, seed=7):
    """The Table 1 / Fig. 2 NWC sweep pipeline, batched vs scalar."""
    from repro.cim import CimAccelerator, DeviceConfig, MappingConfig
    from repro.core import MonteCarloEngine, SwimScorer, WeightSpace
    from repro.experiments.model_zoo import load_workload
    from repro.utils.rng import RngStream

    zoo = load_workload(scale.workload("lenet-digits"))
    mapping = MappingConfig(
        weight_bits=zoo.spec.weight_bits,
        device=DeviceConfig(bits=4, sigma=0.1),
    )
    accelerator = CimAccelerator(zoo.model, mapping_config=mapping)
    space = WeightSpace.from_model(zoo.model)
    eval_x = zoo.data.test_x[: scale.eval_samples]
    eval_y = zoo.data.test_y[: scale.eval_samples]
    order = SwimScorer(batch_size=128, max_batches=1).ranking(
        zoo.model, space, zoo.data.train_x[:128], zoo.data.train_y[:128]
    )
    targets = (0.0, 0.3, 0.7, 1.0)

    def run(batched):
        engine = MonteCarloEngine(mc_runs, RngStream(seed).child("bench"),
                                  batched=batched)
        return engine.sweep_nwc(
            zoo.model, accelerator, order, space, eval_x, eval_y, targets
        )

    batched_s, (acc_b, _) = _time(lambda: run(True))
    scalar_s, (acc_s, _) = _time(lambda: run(False))
    return {
        "mc_runs": mc_runs,
        "eval_samples": int(eval_x.shape[0]),
        "nwc_targets": list(targets),
        "scalar_seconds": scalar_s,
        "batched_seconds": batched_s,
        "speedup": scalar_s / batched_s,
        "mean_accuracy_gap": float(np.abs(acc_b.mean(0) - acc_s.mean(0)).max()),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the trial-batched Monte Carlo engine."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale sanity run (CI)")
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: "
                             "$REPRO_RESULTS_DIR/bench_mc_engine.json)")
    args = parser.parse_args(argv)

    from repro.experiments.config import get_scale
    from repro.experiments.reporting import results_dir

    scale = get_scale("smoke" if args.smoke else "default")
    report = {"scale": scale.name}

    print(f"# bench_mc_engine — scale: {scale.name}")
    report["write_verify"] = bench_write_verify(8 if args.smoke else 64)
    print(
        "write_verify: {scalar_seconds:.3f}s scalar / "
        "{batched_seconds:.3f}s batched -> {speedup:.2f}x".format(
            **report["write_verify"]
        )
    )

    report["fig1"] = bench_fig1(scale)
    print(
        "fig1: {scalar_seconds:.2f}s scalar / {batched_seconds:.2f}s "
        "batched -> {speedup:.2f}x (max deviation "
        "{max_accuracy_drop_deviation:.2e})".format(**report["fig1"])
    )

    report["sweep"] = bench_sweep(scale, mc_runs=2 if args.smoke else 8)
    print(
        "sweep: {scalar_seconds:.2f}s scalar / {batched_seconds:.2f}s "
        "batched -> {speedup:.2f}x".format(**report["sweep"])
    )

    out_path = args.output or os.path.join(results_dir(), "bench_mc_engine.json")
    os.makedirs(os.path.dirname(os.path.abspath(out_path)), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"[saved {out_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
