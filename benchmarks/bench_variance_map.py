"""Benchmark: analytic variance map vs Monte Carlo estimation.

The variance-closure subsystem feeds Eq. 5 selection with the per-weight
``E[dw^2]`` of the device stack.  The analytic
:meth:`~repro.cim.devices.NonidealityStack.variance_map` must stay (a)
accurate against the empirical per-weight second moment and (b) orders of
magnitude cheaper than estimating it by simulation — that speedup is what
makes stack-fed hetero-SWIM rankings free at sweep time.  This bench
tracks both across the built-in technologies on the LeNet workload and
writes ``$REPRO_RESULTS_DIR/BENCH_variance.json`` (CI uploads it)::

    PYTHONPATH=src python benchmarks/bench_variance_map.py          # default
    PYTHONPATH=src python benchmarks/bench_variance_map.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

ONE_MONTH = 2.592e6


def bench_technology(zoo, name, n_trials, seed=29):
    """Time analytic vs empirical variance maps for one technology."""
    from repro.cim import resolve_technology
    from repro.core import WeightSpace
    from repro.utils.rng import RngStream

    tech = resolve_technology(name)
    mapping = tech.mapping_config(weight_bits=zoo.spec.weight_bits)
    stack = tech.build_stack()
    space = WeightSpace.from_model(zoo.model)
    read_time = ONE_MONTH if tech.has_drift else None

    start = time.perf_counter()
    analytic = stack.variance_map(
        mapping, read_time=read_time, space=space, model=zoo.model
    )
    analytic_seconds = time.perf_counter() - start

    start = time.perf_counter()
    empirical = stack.empirical_variance_map(
        mapping, n_trials, RngStream(seed).child("var", name),
        read_time=read_time, space=space, model=zoo.model,
    )
    empirical_seconds = time.perf_counter() - start

    ratio = empirical / np.maximum(analytic, 1e-30)
    return {
        "technology": tech.name,
        "read_time_s": read_time,
        "weights": int(space.total_size),
        "mc_trials": int(n_trials),
        "analytic_seconds": analytic_seconds,
        "empirical_seconds": empirical_seconds,
        "speedup": empirical_seconds / max(analytic_seconds, 1e-12),
        "ratio_mean": float(ratio.mean()),
        "ratio_p05": float(np.quantile(ratio, 0.05)),
        "ratio_p95": float(np.quantile(ratio, 0.95)),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the analytic device-stack variance map."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale sanity run (CI)")
    parser.add_argument("--trials", type=int, default=None,
                        help="Monte Carlo trials for the empirical map "
                             "(default: 64 smoke, 256 otherwise)")
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: "
                             "$REPRO_RESULTS_DIR/BENCH_variance.json)")
    args = parser.parse_args(argv)

    from repro.cim import technology_names
    from repro.experiments.config import get_scale
    from repro.experiments.model_zoo import load_workload
    from repro.experiments.reporting import results_dir

    scale = get_scale("smoke" if args.smoke else "default")
    n_trials = args.trials or (64 if args.smoke else 256)
    zoo = load_workload(scale.workload("lenet-digits"))
    report = {"scale": scale.name, "workload": zoo.spec.key,
              "technologies": []}

    print(f"# bench_variance_map — scale: {scale.name}, "
          f"{n_trials} MC trials")
    for name in technology_names():
        row = bench_technology(zoo, name, n_trials)
        report["technologies"].append(row)
        print(
            f"{name}: analytic {1e3 * row['analytic_seconds']:.1f}ms vs "
            f"MC {row['empirical_seconds']:.2f}s ({row['speedup']:.0f}x), "
            f"ratio mean {row['ratio_mean']:.3f} "
            f"[p05 {row['ratio_p05']:.3f}, p95 {row['ratio_p95']:.3f}]"
        )

    out_path = args.output or os.path.join(results_dir(), "BENCH_variance.json")
    os.makedirs(os.path.dirname(os.path.abspath(out_path)), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"[saved {out_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
