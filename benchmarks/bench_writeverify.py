"""Write-verify calibration (paper Sec. 4.1) and throughput.

The paper calibrates its simulation so that full write-verify averages
~10 cycles per weight and leaves a residual deviation of sigma ~ 0.03
full-scale (matching Shim et al. [8]).  The first bench verifies that
operating point; the second measures the verify-loop's throughput, which
dominates the Monte Carlo experiment runtime.
"""

from __future__ import annotations

import numpy as np

from repro.cim import DeviceConfig, WriteVerifyConfig, write_verify

from .conftest import save_artifact


def test_calibration_operating_point(benchmark, out_dir):
    device = DeviceConfig(bits=4, sigma=0.1)
    config = WriteVerifyConfig()

    def run():
        rng = np.random.default_rng(0)
        targets = rng.uniform(0, device.max_level, size=50000)
        initial = device.program(targets, rng)
        return targets, write_verify(targets, initial, device, config, rng)

    targets, result = benchmark.pedantic(run, rounds=1, iterations=1,
                                         warmup_rounds=0)
    residual = (result.levels - targets) / device.max_level
    lines = [
        "Write-verify calibration at sigma=0.1, tolerance=0.06 (Sec. 4.1)",
        f"  mean cycles/device : {result.mean_cycles:.2f}   (paper: ~10)",
        f"  residual std (FS)  : {residual.std():.4f} (paper: ~0.03)",
        f"  max |residual| (FS): {np.abs(residual).max():.4f} (<= tolerance)",
        f"  zero-cycle devices : {100 * (result.cycles == 0).mean():.1f}%",
    ]
    save_artifact(out_dir, "writeverify_calibration", "\n".join(lines))
    assert 7.0 <= result.mean_cycles <= 13.0
    assert residual.std() < 0.05
    assert bool(result.converged.all())


def test_write_verify_throughput(benchmark):
    """Pure throughput of the vectorized verify loop (devices/second)."""
    device = DeviceConfig(bits=4, sigma=0.1)
    config = WriteVerifyConfig()
    rng = np.random.default_rng(1)
    targets = rng.uniform(0, device.max_level, size=100000)
    initial = device.program(targets, rng)

    def run():
        return write_verify(targets, initial, device, config,
                            np.random.default_rng(2))

    result = benchmark(run)
    assert result.converged.all()
