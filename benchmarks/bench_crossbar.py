"""Crossbar tile path: ADC resolution sweep and MVM throughput.

Validates (and documents) the effective-weight shortcut used by the Monte
Carlo experiments: as ADC resolution grows, the explicit tile execution
converges to the shortcut's result.
"""

from __future__ import annotations

import numpy as np

from repro.cim import ConverterConfig, CrossbarConfig, CrossbarLinear
from repro.utils.rng import RngStream
from repro.utils.tables import Table

from .conftest import save_artifact


def _build(rng, adc_bits, rows=64):
    weights = rng.child("w").normal(size=(32, 256)) * 0.1
    return CrossbarLinear(
        weights,
        crossbar_config=CrossbarConfig(
            rows=rows, adc=ConverterConfig(bits=adc_bits)
        ),
    )


def test_adc_resolution_sweep(benchmark, out_dir):
    rng = RngStream(31)
    x = np.clip(rng.child("x").normal(size=(64, 256)) * 0.3, -1, 1)

    def run():
        table = Table(["ADC bits", "max |error|", "rms error"],
                      title="Crossbar ADC resolution vs shortcut agreement")
        results = []
        for bits in (3, 4, 6, 8, 10, None):
            xbar = _build(rng, bits)
            want = x @ xbar.effective_weights().T
            got = xbar(x)
            err = np.abs(got - want)
            rms = float(np.sqrt(np.mean(err ** 2)))
            table.add_row([
                "ideal" if bits is None else str(bits),
                f"{err.max():.3e}", f"{rms:.3e}",
            ])
            results.append(err.max())
        return table, results

    table, errors = benchmark.pedantic(run, rounds=1, iterations=1,
                                       warmup_rounds=0)
    save_artifact(out_dir, "crossbar_adc", table.render())
    assert errors[-1] < 1e-12          # ideal ADC is exact
    assert errors[-2] < errors[0]      # resolution helps monotonically-ish


def test_tile_mvm_throughput(benchmark):
    rng = RngStream(32)
    xbar = _build(rng, adc_bits=8)
    x = np.clip(rng.child("x").normal(size=(64, 256)) * 0.3, -1, 1)
    benchmark(lambda: xbar(x))
