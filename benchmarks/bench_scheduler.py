"""Benchmark: what the work-rectangle scheduler buys, gated on bitwise identity.

Three questions about the unified scheduler, each with a correctness
gate (byte-identical rows) attached:

1. **Saturation** — the same retention grid run serially and as one
   (cells x trial-blocks) rectangle under ``--jobs 2 --processes 2``,
   the combination that used to exit 64.  The rectangle must schedule,
   complete, and reproduce the serial rows byte for byte.
2. **Warm rerun** — the rectangle re-run against its own eval-tile
   cache: every tile must come back from the artifact store
   (``tiles_computed == 0``), byte-identically, in a small fraction of
   the cold time.  (Single-tile invalidation is pinned by
   ``tests/test_robustness.py::TestEvalTileCache``.)

Writes ``$REPRO_RESULTS_DIR/BENCH_scheduler.json`` (CI uploads it)::

    PYTHONPATH=src python benchmarks/bench_scheduler.py          # default
    PYTHONPATH=src python benchmarks/bench_scheduler.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

METHODS = ("swim", "magnitude")
TECHNOLOGIES = ("pcm",)


def _rows(result):
    from repro.experiments.reporting import _sweep_rows

    return [
        row
        for key in sorted(result.outcomes)
        for row in _sweep_rows(result.outcomes[key], f"{key}")
    ]


def _run(scale, cache_root, jobs=None, processes=None):
    """One retention grid run, returning (rows, seconds, RunReport)."""
    from repro.experiments.retention import run_retention
    from repro.plan import PlanArtifactCache

    reports = []
    start = time.perf_counter()
    result = run_retention(
        scale,
        technologies=TECHNOLOGIES,
        methods=METHODS,
        plan_cache=PlanArtifactCache(root=cache_root),
        jobs=jobs,
        processes=processes,
        report_out=reports,
    )
    seconds = time.perf_counter() - start
    return _rows(result), seconds, reports[-1]


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the work-rectangle scheduler and eval cache."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale sanity run (CI)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="deprecated-pair jobs factor")
    parser.add_argument("--processes", type=int, default=2,
                        help="deprecated-pair processes factor")
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: "
                             "$REPRO_RESULTS_DIR/BENCH_scheduler.json)")
    args = parser.parse_args(argv)

    from repro.experiments.config import get_scale
    from repro.experiments.reporting import results_dir

    scale = get_scale("smoke" if args.smoke else "default")
    workers = max(1, args.jobs) * max(1, args.processes)
    report = {"scale": scale.name, "jobs": args.jobs,
              "processes": args.processes, "workers": workers}
    failures = []

    print(f"# bench_scheduler — scale: {scale.name}")
    with tempfile.TemporaryDirectory(prefix="bench-sched-") as root:
        serial_rows, serial_s, serial_rep = _run(
            scale, os.path.join(root, "serial")
        )
        rect_root = os.path.join(root, "rectangle")
        rect_rows, rect_s, rect_rep = _run(
            scale, rect_root, jobs=args.jobs, processes=args.processes
        )
        report["saturation"] = {
            "cells": len(rect_rep.cells),
            "tiles": rect_rep.tiles_total,
            "serial_seconds": serial_s,
            "rectangle_seconds": rect_s,
            "speedup": serial_s / max(rect_s, 1e-9),
            "byte_identical": rect_rows == serial_rows,
        }
        print(
            f"saturation: serial {serial_s:.1f}s vs --jobs {args.jobs} "
            f"--processes {args.processes} rectangle {rect_s:.1f}s "
            f"({rect_rep.tiles_total} tiles, "
            f"{serial_s / max(rect_s, 1e-9):.1f}x), byte identical: "
            f"{rect_rows == serial_rows}"
        )
        if rect_rows != serial_rows or rect_rep.failed:
            failures.append("rectangle run diverged from serial")

        # Warm rerun: every eval tile served from the artifact cache.
        warm_rows, warm_s, warm_rep = _run(
            scale, rect_root, jobs=args.jobs, processes=args.processes
        )
        report["warm_rerun"] = {
            "cold_seconds": rect_s,
            "warm_seconds": warm_s,
            "speedup": rect_s / max(warm_s, 1e-9),
            "tiles_cached": warm_rep.tiles_cached,
            "tiles_computed": warm_rep.tiles_computed,
            "byte_identical": warm_rows == serial_rows,
        }
        print(
            f"warm rerun: cold {rect_s:.1f}s vs warm {warm_s:.1f}s "
            f"({rect_s / max(warm_s, 1e-9):.1f}x, "
            f"{warm_rep.tiles_cached}/{warm_rep.tiles_total} tiles from "
            f"cache), byte identical: {warm_rows == serial_rows}"
        )
        if (warm_rows != serial_rows or warm_rep.tiles_computed
                or warm_rep.tiles_cached != warm_rep.tiles_total):
            failures.append("warm rerun was not a passless byte-identical replay")

    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    if failures:
        return 1

    out_path = args.output or os.path.join(
        results_dir(), "BENCH_scheduler.json"
    )
    os.makedirs(os.path.dirname(os.path.abspath(out_path)), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"[saved {out_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
