"""Benchmark: the selection-planning subsystem's two speedups.

1. **Cold vs warm planning** of a retention-style grid (>= 3 read times
   x >= 3 NWC budgets on a drifting technology): the cold pass pays the
   curvature accumulation plus per-point variance maps and rankings;
   the warm pass replays the whole grid from the content-addressed
   artifact cache.  The subsystem's contract is a >= 5x warm speedup
   with bitwise-identical selections — both are measured and reported.
2. **Serial vs parallel scenario execution** (``--jobs N``): the same
   retention grid's Monte Carlo cells mapped over the fork pool, with
   byte-identical outcomes checked via the rendered CSV rows.

Writes ``$REPRO_RESULTS_DIR/BENCH_planner.json`` (CI uploads it)::

    PYTHONPATH=src python benchmarks/bench_planner.py          # default
    PYTHONPATH=src python benchmarks/bench_planner.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

READ_TIMES = (1.0, 3.6e3, 8.64e4, 2.592e6)
NWC_BUDGETS = (0.1, 0.3, 0.5, 0.7, 0.9)
METHODS = ("swim", "hetero_swim", "magnitude")


def bench_plan_grid(zoo, scale, cache_root, technology="pcm-comp"):
    """Cold vs warm plan latency over the retention-style grid."""
    from repro.plan import PlanArtifactCache, PlanEngine, PlanRequest

    requests = [
        PlanRequest(
            methods=METHODS,
            nwc_targets=NWC_BUDGETS,
            technology=technology,
            read_time=t,
            weight_bits=zoo.spec.weight_bits,
        )
        for t in READ_TIMES
    ]

    def build_engine():
        return PlanEngine(
            zoo.model,
            zoo.data.train_x[:scale.sense_samples],
            zoo.data.train_y[:scale.sense_samples],
            workload=zoo.spec.key,
            cache=PlanArtifactCache(root=cache_root),
            curvature_batch_size=min(256, scale.sense_samples),
        )

    cold_engine = build_engine()
    start = time.perf_counter()
    cold = cold_engine.plan_batch(requests)
    cold_seconds = time.perf_counter() - start

    warm_engine = build_engine()  # fresh memory tier: warm = disk only
    start = time.perf_counter()
    warm = warm_engine.plan_batch(requests)
    warm_seconds = time.perf_counter() - start

    identical = all(
        np.array_equal(a.order(m), b.order(m))
        for a, b in zip(cold, warm)
        for m in METHODS
    )
    return {
        "technology": technology,
        "read_times": list(READ_TIMES),
        "nwc_budgets": list(NWC_BUDGETS),
        "methods": list(METHODS),
        "grid_points": len(requests),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / max(warm_seconds, 1e-9),
        "bitwise_identical": bool(identical),
        "cold_stats": dict(cold_engine.stats),
        "warm_stats": dict(warm_engine.stats),
    }


def bench_scenario_jobs(scale, cache_root, jobs=2):
    """Serial vs ``jobs=N`` wall time for the retention scenario."""
    from repro.experiments.reporting import _sweep_rows
    from repro.experiments.retention import run_retention
    from repro.plan import PlanArtifactCache

    kwargs = dict(
        technologies=("pcm", "pcm-comp"),
        methods=METHODS,
        plan_cache=PlanArtifactCache(root=cache_root),
    )

    start = time.perf_counter()
    serial = run_retention(scale, **kwargs)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_retention(scale, jobs=jobs, **kwargs)
    parallel_seconds = time.perf_counter() - start

    def rows(result):
        return [
            row
            for key in sorted(result.outcomes)
            for row in _sweep_rows(result.outcomes[key], f"{key}")
        ]

    return {
        "cells": len(serial.outcomes),
        "mc_runs_per_cell": scale.mc_runs_retention,
        "jobs": jobs,
        "serial_seconds": serial_seconds,
        "jobs_seconds": parallel_seconds,
        "speedup": serial_seconds / max(parallel_seconds, 1e-9),
        "byte_identical": rows(serial) == rows(parallel),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the selection-planning subsystem."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale sanity run (CI)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count for the scenario half")
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: "
                             "$REPRO_RESULTS_DIR/BENCH_planner.json)")
    args = parser.parse_args(argv)

    from repro.experiments.config import get_scale
    from repro.experiments.model_zoo import load_workload
    from repro.experiments.reporting import results_dir

    scale = get_scale("smoke" if args.smoke else "default")
    zoo = load_workload(scale.workload("lenet-digits"))
    report = {"scale": scale.name, "workload": zoo.spec.key}

    print(f"# bench_planner — scale: {scale.name}")
    with tempfile.TemporaryDirectory(prefix="bench-planner-") as cache_root:
        plan = bench_plan_grid(zoo, scale, cache_root)
        report["plan_grid"] = plan
        print(
            f"plan grid ({plan['grid_points']} read times x "
            f"{len(plan['nwc_budgets'])} budgets, {plan['technology']}): "
            f"cold {1e3 * plan['cold_seconds']:.1f}ms vs warm "
            f"{1e3 * plan['warm_seconds']:.1f}ms "
            f"({plan['speedup']:.0f}x), bitwise identical: "
            f"{plan['bitwise_identical']}"
        )

        scenario = bench_scenario_jobs(scale, cache_root, jobs=args.jobs)
        report["scenario"] = scenario
        print(
            f"retention scenario ({scenario['cells']} cells x "
            f"{scenario['mc_runs_per_cell']} trials): serial "
            f"{scenario['serial_seconds']:.1f}s vs --jobs {args.jobs} "
            f"{scenario['jobs_seconds']:.1f}s "
            f"({scenario['speedup']:.2f}x), byte identical: "
            f"{scenario['byte_identical']}"
        )

    if not report["plan_grid"]["bitwise_identical"]:
        print("ERROR: warm plans diverged from cold plans", file=sys.stderr)
        return 1
    if not report["scenario"]["byte_identical"]:
        print("ERROR: parallel scenario diverged from serial", file=sys.stderr)
        return 1

    out_path = args.output or os.path.join(results_dir(), "BENCH_planner.json")
    os.makedirs(os.path.dirname(os.path.abspath(out_path)), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"[saved {out_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
