"""Physical programming-cost reproduction of the paper's Sec. 1 headline:

"programming even a ResNet-18 for CIFAR-10 to an nvCiM platform can take
more than one week" — and what SWIM's NWC savings mean in hours.
"""

from __future__ import annotations

from repro.cim import CostModel, format_duration

from .conftest import save_artifact

_PAPER_MODELS = (
    ("LeNet (paper: 1.05e5 weights)", 1.05e5),
    ("ConvNet (paper: 6.4e6 weights)", 6.4e6),
    ("ResNet-18 (paper: 1.12e7 weights)", 1.12e7),
)


def test_programming_time_headline(benchmark, out_dir):
    cost = CostModel()

    def run():
        lines = [
            "Programming-cost model (5 ms/cycle, ~10 cycles/weight "
            "write-verify)",
            "",
            f"{'model':36s} {'full write-verify':>18s} "
            f"{'SWIM @ NWC=0.1':>15s} {'energy (full)':>14s}",
        ]
        for label, n_weights in _PAPER_MODELS:
            full = cost.estimate_full_write_verify(n_weights)
            swim = cost.speedup_report(n_weights, nwc=0.1)
            lines.append(
                f"{label:36s} {full['human']:>18s} "
                f"{swim['selective_human']:>15s} "
                f"{full['energy_mj']:>11.1f} mJ"
            )
        return lines

    lines = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    save_artifact(out_dir, "programming_cost", "\n".join(lines))

    # The headline: full write-verify of ResNet-18 lands in the
    # "more than a few days" regime the paper quotes.
    resnet_seconds = CostModel().estimate_full_write_verify(1.12e7)["seconds"]
    assert 3 * 86400 < resnet_seconds < 21 * 86400
    # And SWIM at NWC=0.1 turns days into half-days.
    report = CostModel().speedup_report(1.12e7, nwc=0.1)
    assert report["speedup"] == 10.0


def test_format_duration_stability(benchmark):
    values = [0.1, 5, 65, 3700, 90000, 900000]
    result = benchmark(lambda: [format_duration(v) for v in values])
    assert len(result) == len(values)
