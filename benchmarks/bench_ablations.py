"""Ablation benches on SWIM's design choices (DESIGN.md Sec. 4).

Each bench regenerates one ablation table; shape assertions encode the
expected directional outcomes (e.g. finer granularity never needs *more*
NWC to meet the target; the K-bit slicing keeps relative noise ~sigma).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ablations as ab
from repro.experiments.model_zoo import load_workload
from repro.experiments.reporting import render_ablation
from repro.utils.rng import RngStream

from .conftest import save_artifact


@pytest.fixture(scope="module")
def zoo(scale):
    return load_workload(scale.workload("lenet-digits"))


@pytest.fixture(scope="module")
def rng():
    return RngStream(404).child("ablations")


def test_ablate_granularity(benchmark, zoo, rng, out_dir):
    rows = benchmark.pedantic(
        lambda: ab.ablate_granularity(zoo, rng.child("granularity")),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    save_artifact(out_dir, "ablation_granularity",
                  render_ablation(rows, "Ablation — Algorithm 1 granularity p"))
    by_p = {row.label: row.metrics for row in rows}
    # Finer granularity stops at (weakly) smaller selected fractions.
    assert by_p["p=0.01"]["selected_fraction"] <= (
        by_p["p=0.25"]["selected_fraction"] + 1e-9
    )
    # And costs more accuracy evaluations per run.
    assert by_p["p=0.01"]["evaluations"] >= by_p["p=0.25"]["evaluations"]


def test_ablate_device_bits(benchmark, zoo, rng, out_dir):
    rows = benchmark.pedantic(
        lambda: ab.ablate_device_bits(zoo, rng.child("bits")),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    save_artifact(out_dir, "ablation_device_bits",
                  render_ablation(rows, "Ablation — bits per device K"))
    for row in rows:
        # Eq. 16: the MSB slice dominates, keeping relative noise ~ sigma.
        assert 0.05 <= row.metrics["relative_noise_std"] <= 0.2


def test_ablate_tie_break(benchmark, zoo, rng, out_dir):
    rows = benchmark.pedantic(
        lambda: ab.ablate_tie_break(zoo, rng.child("tb")),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    save_artifact(out_dir, "ablation_tie_break",
                  render_ablation(rows, "Ablation — magnitude tie-breaker"))
    assert len(rows) == 2


def test_ablate_curvature_batches(benchmark, zoo, rng, out_dir):
    rows = benchmark.pedantic(
        lambda: ab.ablate_curvature_batches(zoo, rng.child("cb")),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    save_artifact(out_dir, "ablation_curvature_batches",
                  render_ablation(rows, "Ablation — curvature batch count"))
    # More data -> ranking closer to the full-dataset reference.
    rhos = [row.metrics["spearman_vs_full"] for row in rows]
    assert rhos[-1] >= rhos[0] - 0.05
    assert rhos[-1] > 0.9


def test_ablate_scorers(benchmark, zoo, rng, out_dir):
    rows = benchmark.pedantic(
        lambda: ab.ablate_scorers(zoo, rng.child("scorers")),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    save_artifact(out_dir, "ablation_scorers",
                  render_ablation(rows, "Ablation — sensitivity scorers"))
    by_name = {row.label: row.metrics["accuracy_mean"] for row in rows}
    assert by_name["swim"] >= by_name["random"] - 0.005
    assert by_name["swim"] >= by_name["magnitude"] - 0.005


def test_ablate_differential(benchmark, zoo, rng, out_dir):
    rows = benchmark.pedantic(
        lambda: ab.ablate_differential(zoo, rng.child("diff")),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    save_artifact(out_dir, "ablation_differential",
                  render_ablation(rows, "Ablation — differential columns"))
    single, diff = rows
    assert diff.metrics["relative_noise_std"] == pytest.approx(
        single.metrics["relative_noise_std"] * np.sqrt(2), rel=1e-6
    )
