"""Benchmark: the plan-serving layer's three perf contracts.

1. **Cold serving** — sequential ``POST /v1/plan`` over distinct
   read times, each paying one engine resolution.
2. **Warm fast-path** — repeated rounds of the same requests replay
   cached canonical bytes; the ``engine_resolutions`` tripwire must
   stay flat and warm p50 must be >= 10x faster than cold p50.
3. **Coalescing** — K identical concurrent POSTs on a fresh key must
   collapse into exactly one engine resolution.
4. **Multi-workload** — interleaved warm traffic routed at two engines
   of one registry (``workload`` field, plus one ``model``-digest
   route); both per-engine tripwires must stay flat and the two
   workloads' key spaces must stay disjoint.

Every served plan is also checked byte-identical against a direct
memory-only :class:`~repro.plan.engine.PlanEngine` resolution — the
speed must not come from serving different bytes.

Writes ``$REPRO_RESULTS_DIR/BENCH_serving.json`` (CI uploads it)::

    PYTHONPATH=src python benchmarks/bench_serving.py          # default
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

METHODS = ("swim", "hetero_swim", "magnitude")
NWC_BUDGETS = (0.1, 0.3, 0.5, 0.7, 0.9)
READ_TIMES = (1.0, 3.6e3, 8.64e4, 2.592e6, 7.776e6, 3.1536e7)
COALESCE_READ_TIME = 6.048e5  # a key no other phase touches
COALESCE_CLIENTS = 16
MULTI_WORKLOADS = ("lenet-digits", "convnet-cifar")


def _body(read_time, weight_bits):
    return {
        "methods": list(METHODS),
        "nwc_targets": list(NWC_BUDGETS),
        "technology": "pcm-comp",
        "read_time": read_time,
        "weight_bits": weight_bits,
    }


def _percentile(samples, p):
    ordered = sorted(samples)
    return ordered[round((p / 100.0) * (len(ordered) - 1))]


def _classify(seconds_list, total_seconds):
    return {
        "requests": len(seconds_list),
        "requests_per_second": len(seconds_list) / max(total_seconds, 1e-9),
        "p50_ms": 1e3 * _percentile(seconds_list, 50),
        "p99_ms": 1e3 * _percentile(seconds_list, 99),
    }


class _ServerThread:
    """The HTTP server on a daemon thread (ephemeral port)."""

    def __init__(self, service):
        from repro.serve import PlanHTTPServer

        self.server = PlanHTTPServer(service, port=0)
        self._ready = threading.Event()
        self._loop = None
        self.error = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self):
        async def serve():
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            return await self.server.run(install_signals=False)

        try:
            asyncio.run(serve())
        except BaseException as exc:
            self.error = exc
        finally:
            self._ready.set()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=120), "server never came up"
        if self.error is not None:
            raise self.error
        return self

    def __exit__(self, *exc_info):
        if self._thread.is_alive() and self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass
            self._thread.join(timeout=120)

    @property
    def port(self):
        return self.server.port


def bench_serving(service, port, weight_bits, warm_rounds):
    """Run the three phases against a live server; returns the report."""
    from repro.serve import PlanClient

    bodies = [_body(t, weight_bits) for t in READ_TIMES]
    report = {}

    with PlanClient(port=port, timeout=600) as client:
        # -- cold: each distinct read time pays one engine resolution
        served = {}
        latencies = []
        start = time.perf_counter()
        for body in bodies:
            t0 = time.perf_counter()
            response = client.plan(body)
            latencies.append(time.perf_counter() - t0)
            assert response.source == "cold", response.source
            served[response.key] = response.data
        report["cold"] = _classify(latencies, time.perf_counter() - start)

        tripwire = service.counters["engine_resolutions"]
        assert tripwire == len(bodies), (tripwire, len(bodies))

        # -- warm: repeated rounds replay stored bytes, tripwire flat
        latencies = []
        start = time.perf_counter()
        for _ in range(warm_rounds):
            for body in bodies:
                t0 = time.perf_counter()
                response = client.plan(body)
                latencies.append(time.perf_counter() - t0)
                assert response.source == "warm", response.source
                assert response.data == served[response.key]
        report["warm"] = _classify(latencies, time.perf_counter() - start)
        report["warm"]["tripwire_flat"] = (
            service.counters["engine_resolutions"] == tripwire
        )

    # -- coalesced: K identical concurrent POSTs, one resolution
    fresh = _body(COALESCE_READ_TIME, weight_bits)
    barrier = threading.Barrier(COALESCE_CLIENTS)

    def fire():
        with PlanClient(port=port, timeout=600) as worker:
            barrier.wait()
            t0 = time.perf_counter()
            response = worker.plan(fresh)
            return time.perf_counter() - t0, response

    before = service.counters["engine_resolutions"]
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=COALESCE_CLIENTS) as pool:
        results = list(pool.map(lambda _: fire(), range(COALESCE_CLIENTS)))
    total = time.perf_counter() - start
    resolutions = service.counters["engine_resolutions"] - before
    payloads = {response.data for _, response in results}
    report["coalesced"] = {
        **_classify([seconds for seconds, _ in results], total),
        "concurrent_clients": COALESCE_CLIENTS,
        "engine_resolutions": resolutions,
        "sources": sorted(response.source for _, response in results),
        "byte_identical_fanout": len(payloads) == 1,
    }
    served[results[0][1].key] = results[0][1].data
    return report, served


def bench_multi_workload(registry, port, weight_bits, rounds):
    """Interleaved warm traffic across two engines of one registry.

    Warms both engines over a body set, then interleaves routed warm
    POSTs round-robin across the workloads: both per-engine
    ``engine_resolutions`` tripwires must stay flat, the two key
    spaces must stay disjoint, and a ``model``-digest route must hit
    the same warm path a ``workload`` route does.
    """
    from repro.serve import PlanClient

    bodies = [_body(t, weight_bits) for t in READ_TIMES[:3]]
    keys = {workload: set() for workload in MULTI_WORKLOADS}
    with PlanClient(port=port, timeout=600) as client:
        for workload in MULTI_WORKLOADS:
            for body in bodies:
                response = client.plan(body, workload=workload)
                keys[workload].add(response.key)
        tripwires = {
            workload: registry.service(workload).counters[
                "engine_resolutions"
            ]
            for workload in MULTI_WORKLOADS
        }

        latencies = []
        start = time.perf_counter()
        for _ in range(rounds):
            for body in bodies:
                for workload in MULTI_WORKLOADS:
                    t0 = time.perf_counter()
                    response = client.plan(body, workload=workload)
                    latencies.append(time.perf_counter() - t0)
                    assert response.source == "warm", (
                        workload, response.source
                    )
        report = _classify(latencies, time.perf_counter() - start)

        rows = {
            row["workload"]: row for row in client.models()["models"]
        }
        by_digest = client.plan(
            bodies[0], model=rows[MULTI_WORKLOADS[1]]["model"]
        )

    report["workloads"] = list(MULTI_WORKLOADS)
    report["tripwires_flat"] = all(
        registry.service(workload).counters["engine_resolutions"]
        == tripwires[workload]
        for workload in MULTI_WORKLOADS
    )
    report["keys_disjoint"] = not (
        keys[MULTI_WORKLOADS[0]] & keys[MULTI_WORKLOADS[1]]
    )
    report["digest_route_warm"] = (
        by_digest.source == "warm"
        and by_digest.key in keys[MULTI_WORKLOADS[1]]
    )
    return report


def check_byte_identity(zoo, scale, served):
    """Every served payload == a direct memory-only engine resolution."""
    from repro.plan import PlanArtifactCache, PlanEngine
    from repro.serve import parse_plan_request, plan_bytes
    from repro.serve.codec import plan_config

    engine = PlanEngine(
        zoo.model,
        zoo.data.train_x[:scale.sense_samples],
        zoo.data.train_y[:scale.sense_samples],
        workload=zoo.spec.key,
        cache=PlanArtifactCache(disk=False),
        curvature_batch_size=min(256, scale.sense_samples),
    )
    for read_time in READ_TIMES + (COALESCE_READ_TIME,):
        body = _body(read_time, zoo.spec.weight_bits)
        request = parse_plan_request(json.dumps(body).encode("utf-8"))
        key = engine.cache.key("plan", plan_config(engine, request))
        if served[key] != plan_bytes(engine.plan(request)):
            return False
    return True


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the plan-serving HTTP layer."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale sanity run (CI)")
    parser.add_argument("--warm-rounds", type=int, default=None,
                        help="rounds over the warm request set "
                             "(default: 20, or 5 with --smoke)")
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: "
                             "$REPRO_RESULTS_DIR/BENCH_serving.json)")
    args = parser.parse_args(argv)

    from repro.experiments.config import get_scale
    from repro.experiments.model_zoo import load_workload
    from repro.experiments.reporting import results_dir
    from repro.plan import PlanArtifactCache
    from repro.serve import PlanEngineRegistry
    from repro.serve.cli import build_service

    scale = get_scale("smoke" if args.smoke else "default")
    warm_rounds = args.warm_rounds or (5 if args.smoke else 20)
    print(f"# bench_serving — scale: {scale.name}")

    with tempfile.TemporaryDirectory(prefix="bench-serving-") as cache_root:
        registry = build_service(
            workloads=MULTI_WORKLOADS, scale=scale,
            cache=PlanArtifactCache(root=cache_root),
        )
        assert isinstance(registry, PlanEngineRegistry)
        zoo_key = registry.default
        # Phases 1-3 drive the default engine (unrouted requests), so
        # its per-engine counters carry the contracts exactly as a
        # single-workload server's would.
        service = registry.resolve()
        with _ServerThread(registry) as running:
            report_body, served = bench_serving(
                service, running.port,
                weight_bits=4, warm_rounds=warm_rounds,
            )
            report_body["multi_workload"] = bench_multi_workload(
                registry, running.port,
                weight_bits=4, rounds=max(2, warm_rounds // 2),
            )

        zoo = load_workload(scale.workload("lenet-digits"))
        identical = check_byte_identity(zoo, scale, served)

    report = {
        "scale": scale.name,
        "workload": zoo_key,
        "warm_rounds": warm_rounds,
        **report_body,
        "warm_speedup_p50": (
            report_body["cold"]["p50_ms"] / report_body["warm"]["p50_ms"]
        ),
        "byte_identical_to_direct_resolution": identical,
    }

    for phase in ("cold", "warm", "coalesced", "multi_workload"):
        stats = report[phase]
        print(f"{phase}: {stats['requests']} requests, "
              f"{stats['requests_per_second']:.1f} req/s, "
              f"p50 {stats['p50_ms']:.2f}ms, p99 {stats['p99_ms']:.2f}ms")
    print(f"warm p50 speedup over cold: {report['warm_speedup_p50']:.0f}x")
    print(f"coalesced engine resolutions: "
          f"{report['coalesced']['engine_resolutions']} "
          f"(of {COALESCE_CLIENTS} concurrent clients)")
    multi = report["multi_workload"]
    print(f"multi-workload ({' + '.join(multi['workloads'])}): tripwires "
          f"flat {multi['tripwires_flat']}, keys disjoint "
          f"{multi['keys_disjoint']}, digest route warm "
          f"{multi['digest_route_warm']}")
    print(f"byte-identical to direct resolution: {identical}")

    failed = []
    if not report["warm"]["tripwire_flat"]:
        failed.append("warm traffic moved the engine_resolutions tripwire")
    if report["warm_speedup_p50"] < 10.0:
        failed.append(
            f"warm p50 only {report['warm_speedup_p50']:.1f}x cold (< 10x)"
        )
    if report["coalesced"]["engine_resolutions"] != 1:
        failed.append(
            f"{report['coalesced']['engine_resolutions']} resolutions for "
            f"{COALESCE_CLIENTS} identical concurrent requests (want 1)"
        )
    if not report["coalesced"]["byte_identical_fanout"]:
        failed.append("coalesced fan-out served divergent bytes")
    if not multi["tripwires_flat"]:
        failed.append(
            "two-workload warm traffic moved a per-engine tripwire"
        )
    if not multi["keys_disjoint"]:
        failed.append("the two workloads' plan keys collided")
    if not multi["digest_route_warm"]:
        failed.append("model-digest routing missed the warm path")
    if not identical:
        failed.append("served bytes diverged from a direct engine resolution")
    for reason in failed:
        print(f"ERROR: {reason}", file=sys.stderr)

    out_path = args.output or os.path.join(results_dir(), "BENCH_serving.json")
    os.makedirs(os.path.dirname(os.path.abspath(out_path)), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"[saved {out_path}]")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
