"""Spatially correlated variation (Sec. 2.1 extension) vs i.i.d. noise.

The paper's temporal-variation model is i.i.d. per device; fabrication
variation is spatially correlated.  This bench compares the unverified
accuracy floor under both at matched marginal sigma, and verifies that the
correlated field's statistics behave as configured.
"""

from __future__ import annotations

import numpy as np

from repro.cim import SpatialVariationModel
from repro.core import WeightSpace, evaluate_accuracy
from repro.experiments.model_zoo import load_workload
from repro.utils.rng import RngStream
from repro.utils.tables import Table

from .conftest import save_artifact


def _deploy_field(zoo, accelerator_like, field_sampler, rng):
    """Deploy ideal weights + a sampled error field; return accuracy."""
    from repro.cim import DeviceConfig, MappingConfig, WeightMapper
    from repro.nn.layers.base import WeightedLayer

    mapping = MappingConfig(weight_bits=zoo.spec.weight_bits,
                            device=DeviceConfig(bits=4, sigma=0.1))
    mapper = WeightMapper(mapping)
    for mod_name, module in zoo.model.named_modules():
        if isinstance(module, WeightedLayer):
            mapped = mapper.map_tensor(module.weight.data)
            noise_codes = field_sampler(mapped.codes.size, rng)
            noisy = (
                mapped.codes.astype(np.float64)
                + noise_codes.reshape(mapped.codes.shape)
            ) * mapped.scale
            module.set_weight_override(noisy.astype(module.weight.data.dtype))
    accuracy = evaluate_accuracy(
        zoo.model, zoo.data.test_x[:320], zoo.data.test_y[:320]
    )
    for module in zoo.model.modules():
        if isinstance(module, WeightedLayer):
            module.clear_weight_override()
    return accuracy


def test_spatial_vs_iid_floor(benchmark, scale, out_dir):
    zoo = load_workload(scale.workload("lenet-digits"))
    sigma = 0.1
    code_scale = 15.0  # 4-bit weights on one 4-bit device: 1 code = 1 level

    iid = SpatialVariationModel(sigma=sigma, correlation_length=0.0,
                                global_fraction=0.0)
    local = SpatialVariationModel(sigma=sigma, correlation_length=8.0,
                                  global_fraction=0.0)
    wafer = SpatialVariationModel(sigma=sigma, correlation_length=8.0,
                                  global_fraction=0.4)

    def run():
        rows = []
        root = RngStream(606).child("spatial")
        for label, model in (("iid", iid), ("correlated", local),
                             ("correlated+global", wafer)):
            accs = [
                _deploy_field(
                    zoo, None,
                    lambda n, r, m=model: m.sample_field(
                        n, r, device_max_level=code_scale),
                    root.child(label, run_idx).generator,
                )
                for run_idx in range(4)
            ]
            rows.append((label, float(np.mean(accs)), float(np.std(accs))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    table = Table(["variation", "unverified accuracy", "std over runs"],
                  title="Spatial vs i.i.d. variation at matched sigma=0.1")
    for label, mean, std in rows:
        table.add_row([label, f"{100 * mean:.2f}%", f"{100 * std:.2f}"])
    save_artifact(out_dir, "spatial_floor", table.render())

    by_label = {label: (mean, std) for label, mean, std in rows}
    # Correlated noise -> higher run-to-run variance (clustered failures).
    assert by_label["correlated+global"][1] >= by_label["iid"][1] - 0.01
    # All floors are plausible accuracies.
    for mean, _ in by_label.values():
        assert 0.05 <= mean <= 1.0


def test_field_statistics(benchmark):
    model = SpatialVariationModel(sigma=0.1, correlation_length=6.0,
                                  global_fraction=0.0)

    def run():
        rng = np.random.default_rng(0)
        return model.sample_field(50000, rng)

    field = benchmark(run)
    np.testing.assert_allclose(field.std(), 1.5, rtol=0.1)
