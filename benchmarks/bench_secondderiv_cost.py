"""The Sec. 3.3 cost claim: the second-derivative pass costs about as much
as a gradient pass ("only requires an extra multiplication ... takes
approximately the same amount of time and memory as conventional gradient
computation").

Two benchmark groups time a forward+backward (gradient) pass against a
forward+backward+backward_second (curvature) pass on the LeNet workload;
the assertion allows the curvature pass up to 3x the gradient pass (it
runs both backward passes), far below the 2-million-forward-pass cost of
finite differencing the same network (Eq. 6).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import compute_gradients, compute_second_derivatives
from repro.experiments.model_zoo import load_workload

from .conftest import save_artifact


@pytest.fixture(scope="module")
def workload(scale):
    zoo = load_workload(scale.workload("lenet-digits"))
    x = zoo.data.train_x[:128]
    y = zoo.data.train_y[:128]
    return zoo.model, x, y


@pytest.mark.benchmark(group="secondderiv-cost")
def test_gradient_pass(benchmark, workload):
    model, x, y = workload
    benchmark(lambda: compute_gradients(model, x, y))


@pytest.mark.benchmark(group="secondderiv-cost")
def test_curvature_pass(benchmark, workload):
    model, x, y = workload
    benchmark(lambda: compute_second_derivatives(model, x, y))


def test_cost_ratio_within_bound(benchmark, workload, out_dir):
    """Direct ratio measurement with a stable repeated-median protocol."""
    model, x, y = workload

    def best_of(fn, repeats=5):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return float(np.median(times))

    def measure():
        compute_gradients(model, x, y)  # warm caches
        grad = best_of(lambda: compute_gradients(model, x, y))
        curv = best_of(lambda: compute_second_derivatives(model, x, y))
        return grad, curv

    grad_time, curv_time = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=0
    )
    ratio = curv_time / grad_time
    n_weights = model.num_parameters()
    lines = [
        "Second-derivative cost vs gradient cost (Sec. 3.3 claim)",
        f"  gradient pass (fwd+bwd)        : {1000 * grad_time:.1f} ms",
        f"  curvature pass (fwd+bwd+bwd2)  : {1000 * curv_time:.1f} ms",
        f"  ratio                          : {ratio:.2f}x  (paper: ~1x)",
        f"  finite-difference alternative  : {2 * n_weights} forward passes",
    ]
    save_artifact(out_dir, "secondderiv_cost", "\n".join(lines))
    assert ratio < 3.0, f"curvature pass too slow: {ratio:.2f}x"
