"""Benchmark: telemetry must be (nearly) free and must not lie.

1. **Overhead gate** — the smoke ``table1`` grid runs with telemetry
   off and with tracing on (alternating, min-of-N wall time each);
   tracing may cost at most 3% and every run's CSVs must be
   byte-identical — the gate refuses to compare runs that computed
   different results.
2. **Histogram honesty** — warm plan requests driven at a live
   :class:`~repro.serve.service.PlanService` are timed externally; the
   ``repro_serve_plan_seconds`` histogram must have counted every
   request and its bucket-derived p50/p99 must bracket the externally
   measured percentiles (within one bucket of slack — the histogram
   only knows bounds, not exact values).

Writes ``$REPRO_RESULTS_DIR/BENCH_obs.json`` (CI uploads it)::

    PYTHONPATH=src python benchmarks/bench_obs.py          # default
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import asyncio
import bisect
import json
import math
import os
import sys
import tempfile
import time

OVERHEAD_LIMIT = 0.03
WARM_REQUESTS = 300
READ_TIMES = (1.0, 3.6e3, 2.592e6)


# ---------------------------------------------------------------- overhead


def _run_table1_once(scale, out_dir, cache_dir, traced):
    """One fresh-cache table1 run; returns (seconds, span_count, csv bytes)."""
    from repro.experiments.reporting import save_sweep_csv
    from repro.experiments.table1 import run_table1
    from repro.obs import TRACER, disable_tracing, enable_tracing

    os.environ["REPRO_CACHE_DIR"] = cache_dir
    if traced:
        enable_tracing()
    try:
        started = time.perf_counter()
        result = run_table1(scale)
        elapsed = time.perf_counter() - started
    finally:
        spans = TRACER.drain()
        disable_tracing()

    os.makedirs(out_dir, exist_ok=True)
    csvs = {}
    for sigma, outcome in result.outcomes.items():
        path = save_sweep_csv(
            outcome, os.path.join(out_dir, f"table1_sigma{sigma:g}.csv")
        )
        with open(path, "rb") as handle:
            csvs[os.path.basename(path)] = handle.read()
    return elapsed, len(spans), csvs


def bench_overhead(scale, work_root, repeats):
    """Paired untraced/traced table1 runs; gate on the best paired ratio.

    Wall time drifts across minutes (thermal, background load), so a
    global min-of-N comparison mostly measures when each mode happened
    to run.  Instead each round times an off/on *pair* back-to-back —
    alternating which mode goes first — and the gate takes the best
    (smallest) per-round on/off ratio: the cleanest observation of the
    true marginal cost of tracing.
    """
    timings = {"off": [], "on": []}
    ratios = []
    span_counts = []
    baseline_csvs = None
    identical = True
    for round_index in range(repeats):
        order = ("off", "on") if round_index % 2 == 0 else ("on", "off")
        pair = {}
        for mode in order:
            tag = f"{mode}{round_index}"
            elapsed, span_count, csvs = _run_table1_once(
                scale,
                out_dir=os.path.join(work_root, f"results-{tag}"),
                cache_dir=os.path.join(work_root, f"cache-{tag}"),
                traced=(mode == "on"),
            )
            timings[mode].append(elapsed)
            pair[mode] = elapsed
            if mode == "on":
                span_counts.append(span_count)
            if baseline_csvs is None:
                baseline_csvs = csvs
            elif csvs != baseline_csvs:
                identical = False
            print(f"  table1[{mode}] run {round_index + 1}/{repeats}: "
                  f"{elapsed:.2f}s"
                  + (f", {span_count} spans" if mode == "on" else ""))
        ratios.append(pair["on"] / pair["off"])
    return {
        "repeats": repeats,
        "off_seconds": timings["off"],
        "on_seconds": timings["on"],
        "best_off_s": min(timings["off"]),
        "best_on_s": min(timings["on"]),
        "paired_ratios": ratios,
        "overhead_fraction": min(ratios) - 1.0,
        "spans_per_traced_run": span_counts,
        "csvs_byte_identical": identical,
    }


# ---------------------------------------------------------- histogram check


def _percentile(samples, p):
    ordered = sorted(samples)
    return ordered[round((p / 100.0) * (len(ordered) - 1))]


def _bucket_index(bounds, value):
    """Index of the ``le`` bucket ``value`` falls in (len(bounds) = +Inf)."""
    return bisect.bisect_left(bounds, value)


def _quantile_from_cumulative(bounds, cumulative, count, q):
    rank = q * count
    for index, seen in enumerate(cumulative):
        if seen >= rank:
            return index
    return len(bounds)


def bench_serve_histogram(scale, cache_root, requests):
    """Warm plan traffic: external percentiles vs the service histogram."""
    from repro.serve.cli import build_service

    body = {
        "methods": ["swim", "magnitude"],
        "nwc_targets": [0.1, 0.5, 0.9],
        "technology": "pcm",
        "read_time": READ_TIMES[0],
        "weight_bits": 4,
    }
    os.environ["REPRO_CACHE_DIR"] = cache_root
    registry = build_service(workloads=("lenet-digits",), scale=scale)
    service = registry.resolve()
    bodies = [
        json.dumps(dict(body, read_time=read_time)).encode("utf-8")
        for read_time in READ_TIMES
    ]

    async def drive():
        for payload in bodies:           # cold: populate the cache
            await service.plan(payload)
        latencies = []
        for index in range(requests):    # warm: the measured traffic
            payload = bodies[index % len(bodies)]
            started = time.perf_counter()
            served = await service.plan(payload)
            latencies.append(time.perf_counter() - started)
            assert served.source == "warm", served.source
        return latencies

    try:
        latencies = asyncio.run(drive())
    finally:
        registry.close()

    entry = service.metrics.snapshot()["repro_serve_plan_seconds"]
    bounds = tuple(entry["buckets"])
    sample = entry["samples"][(service.workload_label, "warm")]
    report = {
        "requests": requests,
        "histogram_count": sample["count"],
        "histogram_sum_s": sample["sum"],
        "external_p50_ms": 1e3 * _percentile(latencies, 50),
        "external_p99_ms": 1e3 * _percentile(latencies, 99),
    }
    brackets = {}
    for label, q in (("p50", 0.5), ("p99", 0.99)):
        hist_index = _quantile_from_cumulative(
            bounds, sample["buckets"], sample["count"], q
        )
        upper = math.inf if hist_index == len(bounds) else bounds[hist_index]
        external = _percentile(latencies, q * 100)
        brackets[label] = {
            # "+Inf" (not float inf) so the report stays strict JSON
            "histogram_le_s": "+Inf" if upper == math.inf else upper,
            "external_s": external,
            # one bucket of slack: the external timer wraps the event
            # loop dispatch the internal one does not see
            "consistent": abs(
                _bucket_index(bounds, external) - hist_index
            ) <= 1,
        }
    report["brackets"] = brackets
    return report


# -------------------------------------------------------------------- main


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark telemetry overhead and histogram honesty."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale sanity run (CI)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="table1 runs per mode for the min-of-N "
                             "timing (default: 3, or 2 with --smoke)")
    parser.add_argument("--requests", type=int, default=None,
                        help=f"warm serve requests for the histogram "
                             f"check (default {WARM_REQUESTS})")
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: "
                             "$REPRO_RESULTS_DIR/BENCH_obs.json)")
    args = parser.parse_args(argv)

    from repro.experiments.config import get_scale
    from repro.experiments.reporting import results_dir

    out_path = args.output or os.path.join(results_dir(), "BENCH_obs.json")
    scale = get_scale("smoke")
    repeats = args.repeats or (2 if args.smoke else 3)
    requests = args.requests or WARM_REQUESTS
    print(f"# bench_obs — scale: {scale.name}")

    saved_cache_dir = os.environ.get("REPRO_CACHE_DIR")
    try:
        with tempfile.TemporaryDirectory(prefix="bench-obs-") as work_root:
            overhead = bench_overhead(scale, work_root, repeats)
            histogram = bench_serve_histogram(
                scale, os.path.join(work_root, "serve-cache"), requests
            )
    finally:
        if saved_cache_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved_cache_dir

    report = {
        "scale": scale.name,
        "overhead_limit": OVERHEAD_LIMIT,
        "overhead": overhead,
        "serve_histogram": histogram,
    }

    print(f"tracing overhead: {100 * overhead['overhead_fraction']:+.2f}% "
          f"(best paired ratio over {overhead['repeats']} round(s); "
          f"limit {100 * OVERHEAD_LIMIT:.0f}%)")
    print(f"CSVs byte-identical across all runs: "
          f"{overhead['csvs_byte_identical']}")
    print(f"serve histogram: {histogram['histogram_count']} observations "
          f"for {histogram['requests']} warm requests; external "
          f"p50 {histogram['external_p50_ms']:.3f}ms, "
          f"p99 {histogram['external_p99_ms']:.3f}ms")
    for label, bracket in histogram["brackets"].items():
        upper = bracket["histogram_le_s"]
        upper_text = "+Inf" if upper == "+Inf" else f"{1e3 * upper:.3f}ms"
        print(f"  {label}: histogram le {upper_text}, external "
              f"{1e3 * bracket['external_s']:.3f}ms, consistent "
              f"{bracket['consistent']}")

    failed = []
    if not overhead["csvs_byte_identical"]:
        failed.append("traced and untraced runs produced different CSV "
                      "bytes — overhead comparison void")
    elif overhead["overhead_fraction"] > OVERHEAD_LIMIT:
        failed.append(
            f"tracing overhead {100 * overhead['overhead_fraction']:.2f}% "
            f"exceeds {100 * OVERHEAD_LIMIT:.0f}%"
        )
    if not all(count > 0 for count in overhead["spans_per_traced_run"]):
        failed.append("a traced run recorded zero spans")
    if histogram["histogram_count"] != histogram["requests"]:
        failed.append(
            f"histogram counted {histogram['histogram_count']} warm "
            f"requests, drove {histogram['requests']}"
        )
    for label, bracket in histogram["brackets"].items():
        if not bracket["consistent"]:
            failed.append(
                f"histogram {label} bucket disagrees with the externally "
                f"measured percentile by more than one bucket"
            )
    for reason in failed:
        print(f"ERROR: {reason}", file=sys.stderr)

    os.makedirs(os.path.dirname(os.path.abspath(out_path)), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"[saved {out_path}]")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
