"""In-situ training's recovery cost (Sec. 4.3-4.5 text claims).

The paper: in-situ training *can* fully recover accuracy, but only with
NWC far above 1 (32 for LeNet, 75/115/155 for the larger models), i.e.
orders of magnitude more write cycles than SWIM's NWC=0.1.  This bench
runs in-situ until it reaches the fully-write-verified accuracy (or an
NWC cap) and reports the crossover, alongside SWIM's budget.
"""

from __future__ import annotations

import numpy as np

from repro.cim import CimAccelerator, DeviceConfig, MappingConfig
from repro.core import (
    InSituConfig,
    InSituTrainer,
    SwimScorer,
    WeightSpace,
    evaluate_accuracy,
)
from repro.experiments.model_zoo import load_workload
from repro.utils.rng import RngStream

from .conftest import save_artifact


def test_insitu_needs_many_more_cycles_than_swim(benchmark, scale, out_dir):
    zoo = load_workload(scale.workload("lenet-digits"))
    data = zoo.data
    sigma = 0.15
    mapping = MappingConfig(
        weight_bits=zoo.spec.weight_bits,
        device=DeviceConfig(bits=4, sigma=sigma),
    )
    accelerator = CimAccelerator(zoo.model, mapping_config=mapping)
    space = WeightSpace.from_model(zoo.model)
    rng = RngStream(777).child("insitu-recovery")
    eval_x = data.test_x[: scale.eval_samples]
    eval_y = data.test_y[: scale.eval_samples]

    def run():
        # Reference: fully write-verified accuracy for this noise draw.
        accelerator.program(rng.child("ref-p").generator)
        accelerator.write_verify_all(rng.child("ref-v").generator)
        accelerator.apply_all()
        wv_accuracy = evaluate_accuracy(zoo.model, eval_x, eval_y)

        # SWIM at NWC ~ 0.1.
        order = SwimScorer(max_batches=2).ranking(
            zoo.model, space,
            data.train_x[: scale.sense_samples],
            data.train_y[: scale.sense_samples],
        )
        count = int(round(0.1 * space.total_size))
        swim_nwc = accelerator.apply_selection(
            space.masks_from_indices(order[:count])
        )
        swim_accuracy = evaluate_accuracy(zoo.model, eval_x, eval_y)

        # In-situ until it matches SWIM's accuracy (or the NWC cap).
        trainer = InSituTrainer(
            zoo.model, accelerator, InSituConfig(lr=scale.insitu_lr)
        )
        trainer.initialize(rng.child("insitu"))
        target = swim_accuracy - 0.002
        cap_iterations = trainer.iterations_for_nwc(4.0)
        crossover_nwc = None
        insitu_accuracy = evaluate_accuracy(zoo.model, eval_x, eval_y)
        step = max(1, cap_iterations // 40)
        done = 0
        while done < cap_iterations:
            trainer.run(data.train_x, data.train_y, step,
                        rng.child("chunk", done))
            done += step
            insitu_accuracy = evaluate_accuracy(zoo.model, eval_x, eval_y)
            if insitu_accuracy >= target:
                crossover_nwc = trainer.nwc
                break
        accelerator.clear()
        return wv_accuracy, swim_accuracy, swim_nwc, insitu_accuracy, \
            crossover_nwc, trainer.nwc

    wv_acc, swim_acc, swim_nwc, insitu_acc, crossover, spent = (
        benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    )
    lines = [
        f"In-situ recovery cost vs SWIM (LeNet, sigma={0.15})",
        f"  write-verify-all accuracy : {100 * wv_acc:.2f}%",
        f"  SWIM accuracy @ NWC={swim_nwc:.2f}: {100 * swim_acc:.2f}%",
        f"  in-situ final accuracy    : {100 * insitu_acc:.2f}% "
        f"(NWC spent: {spent:.2f})",
        f"  in-situ crossover NWC     : "
        + (f"{crossover:.2f}" if crossover is not None else
           "not reached within cap"),
        "  paper: in-situ needs NWC >> 1 (32 on LeNet) to fully recover",
    ]
    save_artifact(out_dir, "insitu_recovery", "\n".join(lines))
    # The headline: SWIM reaches its accuracy with ~0.1 NWC; in-situ needs
    # at least several times that (or never crosses within the cap).
    assert crossover is None or crossover > 3 * swim_nwc
