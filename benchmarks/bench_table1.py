"""Regenerates Table 1: LeNet accuracy vs NWC under sigma in {0.1, 0.15, 0.2}.

Shape assertions encode the paper's qualitative claims:

- SWIM at NWC=0.1 beats Magnitude and Random at NWC=0.1 for every sigma;
- every write-verify method converges to the same accuracy at NWC=1.0;
- SWIM's accuracy std is the smallest of the write-verify methods at
  low NWC (the robustness claim of Sec. 4.3).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.table1 import render_table1, run_table1

from .conftest import save_artifact


def test_table1(benchmark, scale, out_dir):
    result = benchmark.pedantic(
        lambda: run_table1(scale),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    save_artifact(out_dir, "table1", render_table1(result))

    for sigma, outcome in result.outcomes.items():
        swim = outcome.curve("swim")
        magnitude = outcome.curve("magnitude")
        random = outcome.curve("random")
        # Column index 1 is NWC = 0.1.
        assert swim.means()[1] >= magnitude.means()[1] - 0.005, (
            f"sigma={sigma}: SWIM should beat Magnitude at NWC=0.1"
        )
        assert swim.means()[1] >= random.means()[1] - 0.005, (
            f"sigma={sigma}: SWIM should beat Random at NWC=0.1"
        )
        # All write-verify methods meet at NWC = 1.0 (same verified set).
        final = [curve.means()[-1] for curve in (swim, magnitude, random)]
        assert max(final) - min(final) < 0.02, (
            f"sigma={sigma}: NWC=1.0 accuracies should agree, got {final}"
        )
    # Monotone trend for SWIM: more verified weights never hurts (mean).
    for sigma, outcome in result.outcomes.items():
        means = outcome.curve("swim").means()
        assert means[-1] >= means[0] - 0.01
