"""Plan serving: the reproduction's first traffic-facing layer.

``repro.serve`` turns resolved :class:`~repro.plan.engine.
SelectionPlan`\\ s from a script output into a served product: a
stdlib-only asyncio HTTP service over :class:`~repro.plan.engine.
PlanEngine` / :class:`~repro.plan.cache.PlanArtifactCache` that
answers "which weights do I verify at budget b for model X /
technology Y / read_time t?" at memory-lookup speed once a plan is
warm.

The perf contract, in one sentence each:

- **warm-path fast serving** — a cache hit replays stored canonical
  bytes and never constructs an engine resolution (the
  ``engine_resolutions`` tripwire counter proves it);
- **single-flight coalescing** — N identical concurrent requests
  collapse into one resolution, keyed by the same content digest the
  cache uses;
- **bounded memory** — the cache's LRU cap (``REPRO_CACHE_MEM_ITEMS``)
  and fixed-size latency windows keep a long-lived server's RSS flat.

Entry points: ``runner serve`` / ``python -m repro.serve`` (the CLI),
:class:`PlanService` + :class:`PlanHTTPServer` (embedding),
:class:`PlanClient` (consumers), ``benchmarks/bench_serving.py`` (the
load benchmark behind ``BENCH_serving.json``).
"""

from repro.serve.client import PlanClient, PlanClientError, PlanResponse
from repro.serve.codec import (
    PlanRequestError,
    parse_plan_request,
    plan_bytes,
    plan_config,
)
from repro.serve.http import DEFAULT_PORT, PlanHTTPServer
from repro.serve.service import LatencyWindow, PlanService, ServedPlan
from repro.serve.cli import run, serve_main

__all__ = [
    "DEFAULT_PORT",
    "LatencyWindow",
    "PlanClient",
    "PlanClientError",
    "PlanHTTPServer",
    "PlanRequestError",
    "PlanResponse",
    "PlanService",
    "ServedPlan",
    "parse_plan_request",
    "plan_bytes",
    "plan_config",
    "run",
    "serve_main",
]
