"""Plan serving: the reproduction's first traffic-facing layer.

``repro.serve`` turns resolved :class:`~repro.plan.engine.
SelectionPlan`\\ s from a script output into a served product: a
stdlib-only asyncio HTTP service over :class:`~repro.plan.engine.
PlanEngine` / :class:`~repro.plan.cache.PlanArtifactCache` that
answers "which weights do I verify at budget b for model X /
technology Y / read_time t?" at memory-lookup speed once a plan is
warm — for *every* zoo workload of the scale from one process, via
the :class:`PlanEngineRegistry` (lazy per-workload engines, routed by
``workload`` name or ``model`` digest, LRU-capped by
``REPRO_SERVE_MAX_ENGINES``, one shared artifact cache).

The perf contract, in one sentence each:

- **warm-path fast serving** — a cache hit replays stored canonical
  bytes and never constructs an engine resolution (the per-engine
  ``engine_resolutions`` tripwire counter proves it);
- **single-flight coalescing** — N identical concurrent requests
  collapse into one resolution *per engine*, keyed by the same
  content digest the shared cache uses;
- **bounded memory** — the cache's LRU cap (``REPRO_CACHE_MEM_ITEMS``),
  the live-engine cap (``REPRO_SERVE_MAX_ENGINES``) and fixed-size
  latency windows keep a long-lived server's RSS flat.

Entry points: ``runner serve`` / ``python -m repro.serve`` (the CLI),
:class:`PlanEngineRegistry` / :class:`PlanService` +
:class:`PlanHTTPServer` (embedding), :class:`PlanClient` (consumers),
``benchmarks/bench_serving.py`` (the load benchmark behind
``BENCH_serving.json``).
"""

from repro.serve.client import PlanClient, PlanClientError, PlanResponse
from repro.serve.codec import (
    PlanRequestError,
    parse_plan_request,
    plan_bytes,
    plan_config,
    split_plan_route,
)
from repro.serve.http import DEFAULT_PORT, PlanHTTPServer
from repro.serve.registry import PlanEngineRegistry, resolve_max_engines
from repro.serve.service import LatencyWindow, PlanService, ServedPlan
from repro.serve.cli import build_service, run, serve_main

__all__ = [
    "DEFAULT_PORT",
    "LatencyWindow",
    "PlanClient",
    "PlanClientError",
    "PlanEngineRegistry",
    "PlanHTTPServer",
    "PlanRequestError",
    "PlanResponse",
    "PlanService",
    "ServedPlan",
    "build_service",
    "parse_plan_request",
    "plan_bytes",
    "plan_config",
    "resolve_max_engines",
    "run",
    "serve_main",
    "split_plan_route",
]
