"""``runner serve``: stand up the plan-serving service from the CLI.

Usage (also reachable as ``python -m repro.serve``)::

    python -m repro.experiments.runner serve --scale smoke --port 8321
    python -m repro.experiments.runner serve --workload lenet-digits \\
        --port 0            # ephemeral port, printed at startup

Startup/shutdown speak the same exit-code taxonomy as every other
entry point (:mod:`repro.robustness.errors`): a bad workload, port, or
worker count exits 64; an unbindable address or unwritable cache exits
74; a forced (double-signal) shutdown exits 75; a drained shutdown
exits 0.

Knobs: ``--port``/``--host``, ``--workers`` (cold-resolution threads;
``0`` = auto, via the same :func:`~repro.robustness.scheduler.
resolve_worker_count` semantics as every other worker knob) and
``REPRO_CACHE_MEM_ITEMS`` (LRU cap on the cache's memory tier — the
knob that bounds a long-lived server's RSS).
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.robustness.errors import ReproError, ScenarioConfigError
from repro.robustness.report import render_cache_stats
from repro.robustness.scheduler import resolve_worker_count
from repro.serve.http import DEFAULT_PORT, PlanHTTPServer
from repro.serve.service import PlanService

__all__ = ["run", "serve_main"]


def build_service(workload="lenet-digits", scale=None, resolve_workers=1,
                  cache=None):
    """Load a workload and wire a :class:`PlanService` over it.

    Mirrors the orchestrator's engine construction (sense set = the
    scale's training-subset slice, curvature batch size capped at 256)
    so served plans are the ones a scenario run would compute.
    """
    from repro.experiments.config import get_scale
    from repro.experiments.model_zoo import load_workload
    from repro.plan import PlanArtifactCache, PlanEngine

    scale = get_scale(scale) if not hasattr(scale, "workloads") else scale
    try:
        spec = scale.workload(workload)
    except KeyError as exc:
        raise ScenarioConfigError(
            f"unknown workload {workload!r}; available: "
            f"{sorted(scale.workloads)}"
        ) from exc
    zoo = load_workload(spec)
    engine = PlanEngine(
        zoo.model,
        zoo.data.train_x[:scale.sense_samples],
        zoo.data.train_y[:scale.sense_samples],
        workload=zoo.spec.key,
        cache=cache if cache is not None else PlanArtifactCache(),
        curvature_batch_size=min(256, int(scale.sense_samples)),
    )
    return PlanService(engine, resolve_workers=resolve_workers)


async def _serve(server, announce):
    await server.start()
    announce(server)
    return await server.run()


def serve_main(argv=None):
    """Parse flags, build the service, serve until signaled."""
    parser = argparse.ArgumentParser(
        prog="runner serve",
        description="Serve selection plans over HTTP (POST /v1/plan, "
                    "GET /v1/plan/<key>, /healthz, /statsz).",
    )
    parser.add_argument("--workload", default="lenet-digits",
                        help="model-zoo workload to serve plans for")
    parser.add_argument("--scale", default=None,
                        help="smoke | default | full (or REPRO_SCALE)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"bind port (default {DEFAULT_PORT}; 0 = "
                             "ephemeral, printed at startup)")
    parser.add_argument("--workers", type=int, default=None,
                        help="cold-resolution worker threads (or "
                             "REPRO_WORKERS); 0 = auto-size to the core "
                             "count; default 1 — warm serving never "
                             "queues behind resolutions either way")
    args = parser.parse_args(argv)

    workers = resolve_worker_count(args.workers, "REPRO_WORKERS", "workers")
    service = build_service(
        workload=args.workload, scale=args.scale,
        resolve_workers=workers if workers is not None else 1,
    )
    server = PlanHTTPServer(service, host=args.host, port=args.port)

    def announce(bound):
        health = service.healthz()
        print(f"# plan-serving {health['workload']} "
              f"(model {health['model']}, cache v{health['cache_version']})")
        print(f"[serving http://{bound.host}:{bound.port}]", flush=True)

    code = asyncio.run(_serve(server, announce))
    stats = service.stats()
    counts = stats["requests"]
    print(f"[drained: served {counts['requests']} plan request(s) "
          f"(warm={counts['warm']} cold={counts['cold']} "
          f"coalesced={counts['coalesced']}) | cache: "
          f"{render_cache_stats(stats['cache'])}]")
    return code


def run(argv=None):
    """``serve_main`` behind the taxonomy: one-line errors, typed codes."""
    try:
        return serve_main(argv)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except OSError as exc:
        print(f"error: cannot serve: {exc}", file=sys.stderr)
        return 74
