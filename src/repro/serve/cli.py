"""``runner serve``: stand up the plan-serving registry from the CLI.

Usage (also reachable as ``python -m repro.serve``)::

    python -m repro.experiments.runner serve --scale smoke --port 8321
    python -m repro.experiments.runner serve --workload lenet-digits \\
        --workload convnet-cifar --port 0   # two preloaded engines

One process serves every zoo workload of its scale: the ``--workload``
flags (repeatable) name the engines *preloaded* at startup — the first
is the default route for requests without a ``workload``/``model``
field — and every other workload of the scale stays lazily loadable on
first request, bounded by ``--max-engines`` /
``REPRO_SERVE_MAX_ENGINES`` (least-recently-routed engines retire with
their executors drained).

Startup/shutdown speak the same exit-code taxonomy as every other
entry point (:mod:`repro.robustness.errors`): a bad workload, port,
worker count, or engine cap exits 64; an unbindable address or
unwritable cache exits 74; a forced (double-signal) shutdown exits 75;
a drained shutdown exits 0.

Knobs: ``--port``/``--host``, ``--workers`` (per-engine
cold-resolution threads; ``0`` = auto, via the same
:func:`~repro.robustness.scheduler.resolve_worker_count` semantics as
every other worker knob), ``--max-engines`` and
``REPRO_CACHE_MEM_ITEMS`` (LRU cap on the shared cache's memory tier —
with the engine cap, the two knobs that bound a long-lived server's
RSS).
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.robustness.errors import ReproError, ScenarioConfigError
from repro.robustness.report import render_cache_stats
from repro.robustness.scheduler import resolve_worker_count
from repro.serve.http import DEFAULT_PORT, PlanHTTPServer
from repro.serve.registry import PlanEngineRegistry

__all__ = ["build_service", "run", "serve_main"]


def build_service(workloads=("lenet-digits",), scale=None, resolve_workers=1,
                  cache=None, max_engines=None, preload=True, metrics=None):
    """Wire a :class:`PlanEngineRegistry` over a scale's model zoo.

    ``workloads`` (a name or a sequence) are preloaded eagerly — the
    first is the default route — and every other workload of the scale
    stays lazily loadable.  Engine construction itself is
    :func:`repro.plan.engine.build_engine` (sense set = the scale's
    training-subset slice, curvature batch size capped at 256), so
    served plans are the ones a scenario run would compute.

    One shared :class:`~repro.obs.metrics.MetricsRegistry` (``metrics``,
    default fresh) spans the engine registry, every per-workload
    service, and — when the cache is built here — the artifact cache,
    so ``GET /metricsz`` is a single exposition for the whole process.
    """
    from repro.experiments.config import get_scale
    from repro.plan.engine import build_engine

    scale = get_scale(scale) if not hasattr(scale, "workloads") else scale
    if isinstance(workloads, str):
        workloads = (workloads,)
    workloads = tuple(workloads)
    unknown = sorted(set(workloads) - set(scale.workloads))
    if unknown:
        raise ScenarioConfigError(
            f"unknown workload(s) {unknown}; available: "
            f"{sorted(scale.workloads)}"
        )
    registry = PlanEngineRegistry(
        lambda workload, cache: build_engine(
            workload, scale=scale, cache=cache
        ),
        workloads=sorted(scale.workloads),
        default=workloads[0] if workloads else None,
        cache=cache,
        resolve_workers=resolve_workers,
        max_engines=max_engines,
        metrics=metrics,
    )
    if preload:
        for workload in workloads:
            registry.service(workload)
    return registry


async def _serve(server, announce):
    await server.start()
    announce(server)
    return await server.run()


def serve_main(argv=None):
    """Parse flags, build the service, serve until signaled."""
    parser = argparse.ArgumentParser(
        prog="runner serve",
        description="Serve selection plans over HTTP (POST /v1/plan, "
                    "GET /v1/plan/<key>, /v1/models, /healthz, /statsz, "
                    "/metricsz).",
    )
    parser.add_argument("--workload", action="append", default=None,
                        dest="workloads", metavar="WORKLOAD",
                        help="zoo workload to preload; repeatable — the "
                             "first is the default route, and every other "
                             "workload of the scale stays lazily loadable "
                             "(default: lenet-digits)")
    parser.add_argument("--scale", default=None,
                        help="smoke | default | full (or REPRO_SCALE)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"bind port (default {DEFAULT_PORT}; 0 = "
                             "ephemeral, printed at startup)")
    parser.add_argument("--workers", type=int, default=None,
                        help="per-engine cold-resolution worker threads "
                             "(or REPRO_WORKERS); 0 = auto-size to the "
                             "core count; default 1 — warm serving never "
                             "queues behind resolutions either way")
    parser.add_argument("--max-engines", type=int, default=None,
                        help="cap on live engines (or "
                             "REPRO_SERVE_MAX_ENGINES; 0 = unbounded) — "
                             "least-recently-routed engines retire with "
                             "their executors drained")
    args = parser.parse_args(argv)

    workers = resolve_worker_count(args.workers, "REPRO_WORKERS", "workers")
    service = build_service(
        workloads=tuple(args.workloads or ("lenet-digits",)),
        scale=args.scale,
        resolve_workers=workers if workers is not None else 1,
        max_engines=args.max_engines,
    )
    server = PlanHTTPServer(service, host=args.host, port=args.port)

    def announce(bound):
        health = service.healthz()
        for row in service.models()["models"]:
            if row["loaded"]:
                print(f"# plan-serving {row['workload']} "
                      f"(model {row['model']})")
        lazy = sorted(set(health["workloads"]) - set(health["loaded"]))
        if lazy:
            print(f"# loadable on demand: {', '.join(lazy)}")
        cap = health["max_engines"]
        print(f"# cache v{health['cache_version']}"
              + (f"; max engines {cap}" if cap else ""))
        print(f"[serving http://{bound.host}:{bound.port}]", flush=True)

    code = asyncio.run(_serve(server, announce))
    stats = service.stats()
    counts = stats["requests"]
    print(f"[drained: served {counts['requests']} plan request(s) "
          f"(warm={counts['warm']} cold={counts['cold']} "
          f"coalesced={counts['coalesced']}) | cache: "
          f"{render_cache_stats(stats['cache'])}]")
    return code


def run(argv=None):
    """``serve_main`` behind the taxonomy: one-line errors, typed codes."""
    try:
        return serve_main(argv)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except OSError as exc:
        print(f"error: cannot serve: {exc}", file=sys.stderr)
        return 74
