"""Tiny stdlib client for the plan-serving service.

``http.client`` only — a consumer of served plans should not need the
reproduction installed, let alone its numeric stack; this module's only
repro import is the error taxonomy.  One keep-alive connection per
client, transparently re-opened when the server (or a drain) closes it.

Example::

    from repro.serve.client import PlanClient

    with PlanClient(port=8321) as client:
        served = client.plan({"technology": "pcm", "read_time": 3.6e3})
        counts = dict(zip(served.plan["nwc_targets"], served.plan["counts"]))
        again = client.fetch(served.key)      # warm, byte-identical
        assert again.data == served.data
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from http.client import HTTPConnection, HTTPException

from repro.robustness.errors import ReproError

__all__ = ["PlanClient", "PlanClientError", "PlanResponse"]


class PlanClientError(ReproError):
    """A non-2xx (or transport-failed) service response.

    Carries the HTTP ``status`` (None when the transport itself
    failed); retryable is left False — the caller knows whether its
    request is safe to repeat.
    """

    def __init__(self, message, status=None):
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class PlanResponse:
    """One served plan: canonical bytes plus the serving headers."""

    data: bytes
    key: str
    source: str

    @property
    def plan(self):
        """The plan as a dict (``SelectionPlan.to_json`` layout)."""
        return json.loads(self.data.decode("utf-8"))


class PlanClient:
    """Talks to one :class:`~repro.serve.http.PlanHTTPServer`.

    After every round trip the client keeps the server's correlation
    headers: :attr:`last_request_id` (the ``X-Request-Id`` the server
    attached to the response *and* to its ``http.request`` trace span)
    and :attr:`last_server_ms` (``X-Server-Ms``, the server-side
    dispatch time in milliseconds).  To chase a slow request down to
    the server's trace JSONL::

        served = client.plan({"technology": "pcm"})
        if client.last_server_ms and client.last_server_ms > 100:
            print("slow:", client.last_request_id)
            # server side (started with tracing enabled):
            #   grep <last_request_id> trace.jsonl
            # -> the http.request span with attrs.request_id ==
            #    last_request_id carries the route, status, and exact
            #    start/dur of this very request.

    A large client-measured latency with a small ``last_server_ms``
    indicts the network or the client, not the service.
    """

    def __init__(self, host="127.0.0.1", port=8321, timeout=60.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn = None
        #: ``X-Request-Id`` of the most recent response (None before
        #: the first round trip or when the server predates the header).
        self.last_request_id = None
        #: ``X-Server-Ms`` of the most recent response, as a float.
        self.last_server_ms = None

    # ---------------------------------------------------------------- plumbing

    def _request(self, method, path, body=None):
        """One round trip: ``(status, lowercase headers, body bytes)``.

        Retries exactly once on a dead keep-alive connection (the
        server may have drained between requests); a failure on a
        fresh connection is the caller's problem.
        """
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (1, 2):
            if self._conn is None:
                self._conn = HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                data = response.read()
            except (HTTPException, ConnectionError, OSError) as exc:
                self.close()
                if attempt == 2:
                    raise PlanClientError(
                        f"{method} {path} failed: {exc}"
                    ) from exc
                continue
            if response.will_close:
                self.close()
            headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            self.last_request_id = headers.get("x-request-id")
            try:
                self.last_server_ms = float(headers["x-server-ms"])
            except (KeyError, ValueError):
                self.last_server_ms = None
            return response.status, headers, data

    @staticmethod
    def _error_line(status, data):
        try:
            message = json.loads(data.decode("utf-8")).get("error", "")
        except (UnicodeDecodeError, ValueError):
            message = data[:200].decode("utf-8", "replace")
        return f"HTTP {status}: {message}"

    def _json(self, path):
        status, _, data = self._request("GET", path)
        if status != 200:
            raise PlanClientError(self._error_line(status, data), status=status)
        return json.loads(data.decode("utf-8"))

    # ------------------------------------------------------------------- API

    def plan(self, request=None, **fields):
        """``POST /v1/plan``; returns a :class:`PlanResponse`.

        ``request`` is the JSON body as a dict (or pass fields as
        keyword arguments).  Against a multi-workload server, a
        ``workload="convnet-cifar"`` or ``model="<digest>"`` field
        routes the request to that engine (default: the server's
        default workload).  Raises :class:`PlanClientError` on any
        non-200 — a 400's single-line reason is the exception message.
        """
        payload = dict(request or {})
        payload.update(fields)
        status, headers, data = self._request(
            "POST", "/v1/plan", body=json.dumps(payload).encode("utf-8")
        )
        if status != 200:
            raise PlanClientError(self._error_line(status, data), status=status)
        return PlanResponse(
            data=data,
            key=headers.get("x-plan-key", ""),
            source=headers.get("x-plan-source", ""),
        )

    def fetch(self, key):
        """``GET /v1/plan/<key>``; a :class:`PlanResponse`, or None on 404."""
        status, headers, data = self._request("GET", f"/v1/plan/{key}")
        if status == 404:
            return None
        if status != 200:
            raise PlanClientError(self._error_line(status, data), status=status)
        return PlanResponse(
            data=data,
            key=headers.get("x-plan-key", key),
            source=headers.get("x-plan-source", "warm"),
        )

    def models(self):
        """``GET /v1/models`` as a dict.

        ``{"default", "max_engines", "models": [{"workload", "model",
        "loaded", "requests"}, ...]}`` — one row per loadable workload;
        the ``model`` digest of a loaded row is what a ``plan(...,
        model=<digest>)`` request routes by.
        """
        return self._json("/v1/models")

    def healthz(self):
        """``GET /healthz`` as a dict."""
        return self._json("/healthz")

    def statsz(self):
        """``GET /statsz`` as a dict (counters, cache stats, latency)."""
        return self._json("/statsz")

    def metricsz(self):
        """``GET /metricsz`` as Prometheus exposition text (str)."""
        status, _, data = self._request("GET", "/metricsz")
        if status != 200:
            raise PlanClientError(self._error_line(status, data), status=status)
        return data.decode("utf-8")

    def close(self):
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
