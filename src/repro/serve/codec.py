"""Wire codec for the plan-serving service.

Three jobs, all deliberately boring:

- **request parsing** (:func:`parse_plan_request`): a ``POST /v1/plan``
  JSON body becomes a :class:`~repro.plan.engine.PlanRequest`, with
  every field validated up front so a malformed request dies as one
  HTTP 400 line instead of a stack trace halfway through an engine
  resolution.
- **content addressing** (:func:`plan_config`): the canonical config
  dict whose :meth:`~repro.plan.cache.PlanArtifactCache.key` is *the*
  identity of a served plan.  It folds in everything that determines
  the plan bytes — model digest, sense digest, the engine's curvature
  batch size, and the request's physics — so the warm cache, the
  single-flight coalescing map, and the ``GET /v1/plan/<key>`` fetch
  all agree on one key and can never serve each other stale data.
- **plan serialization** (:func:`plan_bytes` + the artifact codec):
  a resolved :class:`~repro.plan.engine.SelectionPlan` is canonical
  JSON (sorted keys, no whitespace), and the ``plan`` cache artifact
  stores *those bytes* verbatim.  Warm responses are therefore
  byte-identical to cold ones by construction — the server never
  re-serializes on the warm path, it replays.
"""

from __future__ import annotations

import json
import re

import numpy as np

from repro.core.metrics import DEFAULT_NWC_TARGETS
from repro.plan.engine import PLANNED_METHODS, PlanRequest
from repro.robustness.errors import ScenarioConfigError

__all__ = [
    "PlanRequestError",
    "decode_plan_bytes",
    "encode_plan_bytes",
    "is_model_digest",
    "is_plan_key",
    "parse_plan_request",
    "plan_bytes",
    "plan_config",
    "split_plan_route",
]

#: Shape of a cache key as it appears in ``GET /v1/plan/<key>`` —
#: :func:`repro.plan.cache.artifact_key` emits 32 lowercase hex chars.
_KEY_PATTERN = re.compile(r"^[0-9a-f]{32}$")

#: Shape of a model digest as served in ``/v1/models`` and accepted in a
#: request's ``model`` routing field —
#: :func:`repro.plan.cache.model_digest` emits 16 lowercase hex chars.
_MODEL_DIGEST_PATTERN = re.compile(r"^[0-9a-f]{16}$")

#: Name of the single array inside a ``plan`` cache artifact: the
#: canonical JSON bytes of the resolved plan.
_PLAN_ARRAY = "plan_json"


class PlanRequestError(ScenarioConfigError):
    """A malformed ``/v1/plan`` request body (served as HTTP 400).

    A :class:`~repro.robustness.errors.ScenarioConfigError`, so the
    same failure raised outside the HTTP layer (e.g. from a script
    building requests) exits with the usage code 64.
    """


def is_plan_key(text):
    """Whether ``text`` is shaped like a cache key (32 hex chars)."""
    return bool(_KEY_PATTERN.match(text or ""))


def is_model_digest(text):
    """Whether ``text`` is shaped like a model digest (16 hex chars)."""
    return bool(_MODEL_DIGEST_PATTERN.match(text or ""))


def split_plan_route(body):
    """Split the routing fields off a ``POST /v1/plan`` body.

    Returns ``((workload, model), remainder)`` where ``remainder`` is
    the body re-encoded *without* the routing fields — the per-engine
    request the resolved :class:`~repro.serve.service.PlanService`
    parses.  Routing never reaches :func:`plan_config`, so a routed
    request's content key (and therefore its plan bytes) is identical
    to the same request POSTed to a single-workload server.

    Raises :class:`PlanRequestError` on a non-JSON body, a non-object
    body, an ill-typed routing field, or both fields set at once (a
    digest names exactly one workload — a request naming both is
    ambiguous the moment they disagree).
    """
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise PlanRequestError(
            f"request body is not valid JSON: {str(exc).splitlines()[0]}"
        ) from exc
    if not isinstance(data, dict):
        raise PlanRequestError(
            f"request body must be a JSON object, got {type(data).__name__}"
        )
    workload = data.pop("workload", None)
    if workload is not None and not isinstance(workload, str):
        raise PlanRequestError(
            f"workload must be a workload name, got {workload!r}"
        )
    model = data.pop("model", None)
    if model is not None and (
        not isinstance(model, str) or not is_model_digest(model)
    ):
        raise PlanRequestError(
            f"model must be a 16-hex model digest, got {model!r}"
        )
    if workload is not None and model is not None:
        raise PlanRequestError(
            "set workload or model, not both — a model digest already "
            "names its workload"
        )
    return (workload, model), json.dumps(data).encode("utf-8")


def _field(data, name, kinds, default, what):
    value = data.get(name, default)
    if value is not None and not isinstance(value, kinds):
        raise PlanRequestError(f"{name} must be {what}, got {value!r}")
    return value


def _number(data, name, default=None, minimum=None):
    value = _field(data, name, (int, float), default, "a number")
    if isinstance(value, bool):
        raise PlanRequestError(f"{name} must be a number, got {value!r}")
    if value is not None and minimum is not None and value < minimum:
        raise PlanRequestError(f"{name} must be >= {minimum}, got {value!r}")
    return value


def _integer(data, name, default, minimum=1):
    value = data.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise PlanRequestError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise PlanRequestError(f"{name} must be >= {minimum}, got {value!r}")
    return value


_FIELDS = (
    "methods", "nwc_targets", "technology", "sigma", "read_time",
    "weight_bits", "device_bits", "curvature_batches", "wear_inflation",
    "wear_consumed",
)


def parse_plan_request(body):
    """A ``POST /v1/plan`` JSON body as a validated :class:`PlanRequest`.

    Every failure mode — non-JSON body, unknown fields, wrong types,
    unplannable methods, unregistered technology, missing physics —
    raises :class:`PlanRequestError` with a single-line message.
    """
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise PlanRequestError(
            f"request body is not valid JSON: {str(exc).splitlines()[0]}"
        ) from exc
    if not isinstance(data, dict):
        raise PlanRequestError(
            f"request body must be a JSON object, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - set(_FIELDS))
    if unknown:
        raise PlanRequestError(
            f"unknown request field(s) {unknown}; allowed: {sorted(_FIELDS)}"
        )

    methods = _field(data, "methods", (list, tuple),
                     list(PLANNED_METHODS), "a list of method names")
    if not methods:
        raise PlanRequestError("methods must not be empty")
    unplanned = sorted(set(methods) - set(PLANNED_METHODS))
    if unplanned:
        raise PlanRequestError(
            f"method(s) {unplanned} have no deterministic plan; plannable: "
            f"{list(PLANNED_METHODS)}"
        )

    targets = _field(data, "nwc_targets", (list, tuple),
                     list(DEFAULT_NWC_TARGETS), "a list of budgets in [0, 1]")
    if not targets:
        raise PlanRequestError("nwc_targets must not be empty")
    for target in targets:
        if isinstance(target, bool) or not isinstance(target, (int, float)) \
                or not 0.0 <= target <= 1.0:
            raise PlanRequestError(
                f"nwc_targets entries must be numbers in [0, 1], got "
                f"{target!r}"
            )

    technology = _field(data, "technology", (str,), None,
                        "a registered technology name")
    if technology is not None:
        from repro.cim import resolve_technology

        try:
            resolve_technology(technology)
        except KeyError as exc:
            raise PlanRequestError(
                f"unknown technology {technology!r}"
            ) from exc

    sigma = _number(data, "sigma", minimum=0.0)
    if technology is None and sigma is None:
        raise PlanRequestError(
            "request must set a technology or an explicit sigma"
        )

    return PlanRequest(
        methods=tuple(str(m) for m in methods),
        nwc_targets=tuple(float(t) for t in targets),
        technology=technology,
        sigma=None if sigma is None else float(sigma),
        read_time=_number(data, "read_time", minimum=0.0),
        weight_bits=_integer(data, "weight_bits", 4),
        device_bits=_integer(data, "device_bits", 4),
        curvature_batches=_integer(data, "curvature_batches", 2),
        wear_inflation=float(_number(data, "wear_inflation", 1.0, minimum=0.0)),
        wear_consumed=_number(data, "wear_consumed", minimum=0.0),
    )


def plan_config(engine, request):
    """The canonical content address of one served plan.

    Mirrors the request canonicalization of :meth:`~repro.plan.
    orchestrator.ScenarioOrchestrator._cell_config` (technology through
    ``to_dict``, budgets as floats) plus the engine parameters that
    shape the result (model/sense digests, curvature batch size), so
    two servers over the same model agree on every key.
    """
    technology = request.technology
    if technology is not None:
        from repro.cim import resolve_technology

        technology = resolve_technology(technology).to_dict()
    return {
        "model": engine._model_digest,
        "sense": engine._sense_digest,
        "workload": engine.workload,
        "curvature_batch_size": int(engine.curvature_batch_size),
        "request": {
            "methods": list(request.methods),
            "nwc_targets": [float(t) for t in request.nwc_targets],
            "technology": technology,
            "sigma": request.sigma,
            "read_time": request.read_time,
            "weight_bits": int(request.weight_bits),
            "device_bits": int(request.device_bits),
            "curvature_batches": int(request.curvature_batches),
            "wear_inflation": float(request.wear_inflation),
            "wear_consumed": request.wear_consumed,
        },
    }


def plan_bytes(plan):
    """A resolved plan as canonical JSON bytes (the response body)."""
    return json.dumps(
        plan.to_json(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def encode_plan_bytes(data):
    """Plan bytes as a cacheable ``name -> array`` artifact dict."""
    return {_PLAN_ARRAY: np.frombuffer(data, dtype=np.uint8).copy()}


def decode_plan_bytes(arrays):
    """The stored canonical plan bytes of one ``plan`` artifact."""
    return arrays[_PLAN_ARRAY].tobytes()
