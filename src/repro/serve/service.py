"""The transport-independent plan-serving core.

:class:`PlanService` answers "which weights do I verify at budget b?"
at three speeds, from one content-addressed key space:

- **warm** — the plan artifact is already in the
  :class:`~repro.plan.cache.PlanArtifactCache`: the response is the
  stored canonical bytes, served without constructing *any*
  :class:`~repro.plan.engine.PlanEngine` resolution.  The
  ``engine_resolutions`` counter is the tripwire: it must not move on
  warm traffic (the serving tests pin this).
- **cold** — a full miss: the request resolves through the engine on a
  worker thread (the asyncio event loop keeps serving warm hits
  meanwhile), and the resulting bytes are stored before fan-out.
- **coalesced** — the request's key is already being resolved:
  instead of a second engine pass, the request awaits the in-flight
  resolution's future.  The single-flight map is keyed by the *same*
  content key the cache uses (:func:`~repro.serve.codec.plan_config`),
  so coalescing and caching can never disagree about request identity:
  N identical concurrent requests cost exactly one resolution.

Memory stays bounded under serving load: the cache's LRU cap
(``REPRO_CACHE_MEM_ITEMS``) bounds the artifact tier, and latency
samples live in fixed-size windows (:class:`LatencyWindow`).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, ZeroedCounter, render_prometheus
from repro.obs.trace import span
from repro.serve.codec import (
    decode_plan_bytes,
    encode_plan_bytes,
    is_plan_key,
    parse_plan_request,
    plan_bytes,
    plan_config,
)

__all__ = ["COUNTER_NAMES", "LatencyWindow", "PlanService", "ServedPlan"]

#: The artifact kind under which served plans live in the cache.
PLAN_KIND = "plan"

#: Counter keys every :class:`PlanService` keeps.  The engine registry
#: zero-seeds its aggregate from this, so ``/statsz`` is shape-stable
#: before any engine has loaded or served.
COUNTER_NAMES = (
    "requests",
    "warm",
    "cold",
    "coalesced",
    "fetch_hits",
    "fetch_misses",
    "bad_requests",
    "resolve_errors",       # failed resolutions (cold + riders)
    "engine_resolutions",   # the warm-path tripwire
)


class LatencyWindow:
    """Fixed-size latency sample window with on-demand percentiles.

    Serving load must not grow RSS without bound, so the window keeps
    the most recent ``maxlen`` samples (plus a lifetime count) and
    computes p50/p99 by sorting on demand — ``/statsz`` is rare next to
    request traffic.
    """

    def __init__(self, maxlen=2048):
        self._samples = deque(maxlen=int(maxlen))
        self.count = 0

    def record(self, seconds):
        self._samples.append(float(seconds))
        self.count += 1

    def percentile(self, p):
        """The ``p``-th percentile (0-100) of the windowed samples."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        index = round((p / 100.0) * (len(ordered) - 1))
        return ordered[int(index)]

    def summary(self):
        """``{"count", "p50_ms", "p99_ms"}`` for ``/statsz``."""
        p50, p99 = self.percentile(50), self.percentile(99)
        return {
            "count": self.count,
            "p50_ms": None if p50 is None else round(1e3 * p50, 4),
            "p99_ms": None if p99 is None else round(1e3 * p99, 4),
        }


@dataclass(frozen=True)
class ServedPlan:
    """One served response: canonical plan bytes plus provenance.

    ``source`` is ``"warm"`` (cache hit, no engine), ``"cold"`` (this
    request paid the engine resolution) or ``"coalesced"`` (rode an
    in-flight resolution); ``key`` is the content address a client can
    re-fetch the plan at via ``GET /v1/plan/<key>``.
    """

    data: bytes
    key: str
    source: str


class PlanService:
    """Serves :class:`~repro.plan.engine.SelectionPlan`\\ s over one model.

    Parameters
    ----------
    engine:
        The :class:`~repro.plan.engine.PlanEngine` cold requests
        resolve through; its cache is the serving store.
    resolve_workers:
        Threads in the cold-resolution executor.  Default 1: engine
        resolutions serialize (they share cache stages), which also
        maximizes stage reuse; the event loop stays free either way.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to register this
        service's counter and histogram families in (default: a private
        one).  Families are labeled by workload, so every engine of a
        :class:`~repro.serve.registry.PlanEngineRegistry` shares one
        registry — and one ``/metricsz`` — without colliding.  Registry
        counters are process-cumulative; the per-service view
        (:attr:`counters`, ``/statsz``) is zero-based from service
        construction, so a lazily rebuilt engine still reports fresh
        numbers.
    """

    def __init__(self, engine, resolve_workers=1, metrics=None):
        self.engine = engine
        self.cache = engine.cache
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, int(resolve_workers)),
            thread_name_prefix="plan-resolve",
        )
        self._inflight = {}  # content key -> asyncio.Task resolving it
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        workload = engine.workload or "default"
        self.workload_label = workload
        requests = self.metrics.counter(
            "repro_serve_requests_total", "Plan requests served.",
            labels=("workload",),
        )
        plans = self.metrics.counter(
            "repro_serve_plans_total",
            "Plan responses by source (warm/cold/coalesced).",
            labels=("workload", "source"),
        )
        fetches = self.metrics.counter(
            "repro_serve_fetches_total",
            "Content-addressed GET /v1/plan/<key> fetches by result.",
            labels=("workload", "result"),
        )
        bad = self.metrics.counter(
            "repro_serve_bad_requests_total", "Malformed plan requests.",
            labels=("workload",),
        )
        errors = self.metrics.counter(
            "repro_serve_resolve_errors_total",
            "Failed resolutions (cold requesters and coalesced riders).",
            labels=("workload",),
        )
        resolutions = self.metrics.counter(
            "repro_serve_engine_resolutions_total",
            "Engine resolutions — the warm-path tripwire.",
            labels=("workload",),
        )
        self._c = {
            "requests": ZeroedCounter(requests.labels(workload=workload)),
            "warm": ZeroedCounter(plans.labels(workload=workload, source="warm")),
            "cold": ZeroedCounter(plans.labels(workload=workload, source="cold")),
            "coalesced": ZeroedCounter(
                plans.labels(workload=workload, source="coalesced")
            ),
            "fetch_hits": ZeroedCounter(
                fetches.labels(workload=workload, result="hit")
            ),
            "fetch_misses": ZeroedCounter(
                fetches.labels(workload=workload, result="miss")
            ),
            "bad_requests": ZeroedCounter(bad.labels(workload=workload)),
            "resolve_errors": ZeroedCounter(errors.labels(workload=workload)),
            "engine_resolutions": ZeroedCounter(
                resolutions.labels(workload=workload)
            ),
        }
        histogram = self.metrics.histogram(
            "repro_serve_plan_seconds",
            "Plan-request latency by source.",
            labels=("workload", "source"),
        )
        self._latency_hist = {
            source: histogram.labels(workload=workload, source=source)
            for source in ("warm", "cold", "coalesced")
        }
        self.latency = {
            "warm": LatencyWindow(),
            "cold": LatencyWindow(),
            "coalesced": LatencyWindow(),
        }

    @property
    def counters(self):
        """Per-service counter view — plain ints keyed by
        :data:`COUNTER_NAMES`, zero-based from service construction.
        The backing registry children keep process-cumulative counts
        for ``/metricsz``.
        """
        return {name: child.value for name, child in self._c.items()}

    def _record_latency(self, source, seconds):
        self.latency[source].record(seconds)
        self._latency_hist[source].observe(seconds)

    # ---------------------------------------------------------------- serving

    async def plan(self, body):
        """Serve one ``POST /v1/plan`` body; returns :class:`ServedPlan`.

        Raises :class:`~repro.serve.codec.PlanRequestError` on a
        malformed body (the HTTP layer maps it to 400).
        """
        start = time.perf_counter()
        try:
            request = parse_plan_request(body)
        except Exception:
            self._c["bad_requests"].inc()
            raise
        config = plan_config(self.engine, request)
        key = self.cache.key(PLAN_KIND, config)

        arrays = self.cache.lookup(PLAN_KIND, key)
        if arrays is not None:
            source, data = "warm", decode_plan_bytes(arrays)
        else:
            task = self._inflight.get(key)
            if task is not None:
                source = "coalesced"
            else:
                source = "cold"
                task = asyncio.get_running_loop().create_task(
                    self._resolve_async(request, config)
                )
                self._inflight[key] = task
                task.add_done_callback(
                    lambda _done, key=key: self._inflight.pop(key, None)
                )
            try:
                data = await task
            except Exception:
                # A failed resolution is still traffic: the cold
                # requester *and* every coalesced rider record their
                # request, source, and latency, plus the error counter —
                # error load must be visible in /statsz.
                self._c["requests"].inc()
                self._c[source].inc()
                self._c["resolve_errors"].inc()
                self._record_latency(source, time.perf_counter() - start)
                raise

        self._c["requests"].inc()
        self._c[source].inc()
        self._record_latency(source, time.perf_counter() - start)
        return ServedPlan(data=data, key=key, source=source)

    async def _resolve_async(self, request, config):
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, self._resolve, request, config
        )

    def _resolve(self, request, config):
        # The only line in the serving layer that touches the engine:
        # the tripwire counter and the resolution are inseparable.
        self._c["engine_resolutions"].inc()
        with span("serve.resolve", workload=self.workload_label):
            data = plan_bytes(self.engine.plan(request))
        self.cache.put(PLAN_KIND, config, encode_plan_bytes(data))
        return data

    def fetch(self, key):
        """``GET /v1/plan/<key>``: content-addressed warm fetch.

        Pure cache lookup — a miss returns None (HTTP 404), never a
        resolution; an ill-shaped key is a miss by definition.
        """
        arrays = self.cache.lookup(PLAN_KIND, key) if is_plan_key(key) else None
        if arrays is None:
            self._c["fetch_misses"].inc()
            return None
        self._c["fetch_hits"].inc()
        return decode_plan_bytes(arrays)

    # -------------------------------------------------------------- plumbing

    def healthz(self):
        """Liveness payload: the model being served and its key space."""
        return {
            "status": "ok",
            "workload": self.engine.workload,
            "model": self.engine._model_digest,
            "cache_version": self.cache.version,
        }

    def model_entry(self):
        """This engine's row in a ``GET /v1/models`` listing."""
        return {
            "workload": self.engine.workload,
            "model": self.engine._model_digest,
            "loaded": True,
            "requests": dict(self.counters),
        }

    def models(self):
        """``GET /v1/models`` payload for a single-engine service.

        Shape-compatible with :meth:`~repro.serve.registry.
        PlanEngineRegistry.models`, so embedders can swap one engine
        for a registry without touching consumers.
        """
        return {
            "default": self.engine.workload,
            "max_engines": 1,
            "models": [self.model_entry()],
        }

    def stats(self):
        """``/statsz`` payload.

        The ``cache`` section is :meth:`~repro.plan.cache.
        PlanArtifactCache.stats` verbatim — the same dict
        :class:`~repro.robustness.report.RunReport` embeds, one shared
        code path for hit/miss/quarantine counters.
        """
        return {
            "requests": dict(self.counters),
            "in_flight_coalesced": len(self._inflight),
            "engine": dict(self.engine.stats),
            "cache": self.cache.stats(),
            "latency_ms": {
                source: window.summary()
                for source, window in self.latency.items()
            },
        }

    def metricsz(self):
        """``GET /metricsz`` payload: Prometheus text exposition.

        Covers this service's request/latency families plus the
        cache's — merged by registry identity, so a cache sharing the
        service's registry renders exactly once.
        """
        return render_prometheus(self.metrics, self.cache.metrics)

    def close(self, wait=True):
        """Shut the resolution executor down (after the HTTP drain).

        ``wait=False`` lets in-flight resolutions finish on their
        worker threads without blocking the caller — the registry's
        LRU-retirement path, which runs on the event loop and must not
        stall warm traffic behind a retiring engine's drain.
        """
        self._executor.shutdown(wait=wait)
