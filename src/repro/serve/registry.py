"""Multi-workload plan serving: one engine per zoo workload, lazily.

PR 8's serving layer held exactly one :class:`~repro.plan.engine.
PlanEngine` — one workload, one model digest.  A fleet front end wants
one process answering for *every* zoo workload, so the
:class:`PlanEngineRegistry` grows the service sideways instead of up:

- **lazy engines** — the registry knows every loadable workload of its
  scale but constructs a :class:`~repro.serve.service.PlanService`
  (engine + resolution executor + counters) only on a workload's first
  request, through one injected ``engine_factory(workload, cache)``.
- **digest routing** — a ``POST /v1/plan`` body may carry a
  ``workload`` (zoo key) or ``model`` (16-hex digest) field; the
  registry resolves it and strips it before the per-engine parse, so a
  routed request's content key — and therefore its plan bytes — is
  identical to the same request against a single-workload server.
  Digest routing covers every engine this process has loaded at least
  once (digests are deterministic, so the map survives retirement).
- **bounded engines** — ``REPRO_SERVE_MAX_ENGINES`` (or the
  ``max_engines`` argument; 0 = unbounded) caps live engines with
  least-recently-*routed* retirement: the retired service's executor
  drains on its worker threads (in-flight coalesced riders still
  complete) without blocking the event loop, and a later request for
  that workload rebuilds it fresh.
- **shared cache, per-engine contracts** — every engine stores into
  one bounded :class:`~repro.plan.cache.PlanArtifactCache` (the
  content key already folds in the model digest, so engines can never
  collide), while the ``engine_resolutions`` tripwire and the
  single-flight in-flight map stay *per engine*, keyed by the cache's
  own content key exactly as before.

The registry implements the same surface the HTTP layer speaks
(``plan`` / ``fetch`` / ``models`` / ``healthz`` / ``stats`` /
``close``), so :class:`~repro.serve.http.PlanHTTPServer` serves either
a bare :class:`~repro.serve.service.PlanService` or a registry without
knowing which.  This is the single-box half of the ROADMAP's
digest-sharded fan-out: the content key is already the shard key.
"""

from __future__ import annotations

import os
from collections import OrderedDict

from repro.obs.metrics import MetricsRegistry, ZeroedCounter, render_prometheus
from repro.robustness.errors import ScenarioConfigError
from repro.serve.codec import (
    PlanRequestError,
    decode_plan_bytes,
    is_plan_key,
    split_plan_route,
)
from repro.serve.service import COUNTER_NAMES, PLAN_KIND, PlanService

__all__ = ["PlanEngineRegistry", "resolve_max_engines"]


def resolve_max_engines(max_engines=None):
    """Resolve the live-engine cap: arg, else ``REPRO_SERVE_MAX_ENGINES``.

    ``0`` (the default when neither is given) means unbounded; negative
    or non-integer values raise
    :class:`~repro.robustness.errors.ScenarioConfigError` (CLI exit 64).
    """
    if max_engines is None:
        raw = os.environ.get("REPRO_SERVE_MAX_ENGINES", "").strip()
        if not raw:
            return 0
        try:
            max_engines = int(raw)
        except ValueError as exc:
            raise ScenarioConfigError(
                f"REPRO_SERVE_MAX_ENGINES must be an integer, got {raw!r}"
            ) from exc
    max_engines = int(max_engines)
    if max_engines < 0:
        raise ScenarioConfigError(
            "max_engines must be >= 1, or 0 for unbounded live engines"
        )
    return max_engines


class PlanEngineRegistry:
    """Routes plan traffic to one lazily-built engine per workload.

    Parameters
    ----------
    engine_factory:
        ``factory(workload, cache) -> PlanEngine`` — invoked once per
        workload on first request (and again after an LRU retirement).
        The registry always passes its own shared ``cache`` so every
        engine stores into one bounded artifact tier.
    workloads:
        The loadable workload keys (a scale's zoo).  Requests naming
        anything else are a single-line 400.
    default:
        The workload unrouted requests (no ``workload``/``model``
        field) resolve to — the single-workload server's behavior.
        Defaults to the first entry of ``workloads``.
    cache:
        The shared :class:`~repro.plan.cache.PlanArtifactCache`
        (default: a fresh one).  Safe by construction: plan content
        keys fold in the model digest, so two engines can never
        address each other's artifacts.
    resolve_workers:
        Per-engine cold-resolution threads (each engine keeps its own
        executor, as before).
    max_engines:
        Live-engine cap via :func:`resolve_max_engines`
        (``REPRO_SERVE_MAX_ENGINES``; 0 = unbounded).
    metrics:
        The shared :class:`~repro.obs.metrics.MetricsRegistry` every
        per-workload service registers its families in (default: a
        fresh one).  When the registry also builds its own cache, the
        cache shares this registry too, so ``GET /metricsz`` is one
        exposition covering routing, engines, and artifact tiers.
    """

    def __init__(self, engine_factory, workloads, default=None, cache=None,
                 resolve_workers=1, max_engines=None, metrics=None):
        from repro.plan import PlanArtifactCache

        workloads = tuple(workloads)
        if not workloads:
            raise ScenarioConfigError("registry needs at least one workload")
        if default is None:
            default = workloads[0]
        if default not in workloads:
            raise ScenarioConfigError(
                f"default workload {default!r} is not loadable; loadable: "
                f"{sorted(workloads)}"
            )
        self._factory = engine_factory
        self.workloads = workloads
        self.default = default
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = (
            cache if cache is not None
            else PlanArtifactCache(metrics=self.metrics)
        )
        self.resolve_workers = resolve_workers
        self.max_engines = resolve_max_engines(max_engines)
        # workload -> live PlanService, in least-recently-routed order.
        self._services = OrderedDict()
        # model digest -> workload, for every engine ever loaded here.
        # Digests are deterministic functions of the workload spec, so
        # entries survive retirement and never go stale.
        self._digests = {}
        bad = self.metrics.counter(
            "repro_serve_registry_bad_requests_total",
            "Routing-level 400s (pre-engine).",
        )
        fetches = self.metrics.counter(
            "repro_serve_registry_fetches_total",
            "Workload-agnostic GET /v1/plan/<key> fetches by result.",
            labels=("result",),
        )
        engines = self.metrics.counter(
            "repro_serve_engines_total",
            "Engine lifecycle events (loaded includes rebuilds).",
            labels=("event",),
        )
        self._c = {
            "bad_requests": ZeroedCounter(bad.labels()),
            "fetch_hits": ZeroedCounter(fetches.labels(result="hit")),
            "fetch_misses": ZeroedCounter(fetches.labels(result="miss")),
            "engines_loaded": ZeroedCounter(engines.labels(event="loaded")),
            "engines_retired": ZeroedCounter(engines.labels(event="retired")),
        }

    @property
    def counters(self):
        """Registry-level counter view (plain ints) over the metrics
        registry children; see :class:`~repro.serve.service.PlanService.
        counters` for the view semantics.
        """
        return {name: child.value for name, child in self._c.items()}

    # ---------------------------------------------------------------- routing

    def service(self, workload):
        """The live :class:`PlanService` for one workload (built lazily).

        Touches the LRU (most-recently-routed last) and retires past
        the cap; retirement drains the retired executor on its worker
        threads without blocking the caller.
        """
        if workload not in self.workloads:
            raise PlanRequestError(
                f"unknown workload {workload!r}; loadable: "
                f"{sorted(self.workloads)}"
            )
        service = self._services.get(workload)
        if service is None:
            engine = self._factory(workload, self.cache)
            service = PlanService(
                engine, resolve_workers=self.resolve_workers,
                metrics=self.metrics,
            )
            self._services[workload] = service
            self._digests[engine._model_digest] = workload
            self._c["engines_loaded"].inc()
        self._services.move_to_end(workload)
        while self.max_engines > 0 and len(self._services) > self.max_engines:
            _, retired = self._services.popitem(last=False)
            retired.close(wait=False)
            self._c["engines_retired"].inc()
        return service

    def resolve(self, workload=None, model=None):
        """Resolve a request's routing fields to a live service.

        No field: the default workload.  ``model``: the digest map of
        every engine loaded at least once in this process (preloads at
        startup seed it) — an unknown digest is a 400, never a guess.
        """
        if model is not None:
            workload = self._digests.get(model)
            if workload is None:
                raise PlanRequestError(
                    f"unknown model digest {model!r}; loaded: "
                    f"{sorted(self._digests)} (route by workload to load "
                    f"a new engine)"
                )
        return self.service(workload if workload is not None else self.default)

    # ---------------------------------------------------------------- serving

    async def plan(self, body):
        """Serve one ``POST /v1/plan`` body through the routed engine.

        Routing failures (bad JSON, unknown workload/digest) are
        counted registry-side; everything after the route — parsing,
        caching, coalescing, the tripwire — is the routed engine's
        :meth:`~repro.serve.service.PlanService.plan`, contract intact.
        """
        try:
            (workload, model), remainder = split_plan_route(body)
            service = self.resolve(workload, model)
        except Exception:
            self._c["bad_requests"].inc()
            raise
        return await service.plan(remainder)

    def fetch(self, key):
        """``GET /v1/plan/<key>``: warm fetch from the shared cache.

        Workload-agnostic by construction — the key *is* the identity,
        wherever it was resolved.
        """
        arrays = self.cache.lookup(PLAN_KIND, key) if is_plan_key(key) else None
        if arrays is None:
            self._c["fetch_misses"].inc()
            return None
        self._c["fetch_hits"].inc()
        return decode_plan_bytes(arrays)

    # -------------------------------------------------------------- plumbing

    def models(self):
        """``GET /v1/models``: loaded + loadable workloads, one row each.

        Loaded rows carry the model digest and live per-engine
        counters; never-loaded rows carry ``"loaded": false`` and a
        null digest (the digest is unknowable without paying the
        load); retired rows keep their digest (it is deterministic)
        but lose their counters with the engine.
        """
        known = {w: d for d, w in self._digests.items()}
        rows = []
        for workload in self.workloads:
            service = self._services.get(workload)
            if service is not None:
                rows.append(service.model_entry())
            else:
                rows.append({
                    "workload": workload,
                    "model": known.get(workload),
                    "loaded": False,
                    "requests": None,
                })
        return {
            "default": self.default,
            "max_engines": self.max_engines,
            "models": rows,
        }

    def healthz(self):
        """Liveness payload: what is loaded, what could be."""
        return {
            "status": "ok",
            "default": self.default,
            "loaded": list(self._services),
            "workloads": list(self.workloads),
            "max_engines": self.max_engines,
            "cache_version": self.cache.version,
        }

    def stats(self):
        """``/statsz``: per-engine sections plus one aggregate.

        The aggregate ``requests`` dict sums every live engine's
        counters and folds in the registry-level ones
        (routing ``bad_requests``, shared-cache ``fetch_*``); the
        ``cache`` section is the shared cache's
        :meth:`~repro.plan.cache.PlanArtifactCache.stats` verbatim,
        exactly once (per-engine sections drop it — it is one cache).
        """
        aggregate = {name: 0 for name in COUNTER_NAMES}
        engines = {}
        in_flight = 0
        for workload, service in self._services.items():
            stats = service.stats()
            stats.pop("cache", None)
            engines[workload] = stats
            in_flight += stats["in_flight_coalesced"]
            for name, value in stats["requests"].items():
                aggregate[name] = aggregate.get(name, 0) + value
        registry_counters = self.counters
        for name in ("bad_requests", "fetch_hits", "fetch_misses"):
            aggregate[name] = aggregate.get(name, 0) + registry_counters[name]
        return {
            "requests": aggregate,
            "in_flight_coalesced": in_flight,
            "engines": engines,
            "registry": {
                "default": self.default,
                "loaded": list(self._services),
                "loadable": list(self.workloads),
                "max_engines": self.max_engines,
                "engines_loaded": registry_counters["engines_loaded"],
                "engines_retired": registry_counters["engines_retired"],
            },
            "cache": self.cache.stats(),
        }

    def metricsz(self):
        """``GET /metricsz``: one Prometheus exposition for the whole
        process — routing counters, every live engine's per-workload
        families, and the shared cache (deduplicated by registry
        identity when the cache shares :attr:`metrics`).
        """
        return render_prometheus(self.metrics, self.cache.metrics)

    def close(self):
        """Shut every live engine's executor down (after the HTTP drain).

        Engines stay registered — their counters remain readable (the
        CLI prints the drained summary from :meth:`stats` *after*
        closing), they just cannot resolve anymore.
        """
        for service in self._services.values():
            service.close()
