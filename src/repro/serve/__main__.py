"""``python -m repro.serve`` — the plan-serving CLI."""

import sys

from repro.serve.cli import run

if __name__ == "__main__":
    sys.exit(run())
