"""Hand-rolled asyncio HTTP/1.1 front end for :class:`PlanService`.

Stdlib only, built directly on :func:`asyncio.start_server`: a minimal
request parser (request line + headers + Content-Length body), four
routes, keep-alive, and JSON errors.  No framework — the whole wire
protocol the service needs fits in one page and keeps the dependency
budget at zero.

Routes::

    POST /v1/plan        resolve (or replay) a PlanRequest JSON body,
                         optionally routed by "workload"/"model" fields
    GET  /v1/plan/<key>  content-addressed warm fetch (404 on miss)
    GET  /v1/models      loaded + loadable workloads, digests, counters
    GET  /healthz        liveness
    GET  /statsz         per-engine counters + aggregate, cache stats
    GET  /metricsz       Prometheus text exposition (service + cache)

Plan responses carry ``X-Plan-Key`` (the content address, for later
warm ``GET``\\ s) and ``X-Plan-Source`` (``warm`` / ``cold`` /
``coalesced``) so clients and benchmarks can classify without parsing
bodies.  Every response carries ``X-Request-Id`` (echoing a sane
client-provided one, else generated) and ``X-Server-Ms`` (dispatch
wall time), and when tracing is enabled each request records an
``http.request`` span tagged with the same id — the client/server
correlation handle (:attr:`~repro.serve.client.PlanClient.
last_request_id`).  Per-route request counts and latency histograms
register in the service's metrics registry, so ``/metricsz`` covers
the transport too.

Shutdown discipline (the contract load tests rely on): the first
SIGTERM/SIGINT stops accepting, lets in-flight requests finish, and
exits cleanly (0); a second signal abandons the drain and surfaces as
a :class:`~repro.robustness.errors.TransientFaultError` — the
retryable exit-75 family, same taxonomy as every other CLI failure.
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import sys
import time
import uuid

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACER
from repro.robustness.errors import ScenarioConfigError, TransientFaultError

__all__ = ["DEFAULT_PORT", "PlanHTTPServer"]

#: A client-supplied X-Request-Id we are willing to echo (anything else
#: is replaced, never reflected back into headers or traces).
_REQUEST_ID = re.compile(r"^[A-Za-z0-9._-]{1,128}$")

#: Default serving port ("swim" on a phone keypad, close enough).
DEFAULT_PORT = 8321

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


def _one_line(exc):
    """An exception as a single traceback-free line."""
    text = f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__
    return " ".join(text.splitlines())


class PlanHTTPServer:
    """Serves one :class:`~repro.serve.service.PlanService` over TCP.

    Parameters
    ----------
    service:
        The transport-independent core (anything with async ``plan``
        plus ``fetch`` / ``models`` / ``healthz`` / ``stats`` /
        ``close``) — a single-engine :class:`~repro.serve.service.
        PlanService` or a multi-workload :class:`~repro.serve.registry.
        PlanEngineRegistry`.
    host / port:
        Bind address; port ``0`` asks the kernel for an ephemeral port
        (read the bound one back from :attr:`port` after
        :meth:`start`).
    max_body:
        Request body cap in bytes (413 beyond it) — one of the "RSS
        must stay bounded" guards.
    """

    def __init__(self, service, host="127.0.0.1", port=DEFAULT_PORT,
                 max_body=1 << 20):
        if not 0 <= int(port) <= 65535:
            raise ScenarioConfigError(
                f"port must be in [0, 65535], got {port}"
            )
        self.service = service
        self.host = host
        self.port = int(port)
        self.max_body = int(max_body)
        # Transport metrics live in the service's registry when it has
        # one (so /metricsz is a single exposition), else privately.
        metrics = getattr(service, "metrics", None)
        if metrics is None:
            metrics = MetricsRegistry()
        self._http_requests = metrics.counter(
            "repro_http_requests_total",
            "HTTP requests by route and status.",
            labels=("route", "status"),
        )
        self._http_seconds = metrics.histogram(
            "repro_http_request_seconds",
            "HTTP dispatch latency by route.",
            labels=("route",),
        )
        self._server = None
        self._conn_tasks = set()
        self._inflight = 0
        self._stopping = False
        self._signals = 0
        self._stop_event = None
        self._loop = None  # captured at start(); shutdown routes through it

    # ----------------------------------------------------------------- wiring

    async def start(self):
        """Bind and start accepting; resolves :attr:`port` when ephemeral."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self._signals:
            self._stop_event.set()  # a pre-start shutdown request sticks
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def request_shutdown(self):
        """The signal-handler body: first call drains, second forces.

        Public and genuinely thread-safe: the signal/event mutation is
        marshalled onto the serving loop via ``call_soon_threadsafe``
        (an ``asyncio.Event`` set from a foreign thread would not wake
        the loop), so embedders and tests can drive the same path a
        SIGTERM does from any thread.
        """
        loop = self._loop
        if loop is None or loop.is_closed():
            # Not started (or already torn down): no loop to wake.
            self._signal_stop()
            return
        try:
            loop.call_soon_threadsafe(self._signal_stop)
        except RuntimeError:
            pass  # loop closed between the check and the call: already down

    def _signal_stop(self):
        self._signals += 1
        if self._stop_event is not None:
            self._stop_event.set()

    async def run(self, install_signals=True):
        """Serve until signaled; returns 0 after a clean drain.

        A second signal mid-drain raises
        :class:`~repro.robustness.errors.TransientFaultError` (exit 75
        through the CLI taxonomy) after cancelling the stragglers.
        """
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-main thread or exotic platform: embedder's job

        await self._stop_event.wait()
        self._stopping = True
        self._server.close()
        # Drain: wait for in-flight *requests* (idle keep-alive readers
        # do not count); a second signal abandons them.
        while self._inflight > 0 and self._signals < 2:
            await asyncio.sleep(0.02)
        abandoned = self._inflight
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self._server.wait_closed()
        self.service.close()
        if abandoned:
            raise TransientFaultError(
                f"forced shutdown: abandoned {abandoned} in-flight "
                f"request(s) after second signal"
            )
        return 0

    # ------------------------------------------------------------ connections

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while not self._stopping:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break  # client closed (or half a request) — done
                except asyncio.LimitOverrunError:
                    await self._respond(
                        writer, 431, {"error": "request head too large"},
                        keep=False,
                    )
                    break

                request = self._parse_head(head)
                if request is None:
                    await self._respond(
                        writer, 400, {"error": "malformed request head"},
                        keep=False,
                    )
                    break
                method, target, version, headers = request

                # RFC 9110: Content-Length is 1*DIGIT.  Bare int() would
                # also accept "+5", "1_2", unicode digits and padded
                # whitespace — smuggling-adjacent laxness; reject anything
                # that is not pure ASCII digits with a single-line 400.
                raw_length = headers.get("content-length")
                if raw_length is None:
                    length = 0
                elif raw_length.isascii() and raw_length.isdigit():
                    length = int(raw_length)
                else:
                    await self._respond(
                        writer, 400, {"error": "malformed Content-Length"},
                        keep=False,
                    )
                    break
                if length > self.max_body:
                    await self._respond(
                        writer, 413,
                        {"error": f"request body exceeds {self.max_body} "
                                  f"bytes"},
                        keep=False,
                    )
                    break
                try:
                    body = await reader.readexactly(length) if length else b""
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break  # client died mid-body

                keep = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                    and not self._stopping
                )
                request_id = headers.get("x-request-id", "")
                if not _REQUEST_ID.match(request_id):
                    request_id = uuid.uuid4().hex[:16]
                route = self._route_of(target.split("?", 1)[0])
                self._inflight += 1
                started = time.monotonic()
                try:
                    status, payload, extra = await self._dispatch(
                        method, target, body
                    )
                    elapsed = time.monotonic() - started
                    extra = dict(extra or {})
                    extra.setdefault("X-Request-Id", request_id)
                    extra.setdefault("X-Server-Ms", f"{elapsed * 1e3:.3f}")
                    self._http_requests.labels(
                        route=route, status=str(status)
                    ).inc()
                    self._http_seconds.labels(route=route).observe(elapsed)
                    TRACER.record_span(
                        "http.request", started, elapsed,
                        route=route, method=method, status=int(status),
                        request_id=request_id,
                    )
                    await self._respond(
                        writer, status, payload, extra=extra, keep=keep
                    )
                finally:
                    self._inflight -= 1
                if not keep:
                    break
        except asyncio.CancelledError:
            pass  # forced shutdown (or abandoned idle reader)
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    @staticmethod
    def _parse_head(head):
        """``(method, target, version, headers)`` or None when malformed."""
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, version = lines[0].split(" ", 2)
            headers = {}
            for line in lines[1:]:
                if not line:
                    continue
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
            return method.upper(), target, version.strip(), headers
        except ValueError:
            return None

    # ---------------------------------------------------------------- routing

    @staticmethod
    def _route_of(path):
        """Normalize a path to a fixed route label (bounded cardinality:
        arbitrary client paths must not mint metric children)."""
        if path == "/v1/plan":
            return "/v1/plan"
        if path.startswith("/v1/plan/"):
            return "/v1/plan/<key>"
        if path in ("/v1/models", "/healthz", "/statsz", "/metricsz"):
            return path
        return "other"

    async def _dispatch(self, method, target, body):
        """Route one request; returns ``(status, payload, extra_headers)``.

        ``payload`` is raw bytes (served verbatim) or a JSON-able dict.
        Errors are single-line JSON — a malformed request must never
        echo a stack trace.
        """
        path = target.split("?", 1)[0]
        try:
            if path == "/v1/plan":
                if method != "POST":
                    return 405, {"error": "use POST /v1/plan"}, None
                served = await self.service.plan(body)
                return 200, served.data, {
                    "X-Plan-Key": served.key,
                    "X-Plan-Source": served.source,
                }
            if path.startswith("/v1/plan/"):
                if method != "GET":
                    return 405, {"error": "use GET /v1/plan/<key>"}, None
                key = path[len("/v1/plan/"):]
                data = self.service.fetch(key)
                if data is None:
                    return 404, {"error": f"no plan at key {key!r}"}, None
                return 200, data, {
                    "X-Plan-Key": key,
                    "X-Plan-Source": "warm",
                }
            if path == "/v1/models":
                if method != "GET":
                    return 405, {"error": "use GET /v1/models"}, None
                return 200, self.service.models(), None
            if path == "/healthz":
                if method != "GET":
                    return 405, {"error": "use GET /healthz"}, None
                return 200, self.service.healthz(), None
            if path == "/statsz":
                if method != "GET":
                    return 405, {"error": "use GET /statsz"}, None
                return 200, self.service.stats(), None
            if path == "/metricsz":
                if method != "GET":
                    return 405, {"error": "use GET /metricsz"}, None
                metricsz = getattr(self.service, "metricsz", None)
                if metricsz is None:
                    return 404, {"error": "metrics not supported"}, None
                return 200, metricsz(), {
                    "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
                }
            return 404, {"error": f"no route for {path}"}, None
        except ScenarioConfigError as exc:
            # Bad request content (PlanRequestError and kin): the
            # client's fault, one 400 line, no traceback.
            return 400, {"error": _one_line(exc)}, None
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # a server-side bug: 500, still one line
            print(f"error: {_one_line(exc)}", file=sys.stderr)
            return 500, {"error": _one_line(exc)}, None

    @staticmethod
    async def _respond(writer, status, payload, extra=None, keep=True):
        extra = dict(extra or {})
        content_type = extra.pop("Content-Type", None)
        if isinstance(payload, (bytes, bytearray)):
            body = bytes(payload)
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
            if content_type is None:
                content_type = "text/plain; charset=utf-8"
        else:
            body = (json.dumps(payload) + "\n").encode("utf-8")
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type or 'application/json'}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep else 'close'}",
        ]
        for name, value in extra.items():
            headers.append(f"{name}: {value}")
        writer.write("\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + body)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; nothing to salvage
