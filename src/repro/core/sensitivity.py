"""Weight-sensitivity metrics: SWIM's second derivative and the baselines.

The paper's central claim (Sec. 3.2): because device variation is
independent of the programmed value, the expected loss increase from
perturbing weight ``w_i`` is ``0.5 * H_ii * E[dw^2]`` — so the *diagonal
Hessian* ranks weights, not the magnitude.  Each scorer below maps a
trained model to a flat score vector (higher = write-verify first) over a
:class:`~repro.core.selection.WeightSpace`; SWIM additionally supplies the
magnitude tie-breaker the paper specifies.

Scorers beyond the paper's three (gradient magnitude and the Fisher/
squared-gradient proxy) are included as natural ablations: they are the
usual cheap curvature surrogates, and the ablation bench shows where they
fall between Magnitude and SWIM.
"""

from __future__ import annotations

import numpy as np

from repro.core.hessian_fd import fd_diagonal_hessian
from repro.core.second_derivative import (
    accumulate_second_derivatives,
    compute_gradients,
)

__all__ = [
    "SensitivityScorer",
    "SwimScorer",
    "MagnitudeScorer",
    "RandomScorer",
    "GradientScorer",
    "FisherScorer",
    "HessianFDScorer",
    "build_scorer",
]


class SensitivityScorer:
    """Base interface: produce flat scores (and optional tie-breaker)."""

    #: Registry name, also used as the display label in result tables.
    name = "base"

    def scores(self, model, space, x, y, rng=None):
        """Return a flat score vector aligned with ``space``."""
        raise NotImplementedError

    def tie_break(self, model, space):
        """Secondary key (same alignment); default: none."""
        return None

    def ranking(self, model, space, x, y, rng=None):
        """Full descending ranking (scores + tie-break applied)."""
        from repro.core.selection import rank_descending

        return rank_descending(
            self.scores(model, space, x, y, rng=rng),
            self.tie_break(model, space),
        )


class SwimScorer(SensitivityScorer):
    """The paper's metric: single-pass diagonal second derivative.

    Parameters
    ----------
    loss:
        Loss object (default cross-entropy).
    batch_size, max_batches:
        Curvature is accumulated over up to ``max_batches`` training
        batches; one large batch matches the paper's single pass.
    use_magnitude_tie_break:
        The Sec. 3.2 tie-breaking rule (on by default; the ablation bench
        measures its effect).
    """

    name = "swim"

    def __init__(self, loss=None, batch_size=256, max_batches=None,
                 use_magnitude_tie_break=True):
        self.loss = loss
        self.batch_size = batch_size
        self.max_batches = max_batches
        self.use_magnitude_tie_break = use_magnitude_tie_break

    def scores(self, model, space, x, y, rng=None):
        curvature = accumulate_second_derivatives(
            model, x, y, loss=self.loss,
            batch_size=self.batch_size, max_batches=self.max_batches,
        )
        return space.flatten({name: curvature[name] for name in space.names})

    def tie_break(self, model, space):
        if not self.use_magnitude_tie_break:
            return None
        return np.abs(space.gather_from_model(model, "data"))


class MagnitudeScorer(SensitivityScorer):
    """Baseline: larger |w| first (shown weak in Fig. 1a)."""

    name = "magnitude"

    def scores(self, model, space, x, y, rng=None):
        return np.abs(space.gather_from_model(model, "data"))


class RandomScorer(SensitivityScorer):
    """Baseline: a fresh uniformly random order per call."""

    name = "random"

    def scores(self, model, space, x, y, rng=None):
        if rng is None:
            raise ValueError("RandomScorer requires an rng")
        generator = rng.generator if hasattr(rng, "generator") else rng
        return generator.permutation(space.total_size).astype(np.float64)


class GradientScorer(SensitivityScorer):
    """Ablation: first-derivative magnitude |dF/dw|.

    Near convergence gradients are ~0, which is exactly why the paper
    reaches for second derivatives; this scorer quantifies that argument.
    """

    name = "gradient"

    def __init__(self, loss=None):
        self.loss = loss

    def scores(self, model, space, x, y, rng=None):
        grads = compute_gradients(model, x, y, loss=self.loss)
        return np.abs(space.flatten({n: grads[n] for n in space.names}))


class FisherScorer(SensitivityScorer):
    """Ablation: empirical Fisher (squared per-batch gradients summed).

    A common Hessian surrogate; cheaper than exact curvature but blind to
    curvature directions where the gradient vanishes.
    """

    name = "fisher"

    def __init__(self, loss=None, batch_size=64, max_batches=8):
        self.loss = loss
        self.batch_size = batch_size
        self.max_batches = max_batches

    def scores(self, model, space, x, y, rng=None):
        from repro.nn.trainer import iterate_batches

        total = np.zeros(space.total_size, dtype=np.float64)
        n_batches = 0
        for xb, yb in iterate_batches(x, y, self.batch_size):
            grads = compute_gradients(model, xb, yb, loss=self.loss)
            flat = space.flatten({n: grads[n] for n in space.names})
            total += np.square(flat)
            n_batches += 1
            if self.max_batches is not None and n_batches >= self.max_batches:
                break
        return total


class HessianFDScorer(SensitivityScorer):
    """Reference: finite-difference diagonal Hessian (Eq. 6; tiny models).

    Exists to validate SWIM's single-pass scores and for the Fig. 1 study;
    cost grows with two forward passes per weight.
    """

    name = "hessian_fd"

    def __init__(self, loss=None, eps=1e-3):
        self.loss = loss
        self.eps = eps

    def scores(self, model, space, x, y, rng=None):
        curv = fd_diagonal_hessian(
            model, x, y, loss=self.loss, eps=self.eps,
            param_names=space.names,
        )
        return space.flatten({n: curv[n] for n in space.names})

    def tie_break(self, model, space):
        return np.abs(space.gather_from_model(model, "data"))


_SCORERS = {
    cls.name: cls
    for cls in (
        SwimScorer,
        MagnitudeScorer,
        RandomScorer,
        GradientScorer,
        FisherScorer,
        HessianFDScorer,
    )
}


def build_scorer(name, **kwargs):
    """Construct a scorer by registry name (see ``_SCORERS`` keys).

    ``hetero_swim`` resolves to
    :class:`~repro.core.extensions.HeteroSwimScorer` (imported lazily —
    extensions builds on this module); pass its variance source
    (``technology=`` / ``stack=`` / ``mapping_config=`` /
    ``variance_provider=``) through ``kwargs``.
    """
    if name == "hetero_swim":
        from repro.core.extensions import HeteroSwimScorer

        return HeteroSwimScorer(**kwargs)
    if name not in _SCORERS:
        known = sorted(_SCORERS) + ["hetero_swim"]
        raise KeyError(f"unknown scorer {name!r}; known: {known}")
    return _SCORERS[name](**kwargs)
