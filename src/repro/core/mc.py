"""Trial-batched Monte Carlo engine (the paper's 3,000-run protocol, fast).

Every headline number in the paper is a Monte Carlo average over
independent device-variation draws.  The scalar protocol — run the full
program / write-verify / deploy / evaluate pipeline once per trial — pays
the Python dispatch cost of every pipeline stage ``n_trials`` times.
:class:`MonteCarloEngine` instead stacks the trials on a leading
``(n_trials, ...)`` axis and advances all of them together:

- **programming** draws each trial's noise from its own named RNG
  substream (``rng.child("mc", i)``), so trial ``i`` sees bit-identical
  initial conductances to the scalar path regardless of batching;
- **write-verify** runs one masked pulse loop over the whole trial stack
  (:func:`repro.cim.write_verify.write_verify_trials`);
- **evaluation** deploys trial-batched weight overrides and scores every
  trial in one folded forward pass
  (:func:`repro.core.metrics.evaluate_accuracy_trials`);
- **Algorithm 1** becomes a masked while-loop over *trials*: each group
  step only re-deploys and re-evaluates the trials whose accuracy target
  is not yet met.

Trials are processed in blocks (``trial_block``) so activation memory
stays bounded; workloads too large to batch at all can opt into a
process-pool fallback (``processes=N``) that fans the scalar per-trial
path across forked workers instead.

The scalar implementations remain available behind ``batched=False``
everywhere, which is what the seeded equivalence tests compare against.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import warnings

import numpy as np

from repro.core.metrics import evaluate_accuracy_trials
from repro.core.selection import cumulative_groups
from repro.core.swim import SwimConfig, SwimResult
from repro.core.swim import sweep_nwc as sweep_nwc_scalar
from repro.robustness.errors import CellExecutionError
from repro.robustness.faults import active_schedule
from repro.robustness.scheduler import resolve_worker_count
from repro.robustness.supervisor import has_fork, run_with_retry, supervised_map
from repro.utils.stats import running_mean_converged

__all__ = [
    "MonteCarloEngine",
    "default_trial_block",
    "no_trial_pool",
    "resolve_processes",
]

#: Largest folded batch (n_trials_in_block * eval_batch_size) the engine
#: feeds through the network at once.  Small folds win: the per-trial
#: forward work is compute-bound, so the only batching gains are shared
#: input unfolding and amortized dispatch — while oversized folds blow
#: the cache (measured ~2x slower at 4096 than at 512 on default LeNet).
DEFAULT_MAX_FOLD = 512

#: When False, ``resolve_processes`` ignores both its argument and
#: ``REPRO_MC_PROCESSES`` — see :func:`no_trial_pool`.
_TRIAL_POOL_ENABLED = True


@contextlib.contextmanager
def no_trial_pool():
    """Disable the trial-pool knob inside the ``with`` body.

    The work-rectangle scheduler owns trial parallelism: a scenario
    tile *is* a trial block already placed on a worker, so an engine
    built inside one must not read ``processes=``/``REPRO_MC_PROCESSES``
    and try to fork a nested pool.  Disabling is bitwise-safe — the
    pool changes where trials run, never what they compute.
    """
    global _TRIAL_POOL_ENABLED
    previous = _TRIAL_POOL_ENABLED
    _TRIAL_POOL_ENABLED = False
    try:
        yield
    finally:
        _TRIAL_POOL_ENABLED = previous


def resolve_processes(processes=None):
    """Resolve the trial-pool worker count: arg, else ``REPRO_MC_PROCESSES``.

    ``0`` (from either source) means "auto-size to the core count";
    unset/empty means no pool.  Inside :func:`no_trial_pool` always
    resolves to ``None``.
    """
    if not _TRIAL_POOL_ENABLED:
        return None
    return resolve_worker_count(processes, "REPRO_MC_PROCESSES", "processes")


def default_trial_block(eval_batch_size=256, trial_block=None):
    """The engine's natural trial-block width for a given eval batch.

    This is the granularity at which the batched pipelines draw their
    shared verify RNG (one stream per block, keyed on the block's first
    trial) — and therefore the alignment grain the work-rectangle
    scheduler must respect when splitting a cell's trials into tiles.
    """
    if trial_block is not None:
        return max(1, int(trial_block))
    return max(1, DEFAULT_MAX_FOLD // max(1, int(eval_batch_size)))


class MonteCarloEngine:
    """Drives ``n_trials`` independent variation draws through a pipeline.

    Parameters
    ----------
    n_trials:
        Monte Carlo trial count (paper: 3000).
    rng:
        Parent :class:`~repro.utils.rng.RngStream`; trial ``i`` derives
        everything from ``rng.child("mc", i)`` — the same naming the
        scalar :func:`repro.core.metrics.monte_carlo` harness uses, so
        adding trials never perturbs earlier ones.
    batched:
        When False, the engine delegates to the scalar per-trial path
        (still honoring ``processes``).
    processes:
        Opt-in process-pool fallback for workloads too large to batch in
        memory: the scalar per-trial path is fanned across ``processes``
        forked workers.  Ignored on platforms without ``fork``.
    trial_block:
        Trials batched per block.  Defaults to a memory-bounded guess
        from the evaluation batch size (``DEFAULT_MAX_FOLD`` folded
        samples).
    trial_range:
        Optional ``(start, stop)`` half-open window: the engine runs
        only trials ``start..stop-1`` of the ``n_trials`` protocol,
        with *absolute* trial indices (substreams, block RNG keys), so
        a set of windows covering ``[0, n_trials)`` reproduces the full
        run's per-trial values bit for bit.  For the batched pipelines
        ``start`` must sit on a block boundary (see :meth:`block_size`):
        the shared verify stream is keyed per block, so only
        block-aligned windows see the draws of the unsplit run.  This
        is the work-rectangle scheduler's tile contract.
    """

    def __init__(self, n_trials, rng, batched=True, processes=None,
                 trial_block=None, trial_range=None):
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        self.n_trials = int(n_trials)
        self.rng = rng
        self.batched = bool(batched)
        self.processes = resolve_processes(processes)
        self.trial_block = trial_block
        if trial_range is not None:
            start, stop = int(trial_range[0]), int(trial_range[1])
            if not 0 <= start < stop <= self.n_trials:
                raise ValueError(
                    f"trial_range {trial_range!r} outside [0, {self.n_trials}]"
                )
            trial_range = (start, stop)
        self.trial_range = trial_range

    @property
    def span(self):
        """The ``(start, stop)`` trial window this engine actually runs."""
        return self.trial_range or (0, self.n_trials)

    # ------------------------------------------------------------- streams

    def substream(self, index):
        """The named RNG stream of one trial."""
        return self.rng.child("mc", index)

    def substreams(self, indices=None):
        """Per-trial streams for ``indices`` (default: the trial window)."""
        if indices is None:
            indices = range(*self.span)
        return [self.substream(int(i)) for i in indices]

    def block_size(self, eval_batch_size=256):
        """Trials per block (see :func:`default_trial_block`)."""
        return default_trial_block(eval_batch_size, self.trial_block)

    def blocks(self, eval_batch_size=256):
        """Yield trial-index arrays sized to bound folded-batch memory.

        Blocks always start at multiples of :meth:`block_size` counted
        from trial 0 — also under a ``trial_range`` window — so every
        window sees the same block starts (and the same per-block
        verify RNG keys) as the full run.
        """
        block = self.block_size(eval_batch_size)
        start, stop = self.span
        for base in range((start // block) * block, stop, block):
            lo, hi = max(base, start), min(base + block, stop)
            if lo < hi:
                yield np.arange(lo, hi)

    # ------------------------------------------------------- generic driver

    def map_trials(self, trial_fn):
        """Run ``trial_fn(index) -> value`` for every trial in the window.

        With ``processes`` set, a thin shim over trial-block scheduling:
        contiguous blocks of trials (the :meth:`block_size` grain) are
        mapped over a *supervised* fork pool
        (:func:`~repro.robustness.supervisor.supervised_map` — the same
        supervision path the work-rectangle scheduler uses), so a
        worker that crashes or raises a retryable error re-runs its
        whole block; a block that fails permanently raises a
        :class:`~repro.robustness.errors.CellExecutionError` naming the
        first casualty.  Inside a daemonic pool worker (which cannot
        fork) or on fork-less platforms the same trials run in-process
        instead — bitwise-identical either way, because every trial
        draws from its own named substream.  Results keep trial order.
        """
        start, stop = self.span
        if active_schedule() is not None:
            inner_fn = trial_fn

            def trial_fn(index):
                active_schedule().fire("trial", index)
                return inner_fn(index)

        if self.processes and self.processes > 1 and stop - start > 1:
            if multiprocessing.current_process().daemon:
                warnings.warn(
                    "trial pool requested inside a daemonic worker; "
                    "running the trial loop in-process",
                    RuntimeWarning,
                    stacklevel=2,
                )
            elif not has_fork():
                warnings.warn(
                    "process-pool Monte Carlo needs the fork start method; "
                    "falling back to the in-process scalar loop",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                block = self.block_size()
                starts = list(range(start, stop, block))

                def run_block(base):
                    return [
                        trial_fn(i)
                        for i in range(base, min(base + block, stop))
                    ]

                # Blocks share the cell's wall-clock budget rather than
                # carrying per-block deadlines, so no timeout here.
                supervised = supervised_map(
                    run_block,
                    starts,
                    workers=min(self.processes, len(starts)),
                    timeout=None,
                )
                failed = supervised.failed
                if failed:
                    first = supervised.reports[failed[0]]
                    raise CellExecutionError(
                        f"{len(failed)} of {len(starts)} Monte Carlo "
                        f"trial blocks failed permanently (first: trials "
                        f"[{failed[0]}, {min(failed[0] + block, stop)}): "
                        f"{first.error})"
                    )
                values = []
                for base in starts:
                    values.extend(supervised.values[base])
                return values
        return [
            run_with_retry(lambda i=i: trial_fn(i))[0]
            for i in range(start, stop)
        ]

    def run(self, run_fn, label="", check_convergence=True, convergence_tol=0.02):
        """Scalar-compatible harness: ``run_fn(stream) -> float`` per trial.

        Equivalent to :func:`repro.core.metrics.monte_carlo` (same
        substream naming, same convergence bookkeeping) but honoring the
        engine's process-pool fallback.
        """
        from repro.core.metrics import MonteCarloResult

        values = np.asarray(
            self.map_trials(lambda i: float(run_fn(self.substream(i)))),
            dtype=np.float64,
        )
        converged = (
            running_mean_converged(values, rel_tol=convergence_tol,
                                   window=max(3, self.n_trials // 5))
            if check_convergence and self.n_trials >= 8
            else False
        )
        return MonteCarloResult(values=values, converged=converged, label=label)

    # ------------------------------------------------------------ pipelines

    def sweep_nwc(self, model, accelerator, order, space, eval_x, eval_y,
                  nwc_targets, eval_batch_size=256, read_time=None,
                  scorer=None, sense_x=None, sense_y=None):
        """Accuracy at each NWC target for every trial.

        The trial-batched counterpart of
        :func:`repro.core.swim.sweep_nwc`: one program + verify
        simulation per block covers all of the block's trials, and each
        target's deployment is evaluated for the whole block in one
        folded forward pass.  ``read_time`` ages the deployed levels
        through the accelerator's nonideality stack (retention drift),
        with per-trial named substreams so batched and scalar paths see
        bit-identical drift.  ``order=None`` with a ``scorer`` computes
        the ranking once here (``rng.child("scorer")``) on the
        ``sense_x/sense_y`` training data — Algorithm 1's protocol;
        ranking must not see the evaluation set — and shares it across
        every trial and both Monte Carlo paths (the scalar fallback
        receives the resolved order, so batched and scalar stay
        comparable even for rng-dependent scorers).

        Returns
        -------
        tuple
            ``(accuracies, achieved_nwc)`` arrays of shape
            ``(n_trials, len(nwc_targets))``; under a ``trial_range``
            window only the window's rows are written (absolute trial
            indexing), the rest are unspecified.
        """
        if order is None:
            if scorer is None:
                raise ValueError(
                    "sweep_nwc needs a precomputed order or a scorer"
                )
            if sense_x is None:
                raise ValueError(
                    "scorer= needs sense_x/sense_y (rank on training "
                    "data, not the evaluation set)"
                )
            accelerator.clear()
            order = scorer.ranking(
                model, space, sense_x, sense_y, rng=self.rng.child("scorer")
            )
        n_targets = len(nwc_targets)
        accuracies = np.empty((self.n_trials, n_targets), dtype=np.float64)
        achieved = np.empty((self.n_trials, n_targets), dtype=np.float64)

        # An explicit process pool overrides batching: it exists for
        # workloads whose trial-stacked state would not fit in memory.
        if not self.batched or self.processes:
            def scalar_trial(i):
                return sweep_nwc_scalar(
                    model, accelerator, order, space, eval_x, eval_y,
                    nwc_targets, self.substream(i),
                    eval_batch_size=eval_batch_size, read_time=read_time,
                )

            for i, (acc, nwc) in zip(
                range(*self.span), self.map_trials(scalar_trial)
            ):
                accuracies[i] = acc
                achieved[i] = nwc
            accelerator.clear()
            return accuracies, achieved

        counts = [int(round(t * space.total_size)) for t in nwc_targets]
        # The ranking is noise-independent, so the per-target masks are
        # shared by every block (and every trial) — build them once.
        target_masks = [space.masks_from_indices(order[:count]) for count in counts]
        for block in self.blocks(eval_batch_size):
            streams = self.substreams(block)
            accelerator.program_trials(
                [s.child("program").generator for s in streams]
            )
            accelerator.write_verify_trials(
                rng=self.rng.child("verify-batch", int(block[0])).generator
            )
            for k, masks in enumerate(target_masks):
                achieved[block, k] = accelerator.apply_selection_trials(
                    masks, read_time=read_time, read_streams=streams
                )
                accuracies[block, k] = evaluate_accuracy_trials(
                    model, eval_x, eval_y, len(block), eval_batch_size
                )
        accelerator.clear()
        return accuracies, achieved

    def selective_write_verify(self, model, accelerator, scorer, eval_x,
                               eval_y, baseline_accuracy, config=None,
                               sense_x=None, sense_y=None,
                               eval_batch_size=None):
        """Algorithm 1 for every trial, with an active-trial masked loop.

        The batched path assumes the scorer's ranking does not depend on
        the variation draw (true for SWIM's curvature ranking and all
        deterministic baselines): it is computed once — from
        ``rng.child("scorer")`` — and shared by all trials, which is
        what lets every group step deploy one mask stack.  The scalar
        path (``batched=False``) re-ranks per trial, so an
        RNG-dependent scorer such as ``RandomScorer`` gives correlated
        trials here but independent trials there; use the scalar path
        when per-trial ranking randomness matters.  Each group step
        re-deploys and re-evaluates only the trials whose accuracy drop
        still exceeds ``delta_a`` — trials leave the active set as they
        converge, exactly like devices leave the pulse loop's active
        set.

        Returns
        -------
        list
            One :class:`~repro.core.swim.SwimResult` per trial.
        """
        from repro.core.selection import WeightSpace
        from repro.core.swim import selective_write_verify as scalar_swim

        config = config if config is not None else SwimConfig()
        batch_size = (
            config.eval_batch_size if eval_batch_size is None else eval_batch_size
        )

        # As in sweep_nwc, an explicit process pool selects the scalar
        # per-trial path — that is the fallback's whole purpose.
        if not self.batched or self.processes:
            return self.map_trials(
                lambda i: scalar_swim(
                    model, accelerator, scorer, eval_x, eval_y,
                    baseline_accuracy, config=config, rng=self.substream(i),
                    sense_x=sense_x, sense_y=sense_y,
                )
            )

        space = WeightSpace.from_model(model)
        if sense_x is None:
            sense_x, sense_y = eval_x, eval_y

        accelerator.clear()
        order = scorer.ranking(
            model, space, sense_x, sense_y, rng=self.rng.child("scorer")
        )

        results = [
            SwimResult(
                achieved_accuracy=0.0, achieved_nwc=0.0,
                selected_fraction=0.0, met_target=False,
            )
            for _ in range(self.n_trials)
        ]
        for block in self.blocks(batch_size):
            streams = self.substreams(block)
            accelerator.program_trials(
                [s.child("program").generator for s in streams]
            )
            accelerator.write_verify_trials(
                rng=self.rng.child("verify-batch", int(block[0])).generator
            )

            # NWC = 0 deployment first: some trials need no verification.
            nwc = accelerator.apply_selection_trials({})
            accuracy = evaluate_accuracy_trials(
                model, eval_x, eval_y, len(block), batch_size
            )
            selected = np.zeros(len(block), dtype=np.int64)
            latest_accuracy = accuracy.copy()
            latest_nwc = nwc.copy()
            for j, trial in enumerate(block):
                results[trial].accuracy_history.append(float(accuracy[j]))
                results[trial].nwc_history.append(float(nwc[j]))

            active = baseline_accuracy - accuracy > config.delta_a
            for prefix in cumulative_groups(order, config.granularity):
                if not active.any():
                    break
                active_idx = np.nonzero(active)[0]
                masks = space.masks_from_indices(prefix)
                nwc_active = accelerator.apply_selection_trials(
                    masks, trial_indices=active_idx
                )
                acc_active = evaluate_accuracy_trials(
                    model, eval_x, eval_y, len(active_idx), batch_size
                )
                latest_accuracy[active_idx] = acc_active
                latest_nwc[active_idx] = nwc_active
                selected[active_idx] = prefix.size
                for j, trial_local in enumerate(active_idx):
                    trial = block[trial_local]
                    results[trial].accuracy_history.append(float(acc_active[j]))
                    results[trial].nwc_history.append(float(nwc_active[j]))
                active[active_idx] = (
                    baseline_accuracy - acc_active > config.delta_a
                )

            for j, trial in enumerate(block):
                results[trial].achieved_accuracy = float(latest_accuracy[j])
                results[trial].achieved_nwc = float(latest_nwc[j])
                results[trial].selected_fraction = selected[j] / space.total_size
                results[trial].met_target = bool(
                    baseline_accuracy - latest_accuracy[j] <= config.delta_a
                )
        accelerator.clear()
        return results
