"""Iso-accuracy speedup analysis of accuracy-vs-NWC curves.

The paper's headline numbers — "SWIM can achieve up to 10x, 5x, and 9x
programming speedup compared with [write-verify-all], a magnitude based
heuristic, and in-situ training" — are *iso-accuracy* comparisons: find
the smallest NWC at which each method reaches a target accuracy, and take
the ratio.  These helpers compute exactly that from sweep results.
"""

from __future__ import annotations

import numpy as np

__all__ = ["nwc_to_reach", "speedup_at_iso_accuracy", "speedup_table"]


def nwc_to_reach(nwc, accuracy, target):
    """Smallest NWC at which the curve reaches ``target`` accuracy.

    Uses linear interpolation between sweep points (curves are noisy but
    near-monotone; interpolation matches how the paper reads its figures).
    Returns ``None`` when the curve never reaches the target.
    """
    nwc = np.asarray(nwc, dtype=np.float64)
    accuracy = np.asarray(accuracy, dtype=np.float64)
    if nwc.shape != accuracy.shape or nwc.ndim != 1:
        raise ValueError("nwc and accuracy must be 1-D and same length")
    order = np.argsort(nwc)
    nwc, accuracy = nwc[order], accuracy[order]
    if accuracy[0] >= target:
        return float(nwc[0])
    for i in range(1, nwc.size):
        if accuracy[i] >= target:
            lo_acc, hi_acc = accuracy[i - 1], accuracy[i]
            if hi_acc == lo_acc:
                return float(nwc[i])
            frac = (target - lo_acc) / (hi_acc - lo_acc)
            return float(nwc[i - 1] + frac * (nwc[i] - nwc[i - 1]))
    return None


def speedup_at_iso_accuracy(nwc_fast, acc_fast, nwc_slow, acc_slow, target):
    """How many times fewer cycles the fast method needs at ``target``.

    Returns ``None`` when either curve never reaches the target, and
    ``inf`` when the fast method starts at/above it with zero cycles.
    """
    fast = nwc_to_reach(nwc_fast, acc_fast, target)
    slow = nwc_to_reach(nwc_slow, acc_slow, target)
    if fast is None or slow is None:
        return None
    if fast == 0.0:
        return float("inf")
    return slow / fast


def speedup_table(outcome, reference="swim", targets=None):
    """Iso-accuracy speedups of ``reference`` over every other method.

    Parameters
    ----------
    outcome:
        A :class:`~repro.experiments.sweeps.SweepOutcome`.
    reference:
        The method whose speedup is reported (default SWIM).
    targets:
        Accuracy targets; defaults to the reference's accuracy at its
        second sweep point (the paper compares at SWIM's NWC=0.1 level)
        and at 0.5% below the full-verify plateau.

    Returns
    -------
    list
        ``(target_accuracy, {method: speedup or None})`` entries.
    """
    ref_curve = outcome.curve(reference)
    ref_nwc = ref_curve.achieved_nwc
    ref_acc = ref_curve.means()
    if targets is None:
        plateau = float(ref_acc[-1])
        targets = sorted({float(ref_acc[1]), plateau - 0.005})
    rows = []
    for target in targets:
        speedups = {}
        for method, curve in outcome.curves.items():
            if method == reference:
                continue
            speedups[method] = speedup_at_iso_accuracy(
                ref_nwc, ref_acc, curve.achieved_nwc, curve.means(), target
            )
        rows.append((target, speedups))
    return rows
