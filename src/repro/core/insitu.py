"""In-situ (on-chip) training baseline — Yao et al. [13] style.

The strongest non-write-verify baseline in the paper: after mapping, the
network is fine-tuned *on the device*, with forward/backward running under
the programmed (noisy) weights and every weight update applied as a write
pulse without verification.  Consequences the experiments reproduce:

- every update pulse carries fresh programming noise, so accuracy
  plateaus above the noise floor unless many iterations are spent;
- each iteration writes every updated weight once, so NWC grows by
  ``n_weights / full-verify-cycles`` (~0.1 per iteration at the paper's
  10-cycle calibration) and can exceed 1.0 — the paper reports full
  recovery only at NWC 32-155 depending on the model.

Weight updates use plain SGD by default; the ``sign`` rule (fixed-size
conductance pulses in the gradient's direction, the Manhattan rule common
in memristor training) is available as a variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import evaluate_accuracy
from repro.nn.losses import CrossEntropyLoss

__all__ = ["InSituConfig", "InSituHistory", "InSituTrainer"]


@dataclass(frozen=True)
class InSituConfig:
    """On-chip fine-tuning hyper-parameters.

    Attributes
    ----------
    lr:
        SGD learning rate (in weight units).
    batch_size:
        On-chip mini-batch size.
    update_rule:
        ``"sgd"`` (update proportional to gradient) or ``"sign"``
        (fixed pulse in the gradient direction).
    sign_step_codes:
        Conductance step of one pulse in integer-code units (sign rule).
    update_noise_fs:
        Per-update write noise std as a fraction of device full-scale.
        Incremental update pulses are far better controlled than one-shot
        full-range programming (which has sigma ~ 0.1): the default 0.03
        matches the post-write-verify residual scale, making in-situ
        training plateau near — but below — the fully verified accuracy
        until it spends many iterations, as the paper observes.
    """

    lr: float = 0.05
    batch_size: int = 64
    update_rule: str = "sgd"
    sign_step_codes: float = 0.5
    update_noise_fs: float = 0.03

    def __post_init__(self):
        if self.update_rule not in ("sgd", "sign"):
            raise ValueError("update_rule must be 'sgd' or 'sign'")
        if self.lr <= 0 or self.batch_size < 1:
            raise ValueError("lr must be > 0 and batch_size >= 1")


@dataclass
class InSituHistory:
    """Recorded checkpoints of one in-situ run."""

    iterations: list = field(default_factory=list)
    nwc: list = field(default_factory=list)
    accuracy: list = field(default_factory=list)


class InSituTrainer:
    """On-chip fine-tuning of a mapped model with write-cycle accounting."""

    def __init__(self, model, accelerator, config=None, loss=None):
        self.model = model
        self.accelerator = accelerator
        self.config = config if config is not None else InSituConfig()
        self.loss = loss if loss is not None else CrossEntropyLoss()
        self._writes = 0
        self._denominator = None

    def initialize(self, rng):
        """Map + program the model; measure the NWC denominator.

        A full write-verify simulation is run once (its outcome is *not*
        deployed) so that this run's NWC normalization matches the verify
        methods exactly, per the paper's metric definition.
        """
        self.accelerator.program(rng.child("program").generator)
        self.accelerator.write_verify_all(rng.child("denominator").generator)
        self._denominator = self.accelerator.total_cycles()
        self.accelerator.apply_none()
        self._writes = 0

    @property
    def nwc(self):
        """Write pulses so far / cycles to write-verify all weights."""
        if self._denominator is None:
            raise RuntimeError("initialize() must run first")
        return self._writes / self._denominator

    def iterations_for_nwc(self, target):
        """How many full-update iterations reach a given NWC."""
        if self._denominator is None:
            raise RuntimeError("initialize() must run first")
        per_iteration = self.accelerator.num_weights()
        return max(int(np.ceil(target * self._denominator / per_iteration)), 0)

    def _one_iteration(self, xb, yb, rng):
        """One on-chip SGD step; returns the batch loss."""
        config = self.config
        self.model.zero_grad()
        value = self.loss(self.model(xb), yb)
        self.model.backward(self.loss.backward())

        params = dict(self.model.named_parameters())
        mapping = self.accelerator.mapping_config
        noise_std_codes = mapping.code_noise_std(sigma_fs=config.update_noise_fs)
        for name, mapped in self.accelerator.map_model().items():
            layer = self.accelerator._layers[name]
            current = layer.weight_override.astype(np.float64)
            grad = params[name].grad.astype(np.float64)
            scale = mapped.scale
            if config.update_rule == "sgd":
                delta = -config.lr * grad
            else:
                delta = -config.sign_step_codes * scale * np.sign(grad)
            target = current + delta
            noise = (
                rng.normal(0.0, noise_std_codes * scale, size=target.shape)
                if noise_std_codes > 0
                else 0.0
            )
            updated = target + noise
            # Devices saturate at the representable range.
            bound = mapping.qmax * scale
            updated = np.clip(updated, -bound, bound)
            layer.set_weight_override(updated.astype(layer.weight.data.dtype))
            self._writes += int(grad.size)
        return value

    def run(self, train_x, train_y, iterations, rng, eval_x=None, eval_y=None,
            eval_every=None, eval_at=None, eval_batch_size=256):
        """Fine-tune for ``iterations`` steps; record NWC/accuracy history.

        Parameters
        ----------
        train_x, train_y:
            On-chip training data; batches are drawn by random choice.
        iterations:
            Number of update iterations (each writes every weight once).
        rng:
            :class:`~repro.utils.rng.RngStream` for batches and noise.
        eval_x, eval_y, eval_every:
            When given, accuracy is recorded every ``eval_every``
            iterations (and at the end).
        eval_at:
            Explicit set of 1-based iteration indices to evaluate at
            (used by the NWC sweeps to hit exact cycle budgets).

        Returns
        -------
        InSituHistory
        """
        if self._denominator is None:
            raise RuntimeError("initialize() must run first")
        history = InSituHistory()
        batch_rng = rng.child("batches").generator
        noise_rng = rng.child("updates").generator
        eval_at = set(int(i) for i in eval_at) if eval_at is not None else None
        n = train_x.shape[0]
        was_training = self.model.training
        self.model.eval()  # frozen BN statistics: on-chip inference mode
        for step in range(int(iterations)):
            idx = batch_rng.choice(n, size=min(self.config.batch_size, n),
                                   replace=False)
            self._one_iteration(train_x[idx], train_y[idx], noise_rng)
            is_last = step == iterations - 1
            if eval_x is not None and (
                (eval_at is not None and (step + 1) in eval_at)
                or (eval_at is None and (
                    is_last or (eval_every and (step + 1) % eval_every == 0)
                ))
            ):
                accuracy = evaluate_accuracy(
                    self.model, eval_x, eval_y, eval_batch_size
                )
                history.iterations.append(step + 1)
                history.nwc.append(self.nwc)
                history.accuracy.append(accuracy)
        if was_training:
            self.model.train()
        return history
