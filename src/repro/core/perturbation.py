"""Exact trial-batched evaluation of single-weight perturbations.

The Fig. 1 study (and any diagonal-Hessian validation) evaluates the
network under many trials that each differ from the baseline in exactly
*one* weight.  Re-running a full forward pass per trial wastes almost all
of its work: a single-weight change leaves every activation before the
perturbed layer untouched, and — for convolution and linear layers —
perturbs only **one output channel / unit** of that layer.  The
nonlinearities between weighted layers act channel-by-channel (ReLU,
activation quantizers, max/avg pooling, flatten), so the perturbation
stays confined to that channel until the *next* weighted layer mixes it.

:class:`PerturbationEvaluator` exploits all three structure levels, each
an exact rewrite (float rounding aside) of the full forward pass:

1. **prefix sharing** — activations before the perturbed layer are
   computed once and shared by every trial of that tensor;
2. **incremental channel propagation** — the perturbed layer's output is
   the cached baseline plus a one-channel correction; the channelwise
   stage after it is recomputed for that channel only, and the next
   weighted layer adds ``W_block @ delta`` to its cached baseline output;
3. **folded suffix** — only from that point on does the network run
   per-trial, on a trial-major folded batch.

When the model is not a :class:`~repro.nn.module.Sequential`, or the
layer pattern is not recognized, evaluation falls back to trial-batched
weight-override stacks (still exact, just less incremental).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
)
from repro.nn.layers.activation import _Activation, Identity
from repro.nn.layers.base import WeightedLayer
from repro.nn.module import Sequential
from repro.nn.quant import ActQuant

__all__ = ["PerturbationEvaluator"]


def _is_channelwise(module):
    """Layers that process channels independently (exact slice-ability)."""
    if isinstance(module, (_Activation, Identity, ActQuant, MaxPool2d,
                           AvgPool2d, Flatten)):
        return True
    if isinstance(module, Dropout) and not module.training:
        return True  # identity at inference time
    return False


class PerturbationEvaluator:
    """Evaluates single-weight perturbation trials of one model.

    Parameters
    ----------
    model:
        The network, in eval mode, with its baseline weights deployed
        (parameters or weight overrides — whatever ``effective_weight``
        resolves to is treated as the baseline).
    eval_x:
        The shared evaluation inputs.
    max_fold_samples:
        Bound on ``trials_per_chunk * len(eval_x)`` for the folded
        suffix passes (keeps activation memory cache-friendly).
    """

    def __init__(self, model, eval_x, max_fold_samples=4096):
        self.model = model
        self.x = eval_x
        self.max_fold = int(max_fold_samples)
        self._chain = list(model) if isinstance(model, Sequential) else None
        self._prefix_cache = {}

    # ------------------------------------------------------------- helpers

    def _chunk(self, n_trials):
        per = max(1, self.max_fold // max(1, self.x.shape[0]))
        for start in range(0, n_trials, per):
            yield np.arange(start, min(start + per, n_trials))

    def _prefix_output(self, position):
        """Activations entering ``chain[position]`` (cached)."""
        if position not in self._prefix_cache:
            out = self.x
            for module in self._chain[:position]:
                out = module(out)
            self._prefix_cache[position] = out
        return self._prefix_cache[position]

    def _run_suffix(self, folded, position):
        """Run ``chain[position:]`` on a folded trial-major batch."""
        for module in self._chain[position:]:
            folded = module(folded)
        return folded

    @staticmethod
    def _fold(stacked):
        """``(T, N, ...) -> (T*N, ...)``."""
        return stacked.reshape((-1,) + stacked.shape[2:])

    # ------------------------------------------------------------ dispatch

    def evaluate(self, module, inner, signed):
        """Logits for trials perturbing one weight of ``module`` each.

        Trial ``t`` evaluates the model with
        ``module.weight.flat[inner[t]] += signed[t]`` around the current
        baseline.

        Returns
        -------
        numpy.ndarray
            Logits of shape ``(n_trials, len(eval_x), classes)``.
        """
        inner = np.asarray(inner, dtype=np.int64)
        signed = np.asarray(signed, dtype=np.float64)
        if self._chain is None or module not in self._chain:
            return self._evaluate_override(module, inner, signed)
        position = self._chain.index(module)
        if isinstance(module, Linear):
            return self._evaluate_linear(module, position, inner, signed)
        if isinstance(module, Conv2d):
            out = self._evaluate_conv_incremental(
                module, position, inner, signed
            )
            if out is not None:
                return out
            return self._evaluate_forward_multi(module, position, inner, signed)
        return self._evaluate_override(module, inner, signed)

    # ----------------------------------------------- linear: rank-1 update

    def _evaluate_linear(self, module, position, inner, signed):
        """Perturbing ``W[j, k]`` shifts output unit ``j`` by ``d * x_k``."""
        shared = self._prefix_output(position)
        base_out = module(shared)
        units = inner // module.in_features
        taps = inner % module.in_features
        chunks = []
        for chunk in self._chunk(inner.size):
            out = np.broadcast_to(
                base_out, (len(chunk),) + base_out.shape
            ).copy()
            out[np.arange(len(chunk)), :, units[chunk]] += (
                signed[chunk, None] * shared[:, taps[chunk]].T
            )
            logits = self._run_suffix(self._fold(out), position + 1)
            chunks.append(logits.reshape(len(chunk), shared.shape[0], -1))
        return np.concatenate(chunks)

    # ------------------------------------- conv: channel-sparse propagation

    def _conv_pattern(self, position):
        """Find the channelwise stage and next weighted layer after a conv.

        Returns ``(mid_modules, weighted, weighted_position)`` or None if
        an unrecognized module interrupts the pattern (e.g. a norm layer,
        whose parameters are indexed by channel and cannot be sliced by
        calling the module on one channel).
        """
        mid = []
        for offset, module in enumerate(self._chain[position + 1:],
                                        position + 1):
            if isinstance(module, WeightedLayer):
                return mid, module, offset
            if not _is_channelwise(module):
                return None
            mid.append(module)
        return None  # perturbed conv is the last weighted layer

    def _evaluate_conv_incremental(self, module, position, inner, signed):
        pattern = self._conv_pattern(position)
        if pattern is None:
            return None
        mid, nxt, nxt_position = pattern
        if isinstance(nxt, Conv2d) and any(isinstance(m, Flatten) for m in mid):
            return None

        shared = self._prefix_output(position)
        base_out = module(shared)  # includes bias
        cols_in, out_h, out_w = F.im2col(
            shared, module.kernel_size, stride=module.stride,
            padding=module.padding,
        )
        ckk = module.in_channels * module.kernel_size[0] * module.kernel_size[1]
        channels = inner // ckk
        rows = inner % ckk

        # Baseline activations entering / leaving the next weighted layer.
        act = base_out
        for m in mid:
            act = m(act)
        if isinstance(nxt, Linear) and (
            act.ndim != 2 or act.shape[1] % module.out_channels
        ):
            return None
        base_next = nxt(act)
        n = shared.shape[0]

        if isinstance(nxt, Linear):
            per_channel = act.shape[1] // module.out_channels
            w_blocks_all = nxt.effective_weight().reshape(
                nxt.out_features, module.out_channels, per_channel
            )
        else:
            kh2, kw2 = nxt.kernel_size
            w_blocks_all = nxt.effective_weight().reshape(
                nxt.out_channels, nxt.in_channels, kh2 * kw2
            )

        chunks = []
        for chunk in self._chunk(inner.size):
            t = len(chunk)
            c_arr = channels[chunk]
            # One-channel correction at the conv output: d * input patch.
            delta = signed[chunk, None] * cols_in[rows[chunk]]
            chan = base_out[:, c_arr].transpose(1, 0, 2, 3) + delta.reshape(
                t, n, out_h, out_w
            )
            chan = chan.reshape(t * n, 1, out_h, out_w)
            for m in mid:
                chan = m(chan)

            if isinstance(nxt, Linear):
                base_blocks = act.reshape(
                    n, module.out_channels, per_channel
                )[:, c_arr].transpose(1, 0, 2)
                delta_next = chan.reshape(t, n, per_channel) - base_blocks
                w_blocks = w_blocks_all[:, c_arr].transpose(1, 0, 2)
                correction = np.matmul(
                    delta_next, w_blocks.transpose(0, 2, 1)
                )  # (T, N, out)
                out = base_next[None, ...] + correction
            else:
                base_blocks = act[:, c_arr].transpose(1, 0, 2, 3)
                delta_chan = chan.reshape(t, n, chan.shape[2], chan.shape[3])
                delta_chan = (delta_chan - base_blocks).reshape(
                    t * n, 1, chan.shape[2], chan.shape[3]
                )
                cols_d, oh2, ow2 = F.im2col(
                    delta_chan, nxt.kernel_size, stride=nxt.stride,
                    padding=nxt.padding,
                )
                cols_d = cols_d.reshape(cols_d.shape[0], t, -1).transpose(1, 0, 2)
                w_blocks = w_blocks_all[:, c_arr].transpose(1, 0, 2)
                correction = np.matmul(w_blocks, cols_d)  # (T, F, N*oh2*ow2)
                correction = correction.reshape(
                    t, nxt.out_channels, n, oh2, ow2
                ).transpose(0, 2, 1, 3, 4)
                out = base_next[None, ...] + correction

            logits = self._run_suffix(self._fold(out), nxt_position + 1)
            chunks.append(logits.reshape(t, n, -1))
        return np.concatenate(chunks)

    # ----------------------------------------- generic trial-batched paths

    def _evaluate_forward_multi(self, module, position, inner, signed):
        """Shared-input batched matmul at the perturbed layer, then fold."""
        shared = self._prefix_output(position)
        base = module.effective_weight()
        chunks = []
        for chunk in self._chunk(inner.size):
            stack = np.broadcast_to(base, (len(chunk),) + base.shape).copy()
            stack.reshape(len(chunk), -1)[
                np.arange(len(chunk)), inner[chunk]
            ] += signed[chunk]
            out = module.forward_multi(shared, stack)
            logits = self._run_suffix(out, position + 1)
            chunks.append(logits.reshape(len(chunk), shared.shape[0], -1))
        return np.concatenate(chunks)

    def _evaluate_override(self, module, inner, signed):
        """Whole-model fallback: weight-override stacks + tiled inputs."""
        base = module.effective_weight()
        saved = module.weight_override
        n = self.x.shape[0]
        chunks = []
        try:
            for chunk in self._chunk(inner.size):
                stack = np.broadcast_to(base, (len(chunk),) + base.shape).copy()
                stack.reshape(len(chunk), -1)[
                    np.arange(len(chunk)), inner[chunk]
                ] += signed[chunk]
                module.set_weight_override(stack)
                tiled = np.broadcast_to(
                    self.x, (len(chunk),) + self.x.shape
                ).reshape((len(chunk) * n,) + self.x.shape[1:])
                logits = self.model(tiled)
                chunks.append(logits.reshape(len(chunk), n, -1))
        finally:
            module.set_weight_override(saved)
        return np.concatenate(chunks)
