"""Single-pass diagonal second-derivative computation (paper Sec. 3.3).

The paper's key efficiency contribution: instead of two million forward
passes of finite differencing (Eq. 6), all diagonal second derivatives are
obtained with *one* forward and one backward-style pass, seeded with the
loss curvature ``d2F/dO^2`` (Eq. 11) and propagated by each layer's
``backward_second`` (Eqs. 8 and 10).

The functions here orchestrate that pass over a model and return the
curvature per parameter; they also expose gradient collection with the same
interface so the two passes can be timed against each other (the paper
claims the second-derivative pass costs about as much as a gradient pass —
see ``benchmarks/bench_secondderiv_cost.py``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import CrossEntropyLoss
from repro.nn.trainer import iterate_batches

__all__ = [
    "compute_second_derivatives",
    "compute_gradients",
    "accumulate_second_derivatives",
]


def compute_second_derivatives(model, x, y, loss=None):
    """Diagonal second derivatives of the loss w.r.t. every parameter.

    Runs one forward pass, one gradient backward pass, and one curvature
    backward pass (the gradient pass supplies the first-order term of
    Eq. 9 needed by smooth activations).

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` implementing the three passes.
    x, y:
        One evaluation batch.
    loss:
        Loss object with ``forward/backward/second`` (default
        cross-entropy, matching the paper's classifiers).

    Returns
    -------
    dict
        ``parameter name -> curvature array`` (copies).
    """
    loss = loss if loss is not None else CrossEntropyLoss()
    model.zero_grad()
    model.zero_curvature()
    loss(model(x), y)
    model.backward(loss.backward())
    model.backward_second(loss.second())
    return {name: p.curvature.copy() for name, p in model.named_parameters()}


def compute_gradients(model, x, y, loss=None):
    """First derivatives with the same interface (for baselines/timing)."""
    loss = loss if loss is not None else CrossEntropyLoss()
    model.zero_grad()
    loss(model(x), y)
    model.backward(loss.backward())
    return {name: p.grad.copy() for name, p in model.named_parameters()}


def accumulate_second_derivatives(
    model, x, y, loss=None, batch_size=256, max_batches=None
):
    """Average the curvature pass over mini-batches of a dataset.

    The paper computes sensitivities once on the training dataset (Alg. 1
    line 3).  Averaging over batches keeps memory bounded on large inputs;
    because each batch's loss carries a ``1/batch`` factor, summing batch
    curvatures and dividing by the number of batches estimates the
    full-dataset curvature.

    Returns
    -------
    dict
        ``parameter name -> averaged curvature array``.
    """
    loss = loss if loss is not None else CrossEntropyLoss()
    model.zero_grad()
    model.zero_curvature()
    n_batches = 0
    for xb, yb in iterate_batches(x, y, batch_size):
        loss(model(xb), yb)
        model.backward(loss.backward())
        model.backward_second(loss.second())
        n_batches += 1
        if max_batches is not None and n_batches >= max_batches:
            break
    if n_batches == 0:
        raise ValueError("dataset produced no batches")
    scale = 1.0 / n_batches
    result = {}
    for name, p in model.named_parameters():
        result[name] = p.curvature * scale
    return result
