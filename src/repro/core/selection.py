"""Global weight ranking and programming-granularity selection (Alg. 1).

SWIM ranks *all* weights of the network in one global order (sensitivity
descending, magnitude as tie-breaker) and write-verifies them in groups of
``p`` — the programming granularity, 5% of the weights in the paper — until
the accuracy target is met.  :class:`WeightSpace` provides the stable
flat indexing over a model's mapped tensors that makes "global order"
well-defined, and the helpers here turn an order into per-tensor boolean
selection masks consumable by
:meth:`repro.cim.accelerator.CimAccelerator.apply_selection`.
"""

from __future__ import annotations

import numpy as np

from repro.cim.accelerator import weighted_layer_names

__all__ = ["WeightSpace", "rank_descending", "cumulative_groups"]


class WeightSpace:
    """Stable flat indexing over the mapped weight tensors of a model."""

    def __init__(self, names_and_shapes):
        self._names = [name for name, _ in names_and_shapes]
        self._shapes = {name: tuple(shape) for name, shape in names_and_shapes}
        self._offsets = {}
        offset = 0
        for name in self._names:
            size = int(np.prod(self._shapes[name]))
            self._offsets[name] = (offset, offset + size)
            offset += size
        self.total_size = offset

    @classmethod
    def from_model(cls, model):
        """Build from a model's weighted layers (traversal order)."""
        params = dict(model.named_parameters())
        names = weighted_layer_names(model)
        return cls([(name, params[name].shape) for name in names])

    @property
    def names(self):
        """Tensor names in flat-concatenation order."""
        return list(self._names)

    def shape_of(self, name):
        """Shape of one tensor."""
        return self._shapes[name]

    def flatten(self, tensors):
        """Concatenate ``name -> array`` into one flat vector."""
        parts = []
        for name in self._names:
            arr = np.asarray(tensors[name])
            if arr.shape != self._shapes[name]:
                raise ValueError(
                    f"{name}: shape {arr.shape} != expected {self._shapes[name]}"
                )
            parts.append(arr.reshape(-1))
        return np.concatenate(parts) if parts else np.empty(0)

    def unflatten(self, flat):
        """Split a flat vector back into ``name -> array``.

        Leading axes are preserved: a ``(n_trials, total_size)`` input
        yields ``(n_trials,) + shape`` tensors (trial-batched masks).
        """
        flat = np.asarray(flat)
        if flat.shape[-1:] != (self.total_size,):
            raise ValueError(
                f"flat vector has shape {flat.shape}, expected a trailing "
                f"axis of {self.total_size}"
            )
        lead = flat.shape[:-1]
        out = {}
        for name in self._names:
            start, stop = self._offsets[name]
            out[name] = flat[..., start:stop].reshape(lead + self._shapes[name])
        return out

    def masks_from_indices(self, indices):
        """Boolean per-tensor masks selecting the given flat indices."""
        flat = np.zeros(self.total_size, dtype=bool)
        flat[np.asarray(indices, dtype=np.int64)] = True
        return self.unflatten(flat)

    def masks_from_indices_trials(self, indices_per_trial):
        """Trial-batched masks: one index set per trial.

        Returns ``name -> (n_trials,) + shape`` boolean stacks consumable
        by :meth:`repro.cim.accelerator.CimAccelerator.apply_selection_trials`.
        """
        flat = np.zeros((len(indices_per_trial), self.total_size), dtype=bool)
        for row, indices in enumerate(indices_per_trial):
            flat[row, np.asarray(indices, dtype=np.int64)] = True
        return self.unflatten(flat)

    def gather_from_model(self, model, attribute="data"):
        """Flatten a parameter attribute (data/grad/curvature) of the model."""
        params = dict(model.named_parameters())
        tensors = {
            name: getattr(params[name], attribute) for name in self._names
        }
        return self.flatten(tensors)


def rank_descending(scores, tie_break=None):
    """Indices sorted by score descending; ties broken by ``tie_break`` desc.

    Implements the paper's Sec. 3.2 rule: "when two weights have the same
    second derivative, we use their magnitudes as the tie-breaker: the
    larger one will have a higher priority."
    """
    scores = np.asarray(scores)
    if tie_break is None:
        return np.argsort(-scores, kind="stable")
    tie_break = np.asarray(tie_break)
    if tie_break.shape != scores.shape:
        raise ValueError("tie_break must match scores shape")
    # np.lexsort sorts by the last key as primary.
    return np.lexsort((-tie_break, -scores))


def cumulative_groups(order, granularity, total=None):
    """Yield cumulative index prefixes in steps of ``granularity``.

    Parameters
    ----------
    order:
        Flat weight indices, highest priority first.
    granularity:
        Group size as a fraction of ``total`` (paper: 0.05).
    total:
        Denominator for the fraction (defaults to ``len(order)``).

    Yields
    ------
    numpy.ndarray
        ``order[:k]`` for k = p, 2p, ... (final group may be smaller).
    """
    order = np.asarray(order)
    total = int(total) if total is not None else order.size
    if not 0 < granularity <= 1:
        raise ValueError("granularity must be in (0, 1]")
    step = max(int(round(granularity * total)), 1)
    for stop in range(step, order.size + step, step):
        yield order[: min(stop, order.size)]
        if stop >= order.size:
            break
