"""Finite-difference diagonal Hessian — the paper's expensive reference.

Eq. 6 of the paper::

    d2F/dw_i^2 ~= (F(w_i + dw) - 2 F(w_i) + F(w_i - dw)) / dw^2

This costs two forward passes *per weight* and exists here for two reasons:
(1) tests validate the single-pass recursion against it where the recursion
is exact, and (2) the Fig. 1 reproduction uses it on sampled weights to
show the second-derivative/accuracy-drop correlation independent of the
fast approximation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import CrossEntropyLoss

__all__ = ["fd_diagonal_hessian", "fd_diagonal_hessian_sampled"]


def _loss_value(model, loss, x, y):
    return loss(model(x), y)


def fd_diagonal_hessian(model, x, y, loss=None, eps=1e-4, param_names=None):
    """Exact (to O(eps^2)) diagonal Hessian via central differences.

    Parameters
    ----------
    model, x, y:
        Model and evaluation batch.
    loss:
        Loss object (default cross-entropy).
    eps:
        Finite-difference step.
    param_names:
        Restrict to these parameter names (default: all).

    Returns
    -------
    dict
        ``parameter name -> diagonal Hessian array``.

    Notes
    -----
    Cost is ``2 * n_weights`` forward passes — use only on small models
    or with :func:`fd_diagonal_hessian_sampled`.
    """
    loss = loss if loss is not None else CrossEntropyLoss()
    names = set(param_names) if param_names is not None else None
    f_zero = _loss_value(model, loss, x, y)
    result = {}
    for name, param in model.named_parameters():
        if names is not None and name not in names:
            continue
        curv = np.zeros_like(param.data, dtype=np.float64)
        flat = param.data.reshape(-1)
        curv_flat = curv.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            f_plus = _loss_value(model, loss, x, y)
            flat[i] = orig - eps
            f_minus = _loss_value(model, loss, x, y)
            flat[i] = orig
            curv_flat[i] = (f_plus - 2.0 * f_zero + f_minus) / (eps * eps)
        result[name] = curv
    return result


def fd_diagonal_hessian_sampled(model, x, y, entries, loss=None, eps=1e-4):
    """Finite-difference curvature for selected ``(param_name, flat_index)``.

    Parameters
    ----------
    entries:
        Iterable of ``(parameter name, flat index)`` pairs.

    Returns
    -------
    numpy.ndarray
        Curvature value per entry, in input order.
    """
    loss = loss if loss is not None else CrossEntropyLoss()
    params = dict(model.named_parameters())
    f_zero = _loss_value(model, loss, x, y)
    values = []
    for name, index in entries:
        if name not in params:
            raise KeyError(f"unknown parameter {name!r}")
        flat = params[name].data.reshape(-1)
        orig = flat[index]
        flat[index] = orig + eps
        f_plus = _loss_value(model, loss, x, y)
        flat[index] = orig - eps
        f_minus = _loss_value(model, loss, x, y)
        flat[index] = orig
        values.append((f_plus - 2.0 * f_zero + f_minus) / (eps * eps))
    return np.asarray(values, dtype=np.float64)
