"""Algorithm 1 — SWIM's selective write-verify — and the NWC sweep variant.

Two entry points:

- :func:`selective_write_verify` is the literal Algorithm 1: program,
  rank by sensitivity, write-verify group after group (granularity ``p``)
  until the measured accuracy drop is within ``delta_a``.
- :func:`sweep_nwc` drives the Table 1 / Fig. 2 experiments: for one Monte
  Carlo draw it deploys the top-k selection for every requested NWC target
  and records the accuracy, sharing a single program + verify simulation
  across all targets (the weights' verified values do not depend on which
  of them we *choose* to deploy, so this is exact, not an approximation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import evaluate_accuracy
from repro.core.selection import WeightSpace, cumulative_groups

__all__ = ["SwimConfig", "SwimResult", "selective_write_verify", "sweep_nwc"]


@dataclass(frozen=True)
class SwimConfig:
    """Knobs of Algorithm 1.

    Attributes
    ----------
    delta_a:
        Maximum acceptable accuracy drop (fractional, e.g. 0.005 = 0.5%).
    granularity:
        Group size ``p`` as a fraction of all weights (paper: 5%).
    eval_batch_size:
        Batch size for the accuracy evaluations of line 7.
    """

    delta_a: float = 0.005
    granularity: float = 0.05
    eval_batch_size: int = 256

    def __post_init__(self):
        if self.delta_a < 0:
            raise ValueError("delta_a must be >= 0")
        if not 0 < self.granularity <= 1:
            raise ValueError("granularity must be in (0, 1]")


@dataclass
class SwimResult:
    """Trace of one Algorithm 1 run.

    Attributes
    ----------
    achieved_accuracy:
        Accuracy of the deployed (partially verified) network.
    achieved_nwc:
        Write cycles spent / cycles to write-verify everything.
    selected_fraction:
        Fraction of weights write-verified when the loop stopped.
    met_target:
        Whether the accuracy-drop target was met.
    accuracy_history, nwc_history:
        Per-group traces (one entry per executed group).
    """

    achieved_accuracy: float
    achieved_nwc: float
    selected_fraction: float
    met_target: bool
    accuracy_history: list = field(default_factory=list)
    nwc_history: list = field(default_factory=list)


def selective_write_verify(
    model,
    accelerator,
    scorer,
    eval_x,
    eval_y,
    baseline_accuracy,
    config=None,
    rng=None,
    sense_x=None,
    sense_y=None,
):
    """Run Algorithm 1 end to end for one Monte Carlo draw.

    Parameters
    ----------
    model:
        The trained network (weights are the desired values W0).
    accelerator:
        A :class:`~repro.cim.CimAccelerator` wrapping ``model``.
    scorer:
        A :class:`~repro.core.sensitivity.SensitivityScorer`.
    eval_x, eval_y:
        Dataset D used for the accuracy checks (paper uses training data).
    baseline_accuracy:
        Accuracy ``A`` of the original network (line 1 input).
    config:
        :class:`SwimConfig`.
    rng:
        :class:`~repro.utils.rng.RngStream` for programming noise and any
        scorer randomness.
    sense_x, sense_y:
        Data for the sensitivity pass (defaults to ``eval_x/eval_y``).

    Returns
    -------
    SwimResult
    """
    if rng is None:
        raise ValueError("selective_write_verify requires an rng")
    config = config if config is not None else SwimConfig()
    space = WeightSpace.from_model(model)
    if sense_x is None:
        sense_x, sense_y = eval_x, eval_y

    # Line 2: program all weights (parallel, no verify cost).
    accelerator.program(rng.child("program").generator)
    accelerator.write_verify_all(rng.child("verify").generator)

    # Line 3-4: sensitivity on the ideal network, then global sort.
    accelerator.clear()
    order = scorer.ranking(model, space, sense_x, sense_y, rng=rng.child("scorer"))

    result = SwimResult(
        achieved_accuracy=0.0,
        achieved_nwc=0.0,
        selected_fraction=0.0,
        met_target=False,
    )

    # NWC = 0 deployment first: maybe nothing needs verification at all.
    nwc = accelerator.apply_none()
    accuracy = evaluate_accuracy(model, eval_x, eval_y, config.eval_batch_size)
    result.accuracy_history.append(accuracy)
    result.nwc_history.append(nwc)
    selected = 0

    if baseline_accuracy - accuracy > config.delta_a:
        # Lines 5-11: grow the verified set group by group.
        for prefix in cumulative_groups(order, config.granularity):
            masks = space.masks_from_indices(prefix)
            nwc = accelerator.apply_selection(masks)
            accuracy = evaluate_accuracy(
                model, eval_x, eval_y, config.eval_batch_size
            )
            selected = prefix.size
            result.accuracy_history.append(accuracy)
            result.nwc_history.append(nwc)
            if baseline_accuracy - accuracy <= config.delta_a:
                break

    result.achieved_accuracy = accuracy
    result.achieved_nwc = nwc
    result.selected_fraction = selected / space.total_size
    result.met_target = baseline_accuracy - accuracy <= config.delta_a
    return result


def sweep_nwc(
    model,
    accelerator,
    order,
    space,
    eval_x,
    eval_y,
    nwc_targets,
    rng,
    eval_batch_size=256,
    read_time=None,
    scorer=None,
    sense_x=None,
    sense_y=None,
):
    """Accuracy at each NWC target for one Monte Carlo draw.

    The ranking ``order`` is computed once by the caller (it does not
    depend on the noise draw); this function performs the program + verify
    simulation and then deploys/evaluates every target fraction.
    Alternatively pass ``order=None`` with a ``scorer`` (any
    :class:`~repro.core.sensitivity.SensitivityScorer`, e.g. a stack-fed
    :class:`~repro.core.extensions.HeteroSwimScorer`) and the ranking is
    computed here on the clean network — from ``sense_x/sense_y``
    (training data, as in Algorithm 1; do not rank on the data you
    score on).  The scorer's rng is ``rng.child("scorer")``, so a caller
    looping this function over Monte Carlo draws re-ranks per trial;
    precompute the order instead when the ranking should be shared
    (which is what :meth:`~repro.core.mc.MonteCarloEngine.sweep_nwc`
    does).  ``read_time`` (seconds since programming) lets a drifting
    nonideality stack age the deployed levels before each evaluation;
    the drift draws are named off ``rng``, so every target sees the same
    drifted devices.

    Returns
    -------
    tuple
        ``(accuracies, achieved_nwc)`` arrays aligned with
        ``nwc_targets``.
    """
    if order is None:
        if scorer is None:
            raise ValueError("sweep_nwc needs a precomputed order or a scorer")
        if sense_x is None:
            raise ValueError(
                "scorer= needs sense_x/sense_y (rank on training data, "
                "not the evaluation set)"
            )
        accelerator.clear()
        order = scorer.ranking(
            model, space, sense_x, sense_y, rng=rng.child("scorer")
        )
    accelerator.program(rng.child("program").generator)
    accelerator.write_verify_all(rng.child("verify").generator)
    accuracies = np.empty(len(nwc_targets), dtype=np.float64)
    achieved = np.empty(len(nwc_targets), dtype=np.float64)
    for i, target in enumerate(nwc_targets):
        count = int(round(target * space.total_size))
        masks = space.masks_from_indices(order[:count])
        achieved[i] = accelerator.apply_selection(
            masks, read_time=read_time, read_stream=rng
        )
        accuracies[i] = evaluate_accuracy(model, eval_x, eval_y, eval_batch_size)
    return accuracies, achieved
