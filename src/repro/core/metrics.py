"""Accuracy evaluation, NWC accounting, and the Monte Carlo harness.

The paper reports every number as mean +/- std over 3,000 Monte Carlo runs
"with verified convergence" (Sec. 4.2).  :func:`monte_carlo` reproduces
that protocol with named per-run RNG streams (run ``i`` sees the same noise
regardless of how many total runs are requested) and an optional
running-mean convergence check.

:func:`evaluate_accuracy_trials` is the trial-batched counterpart of
:func:`evaluate_accuracy`: with trial-batched weight overrides deployed on
the model's layers (see :mod:`repro.nn.layers.base`), it scores all
``n_trials`` variation draws in one folded forward pass per mini-batch and
returns a ``(n_trials,)`` accuracy vector.  The batched Monte Carlo engine
(:mod:`repro.core.mc`) builds on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.trainer import evaluate_accuracy
from repro.utils.stats import MeanStd, running_mean_converged, summarize

__all__ = [
    "evaluate_accuracy",
    "evaluate_accuracy_trials",
    "MonteCarloResult",
    "monte_carlo",
    "DEFAULT_NWC_TARGETS",
]

#: The NWC grid of the paper's Table 1 columns.
DEFAULT_NWC_TARGETS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


def _tile_trials(batch, n_trials):
    """Repeat a mini-batch trial-major: ``(N, ...) -> (T*N, ...)``."""
    shape = (n_trials,) + batch.shape
    return np.broadcast_to(batch, shape).reshape((n_trials * batch.shape[0],) + batch.shape[1:])


def _forward_trials(model, batch, n_trials):
    """One folded forward of a shared mini-batch under per-trial weights.

    The input is identical for every trial — only the deployed weights
    differ — so when the model's first weighted layer carries the trial
    axis, its input unfolding (the conv im2col, the dominant cost of a
    small-CNN forward) is computed once via ``forward_multi`` instead of
    ``n_trials`` times on a tiled batch.  Falls back to plain tiling for
    non-Sequential models or shared-weight leading layers.
    """
    from repro.nn.layers.base import WeightedLayer
    from repro.nn.module import Sequential

    if isinstance(model, Sequential) and len(model) > 0:
        first = model[0]
        if (
            isinstance(first, WeightedLayer)
            and first.override_trials() == n_trials
        ):
            out = first.forward_multi(batch, first.weight_override)
            for module in list(model)[1:]:
                out = module(out)
            return out
    return model(_tile_trials(batch, n_trials))


def evaluate_accuracy_trials(model, x, y, n_trials, batch_size=256):
    """Top-1 accuracy per trial under trial-batched weight overrides.

    The trial-batched counterpart of :func:`evaluate_accuracy`: each
    mini-batch is evaluated once for all trials (folded trial-major), so
    the per-layer dispatch cost is paid once instead of ``n_trials``
    times.

    Returns
    -------
    numpy.ndarray
        ``(n_trials,)`` float accuracies.
    """
    was_training = model.training
    model.eval()
    correct = np.zeros(int(n_trials), dtype=np.int64)
    for start in range(0, x.shape[0], batch_size):
        xb = x[start : start + batch_size]
        yb = y[start : start + batch_size]
        logits = _forward_trials(model, xb, n_trials)
        predictions = np.argmax(logits.reshape(n_trials, xb.shape[0], -1), axis=2)
        correct += (predictions == yb[None, :]).sum(axis=1)
    if was_training:
        model.train()
    return correct / x.shape[0]


@dataclass
class MonteCarloResult:
    """Per-run values plus convergence metadata."""

    values: np.ndarray
    converged: bool
    label: str = ""

    def summary(self) -> MeanStd:
        """Mean +/- std in the paper's reporting format."""
        return summarize(self.values)

    def __repr__(self):
        s = self.summary()
        return f"MonteCarloResult({self.label or 'unnamed'}: {s}, n={s.n})"


def monte_carlo(run_fn, n_runs, rng, label="", check_convergence=True,
                convergence_tol=0.02):
    """Run ``run_fn(run_rng) -> float`` for ``n_runs`` independent trials.

    Parameters
    ----------
    run_fn:
        Callable taking a per-run :class:`~repro.utils.rng.RngStream`.
    n_runs:
        Number of Monte Carlo trials.
    rng:
        Parent stream; run ``i`` uses ``rng.child("mc", i)``.
    label:
        Name recorded in the result.
    check_convergence:
        Record whether the running mean settled (paper's "verified
        convergence"); does not affect the values.
    convergence_tol:
        Relative tolerance of the convergence check.

    Returns
    -------
    MonteCarloResult
    """
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    values = np.empty(n_runs, dtype=np.float64)
    for i in range(n_runs):
        values[i] = float(run_fn(rng.child("mc", i)))
    converged = (
        running_mean_converged(values, rel_tol=convergence_tol,
                               window=max(3, n_runs // 5))
        if check_convergence and n_runs >= 8
        else False
    )
    return MonteCarloResult(values=values, converged=converged, label=label)
