"""Accuracy evaluation, NWC accounting, and the Monte Carlo harness.

The paper reports every number as mean +/- std over 3,000 Monte Carlo runs
"with verified convergence" (Sec. 4.2).  :func:`monte_carlo` reproduces
that protocol with named per-run RNG streams (run ``i`` sees the same noise
regardless of how many total runs are requested) and an optional
running-mean convergence check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.trainer import evaluate_accuracy
from repro.utils.stats import MeanStd, running_mean_converged, summarize

__all__ = ["evaluate_accuracy", "MonteCarloResult", "monte_carlo", "DEFAULT_NWC_TARGETS"]

#: The NWC grid of the paper's Table 1 columns.
DEFAULT_NWC_TARGETS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


@dataclass
class MonteCarloResult:
    """Per-run values plus convergence metadata."""

    values: np.ndarray
    converged: bool
    label: str = ""

    def summary(self) -> MeanStd:
        """Mean +/- std in the paper's reporting format."""
        return summarize(self.values)

    def __repr__(self):
        s = self.summary()
        return f"MonteCarloResult({self.label or 'unnamed'}: {s}, n={s.n})"


def monte_carlo(run_fn, n_runs, rng, label="", check_convergence=True,
                convergence_tol=0.02):
    """Run ``run_fn(run_rng) -> float`` for ``n_runs`` independent trials.

    Parameters
    ----------
    run_fn:
        Callable taking a per-run :class:`~repro.utils.rng.RngStream`.
    n_runs:
        Number of Monte Carlo trials.
    rng:
        Parent stream; run ``i`` uses ``rng.child("mc", i)``.
    label:
        Name recorded in the result.
    check_convergence:
        Record whether the running mean settled (paper's "verified
        convergence"); does not affect the values.
    convergence_tol:
        Relative tolerance of the convergence check.

    Returns
    -------
    MonteCarloResult
    """
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    values = np.empty(n_runs, dtype=np.float64)
    for i in range(n_runs):
        values[i] = float(run_fn(rng.child("mc", i)))
    converged = (
        running_mean_converged(values, rel_tol=convergence_tol,
                               window=max(3, n_runs // 5))
        if check_convergence and n_runs >= 8
        else False
    )
    return MonteCarloResult(values=values, converged=converged, label=label)
