"""SWIM core: sensitivity analysis, Algorithm 1, and the paper's baselines."""

from repro.core.extensions import (
    HeteroSwimScorer,
    expected_loss_increase,
    variance_map_from_mapping,
    variance_map_from_stack,
)
from repro.core.hessian_fd import fd_diagonal_hessian, fd_diagonal_hessian_sampled
from repro.core.insitu import InSituConfig, InSituHistory, InSituTrainer
from repro.core.mc import MonteCarloEngine
from repro.core.metrics import (
    DEFAULT_NWC_TARGETS,
    MonteCarloResult,
    evaluate_accuracy,
    evaluate_accuracy_trials,
    monte_carlo,
)
from repro.core.pareto import nwc_to_reach, speedup_at_iso_accuracy, speedup_table
from repro.core.second_derivative import (
    accumulate_second_derivatives,
    compute_gradients,
    compute_second_derivatives,
)
from repro.core.selection import WeightSpace, cumulative_groups, rank_descending
from repro.core.sensitivity import (
    FisherScorer,
    GradientScorer,
    HessianFDScorer,
    MagnitudeScorer,
    RandomScorer,
    SensitivityScorer,
    SwimScorer,
    build_scorer,
)
from repro.core.swim import SwimConfig, SwimResult, selective_write_verify, sweep_nwc

__all__ = [
    "DEFAULT_NWC_TARGETS",
    "FisherScorer",
    "GradientScorer",
    "HeteroSwimScorer",
    "HessianFDScorer",
    "InSituConfig",
    "InSituHistory",
    "InSituTrainer",
    "MagnitudeScorer",
    "MonteCarloEngine",
    "MonteCarloResult",
    "RandomScorer",
    "SensitivityScorer",
    "SwimConfig",
    "SwimResult",
    "SwimScorer",
    "WeightSpace",
    "accumulate_second_derivatives",
    "build_scorer",
    "compute_gradients",
    "compute_second_derivatives",
    "cumulative_groups",
    "evaluate_accuracy",
    "evaluate_accuracy_trials",
    "expected_loss_increase",
    "fd_diagonal_hessian",
    "fd_diagonal_hessian_sampled",
    "monte_carlo",
    "nwc_to_reach",
    "rank_descending",
    "selective_write_verify",
    "speedup_at_iso_accuracy",
    "speedup_table",
    "sweep_nwc",
    "variance_map_from_mapping",
    "variance_map_from_stack",
]
