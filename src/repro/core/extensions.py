"""Extensions of SWIM's sensitivity analysis beyond the paper's setting.

Eq. 5 of the paper is more general than the experiments use it:

    E[delta_f] ~= 0.5 * sum_i H_ii * E[dw_i^2]

The paper's device model makes ``E[dw_i^2]`` identical for every weight,
so ranking by ``H_ii`` alone is optimal.  Real platforms are messier —
different layers may sit on different arrays (different sigma), devices
age, bit-slice counts differ per layer.  :class:`HeteroSwimScorer` ranks by
the full product ``H_ii * var_i``, which reduces exactly to SWIM when the
variance map is constant.

``expected_loss_increase`` exposes the Eq. 5 estimate itself, which the
tests validate against Monte Carlo measurements of the true loss — a
quantitative check of the paper's central approximation (the independence
assumption that drops the Hessian cross terms).
"""

from __future__ import annotations

import numpy as np

from repro.core.second_derivative import accumulate_second_derivatives
from repro.core.sensitivity import SensitivityScorer

__all__ = [
    "expected_loss_increase",
    "variance_map_from_mapping",
    "HeteroSwimScorer",
]


def expected_loss_increase(curvature_flat, variance_flat):
    """Eq. 5: predicted mean loss increase under independent perturbation.

    Parameters
    ----------
    curvature_flat:
        Diagonal second derivatives, flat over the weight space.
    variance_flat:
        Per-weight perturbation variance ``E[dw_i^2]`` (scalar broadcasts).

    Returns
    -------
    float
        ``0.5 * sum_i H_ii * var_i``.
    """
    curvature = np.asarray(curvature_flat, dtype=np.float64)
    variance = np.broadcast_to(
        np.asarray(variance_flat, dtype=np.float64), curvature.shape
    )
    return float(0.5 * (curvature * variance).sum())


def variance_map_from_mapping(space, model, mapping_config):
    """Per-weight Eq. 16 noise variance in *weight units* for each tensor.

    Different tensors have different quantization scales, so the same
    device noise means different weight-space variance per layer — the
    simplest realistic source of heterogeneity.
    """
    from repro.cim.mapping import WeightMapper

    mapper = WeightMapper(mapping_config)
    params = dict(model.named_parameters())
    code_std = mapping_config.code_noise_std()
    variances = {}
    for name in space.names:
        _, scale = mapper.quantize(params[name].data)
        std_w = code_std * scale
        variances[name] = np.full(space.shape_of(name), std_w ** 2)
    return space.flatten(variances)


class HeteroSwimScorer(SensitivityScorer):
    """SWIM generalized to heterogeneous per-weight noise variance.

    Parameters
    ----------
    variance_provider:
        Callable ``(model, space) -> flat variance array`` giving
        ``E[dw_i^2]`` per weight; defaults to the per-tensor Eq. 16
        variance via :func:`variance_map_from_mapping` when a
        ``mapping_config`` is supplied instead.
    """

    name = "hetero_swim"

    def __init__(self, variance_provider=None, mapping_config=None,
                 loss=None, batch_size=256, max_batches=None):
        if variance_provider is None and mapping_config is None:
            raise ValueError(
                "provide variance_provider or mapping_config"
            )
        if variance_provider is None:
            def variance_provider(model, space):
                return variance_map_from_mapping(space, model, mapping_config)
        self.variance_provider = variance_provider
        self.loss = loss
        self.batch_size = batch_size
        self.max_batches = max_batches

    def scores(self, model, space, x, y, rng=None):
        curvature = accumulate_second_derivatives(
            model, x, y, loss=self.loss,
            batch_size=self.batch_size, max_batches=self.max_batches,
        )
        flat_curv = space.flatten({n: curvature[n] for n in space.names})
        variance = np.asarray(self.variance_provider(model, space))
        if variance.shape != flat_curv.shape:
            raise ValueError(
                f"variance map shape {variance.shape} != weight space "
                f"({flat_curv.shape})"
            )
        return flat_curv * variance

    def tie_break(self, model, space):
        return np.abs(space.gather_from_model(model, "data"))
