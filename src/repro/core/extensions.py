"""Extensions of SWIM's sensitivity analysis beyond the paper's setting.

Eq. 5 of the paper is more general than the experiments use it:

    E[delta_f] ~= 0.5 * sum_i H_ii * E[dw_i^2]

The paper's device model makes ``E[dw_i^2]`` identical for every weight,
so ranking by ``H_ii`` alone is optimal.  Real platforms are messier —
different layers may sit on different arrays (different sigma), devices
age, bit-slice counts differ per layer.  :class:`HeteroSwimScorer` ranks by
the full product ``H_ii * var_i``, which reduces exactly to SWIM when the
variance map is constant.

``expected_loss_increase`` exposes the Eq. 5 estimate itself, which the
tests validate against Monte Carlo measurements of the true loss — a
quantitative check of the paper's central approximation (the independence
assumption that drops the Hessian cross terms).
"""

from __future__ import annotations

import numpy as np

from repro.core.second_derivative import accumulate_second_derivatives
from repro.core.sensitivity import SensitivityScorer

__all__ = [
    "expected_loss_increase",
    "variance_map_from_mapping",
    "variance_map_from_stack",
    "HeteroSwimScorer",
]


def expected_loss_increase(curvature_flat, variance_flat):
    """Eq. 5: predicted mean loss increase under independent perturbation.

    Parameters
    ----------
    curvature_flat:
        Diagonal second derivatives, flat over the weight space.
    variance_flat:
        Per-weight perturbation variance ``E[dw_i^2]`` (scalar broadcasts).

    Returns
    -------
    float
        ``0.5 * sum_i H_ii * var_i``.
    """
    curvature = np.asarray(curvature_flat, dtype=np.float64)
    variance = np.broadcast_to(
        np.asarray(variance_flat, dtype=np.float64), curvature.shape
    )
    return float(0.5 * (curvature * variance).sum())


def variance_map_from_mapping(space, model, mapping_config):
    """Per-weight Eq. 16 noise variance in *weight units* for each tensor.

    Different tensors have different quantization scales, so the same
    device noise means different weight-space variance per layer — the
    simplest realistic source of heterogeneity.
    """
    from repro.cim.mapping import WeightMapper

    mapper = WeightMapper(mapping_config)
    params = dict(model.named_parameters())
    code_std = mapping_config.code_noise_std()
    variances = {}
    for name in space.names:
        _, scale = mapper.quantize(params[name].data)
        std_w = code_std * scale
        variances[name] = np.full(space.shape_of(name), std_w ** 2)
    return space.flatten(variances)


def variance_map_from_stack(space, model, mapping_config, stack,
                            read_time=None, wear_inflation=1.0, wear=None):
    """Per-weight ``E[dw_i^2]`` from the device physics stack, weight units.

    The closure of the selection loop: the
    :meth:`~repro.cim.devices.NonidealityStack.variance_map` analytic
    composition (write noise through per-tensor quantization scales,
    spatial marginal variance, drift at ``read_time``, compensation) is
    what Eq. 5 should pair with the curvature when the platform is more
    heterogeneous than the paper's i.i.d. model.  ``wear`` (an endurance
    observer summary or consumed fraction) derives the programming-noise
    inflation from the technology's sigma-growth curve; the manual
    ``wear_inflation`` knob overrides it.
    """
    return stack.variance_map(
        mapping_config,
        read_time=read_time,
        space=space,
        model=model,
        wear_inflation=wear_inflation,
        wear=wear,
    )


class HeteroSwimScorer(SensitivityScorer):
    """SWIM generalized to heterogeneous per-weight noise variance.

    Parameters
    ----------
    variance_provider:
        Callable ``(model, space) -> per-weight variance`` giving
        ``E[dw_i^2]`` — either a flat vector over the space or a
        ``name -> weight-shaped array`` dict.
    mapping_config:
        Without a provider/stack: the per-tensor Eq. 16 variance via
        :func:`variance_map_from_mapping`.
    technology / stack / read_time / wear_inflation / wear:
        The physics-fed path: a registered
        :class:`~repro.cim.DeviceTechnology` name (or instance) — or an
        explicit :class:`~repro.cim.NonidealityStack` plus
        ``mapping_config`` — feeds :func:`variance_map_from_stack`, so
        the ranking sees the same drift/spatial/wear variance the
        deployment will, evaluated at the target ``read_time``.
        ``wear`` (an endurance observer summary or consumed fraction)
        derives the cycling inflation from the technology's
        sigma-growth curve; the manual ``wear_inflation`` overrides it.
    weight_bits:
        Quantization bits M of the workload when deriving the mapping
        from ``technology`` (default: the registry's 4-bit convention).
        Must match the accelerator's mapping — a 6-bit workload scored
        under a 4-bit map would rank against the wrong scales.
    """

    name = "hetero_swim"

    def __init__(self, variance_provider=None, mapping_config=None,
                 technology=None, stack=None, read_time=None,
                 wear_inflation=1.0, wear=None, weight_bits=None, loss=None,
                 batch_size=256, max_batches=None):
        if technology is not None:
            from repro.cim.devices import resolve_technology

            tech = resolve_technology(technology)
            if mapping_config is None:
                mapping_config = (
                    tech.mapping_config()
                    if weight_bits is None
                    else tech.mapping_config(weight_bits=weight_bits)
                )
            if stack is None:
                stack = tech.build_stack()
        if stack is not None and mapping_config is None:
            raise ValueError(
                "stack= needs a mapping_config= (or pass technology= to "
                "derive both)"
            )
        if variance_provider is None:
            if stack is not None:
                def variance_provider(model, space):
                    return variance_map_from_stack(
                        space, model, mapping_config, stack,
                        read_time=read_time, wear_inflation=wear_inflation,
                        wear=wear,
                    )
            elif mapping_config is not None:
                def variance_provider(model, space):
                    return variance_map_from_mapping(
                        space, model, mapping_config
                    )
            else:
                raise ValueError(
                    "provide a variance_provider, mapping_config, stack "
                    "or technology"
                )
        self.variance_provider = variance_provider
        self.mapping_config = mapping_config
        self.stack = stack
        self.read_time = read_time
        self.loss = loss
        self.batch_size = batch_size
        self.max_batches = max_batches

    def _flat_variance(self, model, space):
        """Validate the provider's output against the weight space."""
        variance = self.variance_provider(model, space)
        if isinstance(variance, dict):
            missing = sorted(set(space.names) - set(variance))
            if missing:
                raise ValueError(
                    f"variance map is missing tensors {missing}; the "
                    f"weight space covers {space.names}"
                )
            for name in space.names:
                got = np.asarray(variance[name]).shape
                want = space.shape_of(name)
                if got != want:
                    raise ValueError(
                        f"variance map for tensor {name!r} has shape "
                        f"{got}, but the weight tensor has shape {want}"
                    )
            return space.flatten(variance)
        variance = np.asarray(variance, dtype=np.float64)
        if variance.shape != (space.total_size,):
            per_tensor = ", ".join(
                f"{name}{space.shape_of(name)}" for name in space.names
            )
            raise ValueError(
                f"variance map shape {variance.shape} does not match the "
                f"weight space: expected a flat ({space.total_size},) "
                f"vector over tensors [{per_tensor}]"
            )
        return variance

    def scores(self, model, space, x, y, rng=None):
        curvature = accumulate_second_derivatives(
            model, x, y, loss=self.loss,
            batch_size=self.batch_size, max_batches=self.max_batches,
        )
        flat_curv = space.flatten({n: curvature[n] for n in space.names})
        return flat_curv * self._flat_variance(model, space)

    def tie_break(self, model, space):
        return np.abs(space.gather_from_model(model, "data"))
