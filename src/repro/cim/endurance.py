"""Deprecated shim: moved to :mod:`repro.cim.devices.endurance`.

Endurance accounting now rides the composable nonideality stack as an
observer (:class:`repro.cim.devices.EnduranceObserver`).  Import
:class:`EnduranceModel` / :class:`WearReport` from :mod:`repro.cim` or
:mod:`repro.cim.devices` instead; this module re-exports the old names
so existing imports keep working.
"""

from __future__ import annotations

import warnings

from repro.cim.devices.endurance import EnduranceModel, EnduranceObserver, WearReport

__all__ = ["EnduranceModel", "EnduranceObserver", "WearReport"]

warnings.warn(
    "repro.cim.endurance is deprecated; import from repro.cim or "
    "repro.cim.devices instead",
    DeprecationWarning,
    stacklevel=2,
)
