"""Technology registry: named device profiles behind one nonideality stack.

CIMulator-style platforms gain much of their value from simulating
*multiple real memory materials* on one code path; this registry does the
same for the SWIM pipeline.  A :class:`DeviceTechnology` bundles the
technology-specific parameters of every nonideality silo — programming
sigma, bits per cell, retention drift, spatial correlation, endurance
budget — and builds the matching :class:`~repro.cim.devices.stack.
NonidealityStack` and :class:`~repro.cim.mapping.MappingConfig` on
demand, so ``CimAccelerator(model, technology="pcm")`` is a one-liner.

The built-in profiles are literature-calibrated orders of magnitude, not
device cards: ``fefet`` is the paper's default operating point (Yan et
al. evaluate FeFET CiM at sigma = 0.1 on 4-bit cells), ``rram`` and
``pcm`` follow the usual multi-level filament/phase-change trade-offs
(more variation, relaxation- vs drift-dominated retention), and ``mram``
is the binary, tight-distribution, near-unlimited-endurance outlier.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.cim.devices.device import DeviceConfig
from repro.cim.devices.endurance import EnduranceModel, EnduranceObserver
from repro.cim.devices.retention import RetentionModel
from repro.cim.devices.spatial import SpatialVariationModel
from repro.cim.devices.stack import (
    DriftCompensationStage,
    NonidealityStack,
    ProgrammingNoiseStage,
    RetentionDriftStage,
    SpatialCorrelationStage,
)

__all__ = [
    "DeviceTechnology",
    "register_technology",
    "get_technology",
    "resolve_technology",
    "technology_names",
    "DEFAULT_TECHNOLOGY",
]

DEFAULT_TECHNOLOGY = "fefet"


@dataclass(frozen=True)
class DeviceTechnology:
    """One memory technology's nonideality parameters.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"fefet"``).
    description:
        One-line provenance note for reports.
    bits / sigma:
        Cell resolution and programming-noise std (fraction of the cell's
        full-scale) — the :class:`DeviceConfig` parameters.
    drift_nu / drift_sigma_nu / relaxation_sigma:
        :class:`RetentionModel` parameters; all-zero disables the read
        stage entirely.
    spatial_sigma / correlation_length / global_fraction:
        :class:`SpatialVariationModel` parameters; ``spatial_sigma = 0``
        disables the spatial write stage.
    endurance_cycles:
        Program/erase budget for the endurance observer.
    wear_sigma_growth / wear_growth_exponent:
        The sigma-growth-vs-cycling curve of
        :class:`~repro.cim.devices.endurance.EnduranceModel`: the
        fractional programming-sigma increase at full endurance
        consumption and the curve's exponent.  This is what lets the
        variance map derive ``wear_inflation`` from the endurance
        observer's consumed fraction instead of a manual knob.
    drift_compensated:
        When True (and the technology drifts), the read pipeline appends a
        :class:`~repro.cim.devices.stack.DriftCompensationStage` — the
        global mean-decay rescale PCM platforms apply at read time.
    """

    name: str
    description: str = ""
    bits: int = 4
    sigma: float = 0.1
    drift_nu: float = 0.0
    drift_sigma_nu: float = 0.0
    relaxation_sigma: float = 0.0
    spatial_sigma: float = 0.0
    correlation_length: float = 8.0
    global_fraction: float = 0.2
    endurance_cycles: float = 1e6
    wear_sigma_growth: float = 0.0
    wear_growth_exponent: float = 1.0
    drift_compensated: bool = False

    # ------------------------------------------------------------ factories

    def device_config(self):
        """The per-cell programming model."""
        return DeviceConfig(bits=self.bits, sigma=self.sigma)

    @property
    def has_drift(self):
        """Whether this technology models retention at all."""
        return (
            self.drift_nu > 0
            or self.drift_sigma_nu > 0
            or self.relaxation_sigma > 0
        )

    def retention_model(self):
        """The drift model, or None for drift-free technologies."""
        if not self.has_drift:
            return None
        return RetentionModel(
            nu=self.drift_nu,
            sigma_nu=self.drift_sigma_nu,
            relaxation_sigma=self.relaxation_sigma,
        )

    def spatial_model(self):
        """The correlated-variation model, or None when disabled."""
        if self.spatial_sigma <= 0:
            return None
        return SpatialVariationModel(
            sigma=self.spatial_sigma,
            correlation_length=self.correlation_length,
            global_fraction=self.global_fraction,
        )

    def endurance_model(self):
        """The pulse-budget + write-precision-aging model."""
        return EnduranceModel(
            endurance_cycles=self.endurance_cycles,
            sigma_growth=self.wear_sigma_growth,
            growth_exponent=self.wear_growth_exponent,
        )

    def mapping_config(self, weight_bits=4, differential=False):
        """A :class:`~repro.cim.mapping.MappingConfig` on this technology."""
        from repro.cim.mapping import MappingConfig

        return MappingConfig(
            weight_bits=weight_bits,
            device=self.device_config(),
            differential=differential,
        )

    def build_stack(self):
        """The ordered nonideality stack of this technology.

        Write order is programming noise, then spatial correlation (the
        fabrication field sits on top of whatever each pulse achieved);
        retention drift is the read stage, followed by the global
        mean-decay rescale when ``drift_compensated`` is set; endurance
        rides along as an observer.
        """
        stages = [ProgrammingNoiseStage()]
        spatial = self.spatial_model()
        if spatial is not None:
            stages.append(SpatialCorrelationStage(spatial))
        retention = self.retention_model()
        if retention is not None:
            stages.append(RetentionDriftStage(retention))
            if self.drift_compensated:
                stages.append(DriftCompensationStage(retention))
        return NonidealityStack(
            stages=stages,
            observers=(EnduranceObserver(self.endurance_model()),),
        )

    # -------------------------------------------------------- serialization

    def to_dict(self):
        """JSON-serializable parameter dict (round-trips via from_dict)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        """Rebuild a technology from :meth:`to_dict` output."""
        return cls(**data)


_REGISTRY = {}


def register_technology(technology, overwrite=False):
    """Add a :class:`DeviceTechnology` to the global registry.

    Returns the registered technology so custom profiles can be defined
    inline; re-registering an existing name requires ``overwrite=True``.
    """
    if not isinstance(technology, DeviceTechnology):
        raise TypeError(f"expected DeviceTechnology, got {type(technology).__name__}")
    if technology.name in _REGISTRY and not overwrite:
        raise ValueError(
            f"technology {technology.name!r} already registered "
            "(pass overwrite=True to replace)"
        )
    _REGISTRY[technology.name] = technology
    return technology


def get_technology(name):
    """Look up a registered technology by name."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown technology {name!r}; registered: {technology_names()}"
        )
    return _REGISTRY[name]


def resolve_technology(technology):
    """Accept a registry name or a :class:`DeviceTechnology` instance."""
    if isinstance(technology, DeviceTechnology):
        return technology
    return get_technology(technology)


def technology_names():
    """Registered technology names, in registration order."""
    return list(_REGISTRY)


# --------------------------------------------------------------- built-ins

register_technology(DeviceTechnology(
    name="fefet",
    description=(
        "FeFET CiM at the paper's operating point: 4-bit cells, "
        "sigma = 0.1, mild polarization relaxation, limited ferroelectric "
        "fatigue endurance"
    ),
    bits=4,
    sigma=0.10,
    drift_nu=0.002,
    drift_sigma_nu=0.001,
    relaxation_sigma=0.002,
    endurance_cycles=1e7,
    wear_sigma_growth=0.6,
))

register_technology(DeviceTechnology(
    name="rram",
    description=(
        "Multi-level filamentary RRAM: wider write distributions, "
        "relaxation-dominated retention, ~1e6-cycle endurance"
    ),
    bits=4,
    sigma=0.15,
    drift_nu=0.005,
    drift_sigma_nu=0.003,
    relaxation_sigma=0.010,
    endurance_cycles=1e6,
    wear_sigma_growth=1.0,
    wear_growth_exponent=0.7,
))

register_technology(DeviceTechnology(
    name="pcm",
    description=(
        "Phase-change memory: strong power-law conductance drift "
        "(nu ~ 0.05) with device-to-device exponent spread"
    ),
    bits=4,
    sigma=0.12,
    drift_nu=0.05,
    drift_sigma_nu=0.010,
    relaxation_sigma=0.005,
    endurance_cycles=1e8,
    wear_sigma_growth=0.4,
))

register_technology(DeviceTechnology(
    name="pcm-comp",
    description=(
        "Phase-change memory with global drift compensation: the same "
        "cells as 'pcm', but the read path rescales away the mean "
        "power-law decay (time-aware sensing), leaving exponent spread "
        "and relaxation"
    ),
    bits=4,
    sigma=0.12,
    drift_nu=0.05,
    drift_sigma_nu=0.010,
    relaxation_sigma=0.005,
    endurance_cycles=1e8,
    wear_sigma_growth=0.4,
    drift_compensated=True,
))

register_technology(DeviceTechnology(
    name="fefet-spatial",
    description=(
        "FeFET CiM with fabrication-correlated variation: the paper's "
        "operating point plus a spatially correlated error field, so "
        "unverified weights fail in clusters (paper Sec. 2.1)"
    ),
    bits=4,
    sigma=0.10,
    drift_nu=0.002,
    drift_sigma_nu=0.001,
    relaxation_sigma=0.002,
    spatial_sigma=0.10,
    correlation_length=8.0,
    global_fraction=0.2,
    endurance_cycles=1e7,
    wear_sigma_growth=0.6,
))

register_technology(DeviceTechnology(
    name="mram",
    description=(
        "STT-MRAM: binary cells (4 slices per 4-bit weight), tight write "
        "distribution, effectively drift-free, near-unlimited endurance"
    ),
    bits=1,
    sigma=0.05,
    endurance_cycles=1e12,
))
