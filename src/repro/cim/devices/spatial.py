"""Spatially correlated device variation (the paper's Sec. 2.1 extension).

The paper evaluates *temporal* variation (i.i.d. per device) and notes that
"spatial variations result from fabrication defects and have both local and
global correlations... The proposed framework can also be extended to other
sources of variations with modification."  This module provides that
extension: a Gaussian random field over the physical crossbar layout, with

- a *global* wafer-level offset shared by a whole array, and
- a *local* component correlated over a configurable length scale
  (filtered white noise),

normalized so the marginal per-device std matches the requested sigma.
Because correlated noise cannot be fought by re-programming alone (all
nearby devices err together), write-verify still works — the verify loop
measures each device individually — but *unverified* weights now fail in
clusters, which stresses selection quality differently than i.i.d. noise
(see ``benchmarks/bench_spatial.py``).

The Gaussian smoothing uses :func:`scipy.ndimage.gaussian_filter` when
SciPy is installed and falls back to a NumPy separable wrap-mode filter
otherwise, so the module works in minimal environments; the field is
re-normalized to the marginal sigma either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

try:  # SciPy is optional: only the smoothing kernel comes from it.
    from scipy import ndimage as _ndimage
except ImportError:  # pragma: no cover - exercised via _gaussian_filter_wrap
    _ndimage = None

__all__ = ["SpatialVariationModel"]


def _gaussian_filter_wrap(array, sigma):
    """Separable wrap-mode Gaussian smoothing (NumPy fallback for SciPy).

    Matches scipy.ndimage.gaussian_filter's kernel radius convention
    (truncate at 4 sigma); small numerical differences to SciPy are
    irrelevant because the caller re-normalizes the field's std.
    """
    radius = max(1, int(4.0 * sigma + 0.5))
    offsets = np.arange(-radius, radius + 1)
    kernel = np.exp(-0.5 * (offsets / sigma) ** 2)
    kernel /= kernel.sum()
    out = np.asarray(array, dtype=np.float64)
    for axis in range(out.ndim):
        moved = np.moveaxis(out, axis, 0)
        n = moved.shape[0]
        idx = (np.arange(n)[:, None] + offsets[None, :]) % n
        gathered = moved[idx]  # (n, kernel) + rest
        kshape = (1, kernel.size) + (1,) * (moved.ndim - 1)
        moved = (gathered * kernel.reshape(kshape)).sum(axis=1)
        out = np.moveaxis(moved, 0, axis)
    return out


def _smooth(white, correlation_length):
    if _ndimage is not None:
        return _ndimage.gaussian_filter(white, correlation_length, mode="wrap")
    return _gaussian_filter_wrap(white, correlation_length)


@dataclass(frozen=True)
class SpatialVariationModel:
    """Correlated programming-error field over crossbar coordinates.

    Attributes
    ----------
    sigma:
        Marginal per-device noise std as a fraction of full-scale (the
        same convention as :class:`~repro.cim.devices.device.DeviceConfig`).
    correlation_length:
        Length scale (in devices) of the local correlation; 0 reduces to
        i.i.d. noise.
    global_fraction:
        Fraction of the noise *variance* carried by the array-wide offset
        (fabrication-lot component).
    array_rows:
        Devices per physical column used to fold a flat weight tensor
        onto 2-D crossbar coordinates.
    """

    sigma: float = 0.1
    correlation_length: float = 8.0
    global_fraction: float = 0.2
    array_rows: int = 128

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        if self.correlation_length < 0:
            raise ValueError("correlation_length must be >= 0")
        if not 0 <= self.global_fraction < 1:
            raise ValueError("global_fraction must be in [0, 1)")
        if self.array_rows < 1:
            raise ValueError("array_rows must be >= 1")

    def _layout(self, size):
        """Fold ``size`` devices into (rows, cols) crossbar coordinates."""
        rows = min(self.array_rows, size)
        cols = -(-size // rows)
        return rows, cols

    def sample_field(self, size, rng, device_max_level=15):
        """Sample a correlated error field for ``size`` devices.

        Parameters
        ----------
        size:
            Number of devices.
        rng:
            numpy Generator.
        device_max_level:
            Full-scale in level units (errors are returned in levels).

        Returns
        -------
        numpy.ndarray
            Flat error array of length ``size`` (level units) whose
            marginal std is ``sigma * device_max_level``.
        """
        if self.sigma == 0 or size == 0:
            return np.zeros(size)
        rows, cols = self._layout(size)
        white = rng.normal(0.0, 1.0, size=(rows, cols))
        if self.correlation_length > 0:
            local = _smooth(white, self.correlation_length)
            std = local.std()
            local = local / std if std > 0 else white
        else:
            local = white
        field = np.sqrt(1.0 - self.global_fraction) * local
        if self.global_fraction > 0:
            field = field + np.sqrt(self.global_fraction) * rng.normal()
        flat = field.reshape(-1)[:size]
        return flat * self.sigma * device_max_level

    def sample_field_trials(self, size, trial_rngs, device_max_level=15):
        """Sample one independent field per trial: ``(n_trials, size)``.

        Trial ``i`` draws from ``trial_rngs[i]`` exactly as a scalar
        :meth:`sample_field` call would (bitwise-equal), which is what
        keeps the batched nonideality stack equivalent to the scalar
        reference path.
        """
        return np.stack(
            [
                self.sample_field(size, rng, device_max_level=device_max_level)
                for rng in trial_rngs
            ]
        )

    def correlation_at_lag(self, lag, size=8192, seed=0, device_max_level=15):
        """Empirical autocorrelation of the field at a given row lag.

        Diagnostic used by tests and the spatial bench to demonstrate the
        difference from i.i.d. noise.
        """
        rng = np.random.default_rng(seed)
        field = self.sample_field(size, rng, device_max_level)
        rows, cols = self._layout(size)
        grid = np.resize(field, rows * cols).reshape(rows, cols)
        a = grid[: rows - lag, :].reshape(-1)
        b = grid[lag:, :].reshape(-1)
        a = a - a.mean()
        b = b - b.mean()
        denom = np.sqrt((a * a).mean() * (b * b).mean())
        return float((a * b).mean() / denom) if denom > 0 else 0.0
