"""Conductance retention drift after programming.

Write-verify guarantees precision *at programming time*; NVM conductances
then drift (prominently in PCM, and as random telegraph/relaxation noise in
RRAM — the read-noise concern of Shim et al. [8], the paper's calibration
source).  This module models post-programming drift so the benchmark suite
can ask a question the paper leaves open: *does a selectively verified
network lose its advantage over time?*

Model
-----
Power-law drift with device-to-device exponent variation, the standard PCM
form::

    g(t) = g(t0) * (t / t0) ** (-nu_i),   nu_i ~ N(nu, sigma_nu^2)

plus an optional zero-mean relaxation term growing as ``log(t/t0)``
(RRAM-style conductance relaxation).  ``t`` is in seconds, ``t0`` the
read-after-write reference time.

Trial batching
--------------
:meth:`RetentionModel.apply_trials` drifts a stack of independent Monte
Carlo trials with one per-trial RNG each, so trial ``i`` of the batched
path is bitwise-identical to a scalar :meth:`RetentionModel.apply` call
with the same generator — the equivalence contract every stage of the
nonideality stack (:mod:`repro.cim.devices.stack`) honors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["RetentionModel"]


def _norm_cdf(x):
    """Standard normal CDF via the error function (no SciPy needed)."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


@dataclass(frozen=True)
class RetentionModel:
    """Post-programming conductance drift.

    Attributes
    ----------
    nu:
        Mean drift exponent (PCM literature: ~0.005-0.1; 0 disables).
    sigma_nu:
        Device-to-device std of the drift exponent.
    relaxation_sigma:
        Std (fraction of full-scale) of the log-time random relaxation
        accrued per decade.
    t0:
        Reference time (seconds) at which programming precision holds.
    """

    nu: float = 0.02
    sigma_nu: float = 0.005
    relaxation_sigma: float = 0.005
    t0: float = 1.0

    def __post_init__(self):
        if self.nu < 0 or self.sigma_nu < 0 or self.relaxation_sigma < 0:
            raise ValueError("drift parameters must be >= 0")
        if self.t0 <= 0:
            raise ValueError("t0 must be > 0")

    @property
    def is_null(self):
        """True when this model never changes any level."""
        return self.nu == 0 and self.sigma_nu == 0 and self.relaxation_sigma == 0

    def apply(self, levels, t, rng, device_max_level=15):
        """Drift programmed ``levels`` to time ``t``.

        Parameters
        ----------
        levels:
            Programmed conductance levels (any shape, level units, >= 0
            entries drift multiplicatively; the array is not modified).
        t:
            Elapsed time in seconds (must be >= t0).
        rng:
            numpy Generator (per-device exponents and relaxation).
        device_max_level:
            Full-scale, for the relaxation term's units.

        Returns
        -------
        numpy.ndarray
            Drifted levels, same shape.
        """
        levels = np.asarray(levels, dtype=np.float64)
        if t < self.t0:
            raise ValueError(f"t={t} must be >= t0={self.t0}")
        ratio = t / self.t0
        if ratio == 1.0:
            return levels.copy()
        exponents = (
            rng.normal(self.nu, self.sigma_nu, size=levels.shape)
            if self.sigma_nu > 0
            else np.full(levels.shape, self.nu)
        )
        drifted = levels * np.power(ratio, -np.clip(exponents, 0.0, None))
        if self.relaxation_sigma > 0:
            decades = np.log10(ratio)
            drifted = drifted + rng.normal(
                0.0,
                self.relaxation_sigma * device_max_level * np.sqrt(decades),
                size=levels.shape,
            )
        return drifted

    def apply_trials(self, levels, t, trial_rngs, device_max_level=15):
        """Drift an ``(n_trials, ...)`` stack, one generator per trial.

        Trial ``i`` draws its exponents and relaxation exactly as a scalar
        :meth:`apply` call with ``trial_rngs[i]`` would, so batched and
        scalar Monte Carlo paths stay bitwise-equivalent.

        Returns
        -------
        numpy.ndarray
            Drifted stack, same shape as ``levels``.
        """
        levels = np.asarray(levels, dtype=np.float64)
        if levels.ndim < 1 or levels.shape[0] != len(trial_rngs):
            raise ValueError(
                f"need one rng per trial: {levels.shape} vs {len(trial_rngs)}"
            )
        return np.stack(
            [
                self.apply(levels[i], t, rng, device_max_level=device_max_level)
                for i, rng in enumerate(trial_rngs)
            ]
        )

    def decay_moments(self, t):
        """Exact first two moments of the multiplicative decay at ``t``.

        The per-device decay is ``D = (t/t0) ** (-max(nu_i, 0))`` with
        ``nu_i ~ N(nu, sigma_nu^2)`` — the clipped-Gaussian exponent model
        :meth:`apply` draws from.  Both moments are closed-form through the
        truncated-Gaussian moment generating function::

            E[exp(-s max(X, 0))] = Phi(-mu/s_x)
                + exp(-s mu + s^2 s_x^2 / 2) * Phi(mu/s_x - s s_x)

        with ``s = k * ln(t/t0)``, so the analytic variance map and the
        drift-compensation rescale agree with Monte Carlo draws exactly
        (not just to first order in ``nu``).

        Returns
        -------
        tuple
            ``(E[D], E[D^2])``; both are 1.0 at ``t == t0``.
        """
        if t < self.t0:
            raise ValueError(f"t={t} must be >= t0={self.t0}")
        a = math.log(t / self.t0)
        if a == 0.0 or (self.nu == 0.0 and self.sigma_nu == 0.0):
            return 1.0, 1.0
        if self.sigma_nu == 0.0:
            m1 = math.exp(-a * self.nu)
            return m1, m1 * m1

        def moment(k):
            s = k * a
            z0 = self.nu / self.sigma_nu
            return _norm_cdf(-z0) + math.exp(
                -s * self.nu + 0.5 * (s * self.sigma_nu) ** 2
            ) * _norm_cdf(z0 - s * self.sigma_nu)

        return moment(1), moment(2)

    def mean_decay(self, t):
        """Expected multiplicative decay ``E[D]`` at time ``t``.

        This is the factor a drift-compensated platform divides out at
        read time (global conductance rescale calibrated on reference
        cells); see :class:`~repro.cim.devices.stack.DriftCompensationStage`.
        """
        return self.decay_moments(t)[0]

    def relaxation_variance(self, t, device_max_level=15):
        """Variance (level units^2) of the log-time relaxation term at ``t``."""
        if t < self.t0:
            raise ValueError(f"t={t} must be >= t0={self.t0}")
        if self.relaxation_sigma == 0.0:
            return 0.0
        decades = math.log10(t / self.t0)
        return (self.relaxation_sigma * device_max_level) ** 2 * decades

    def mean_relative_shift(self, t):
        """Expected multiplicative conductance loss at time ``t``."""
        return 1.0 - (t / self.t0) ** (-self.nu)
