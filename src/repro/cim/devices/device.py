"""NVM device model: K-bit conductance levels with programming variation.

The paper's variation model (Sec. 4.1): a device programmed to desired
conductance ``g`` actually holds ``N(g, sigma^2)``, with ``sigma``
*independent of the programmed value* (the key empirical fact from
Feinberg et al. [2] that makes magnitude a poor sensitivity proxy).

Conventions
-----------
A K-bit device has integer levels ``0 .. 2^K - 1``.  ``sigma`` is expressed
as a fraction of the device's conductance full-scale, so the standard
deviation in level units is ``sigma * (2^K - 1)``.  With this convention
the paper's "typical sigma = 0.1" produces ~10% full-scale programming
error before write-verify and its "deviation < 3% after write-verify"
corresponds to the 0.06 full-scale verify tolerance — see
``repro.cim.write_verify``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DeviceConfig"]


@dataclass(frozen=True)
class DeviceConfig:
    """A K-bit NVM device with value-independent Gaussian write noise.

    Attributes
    ----------
    bits:
        Bits per device (K in the paper; K=4 in all its experiments).
    sigma:
        Programming noise std as a fraction of conductance full-scale.
    """

    bits: int = 4
    sigma: float = 0.1

    def __post_init__(self):
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")

    @property
    def levels(self):
        """Number of programmable levels, ``2^K``."""
        return 1 << self.bits

    @property
    def max_level(self):
        """Highest level value, ``2^K - 1`` (the conductance full-scale)."""
        return self.levels - 1

    @property
    def sigma_levels(self):
        """Programming noise std in level units."""
        return self.sigma * self.max_level

    def sample_write_noise(self, shape, rng):
        """Noise added by one programming pulse, in level units."""
        if self.sigma == 0:
            return np.zeros(shape)
        return rng.normal(0.0, self.sigma_levels, size=shape)

    def program(self, targets, rng):
        """One-shot (no verify) programming of target levels.

        Parameters
        ----------
        targets:
            Desired levels (float array, in ``[0, max_level]``).
        rng:
            numpy Generator or RngStream-compatible object.

        Returns
        -------
        numpy.ndarray
            Actual programmed levels (float; Eq. 15's Gaussian draw).
        """
        targets = np.asarray(targets, dtype=np.float64)
        return targets + self.sample_write_noise(targets.shape, rng)

    def with_sigma(self, sigma):
        """A copy of this config with a different noise level."""
        return DeviceConfig(bits=self.bits, sigma=float(sigma))
