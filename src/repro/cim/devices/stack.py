"""Composable, trial-batched nonideality stack.

Before this subsystem the repository's device physics lived in five silos
(programming noise, closed-form noise, retention, spatial correlation,
endurance) that only the benchmarks wired together.  The stack composes
them into one ordered pipeline the accelerator runs for every tensor:

- **write stages** run at programming time, in order (programming noise,
  then spatially correlated variation);
- **read stages** run at deployment/read time (retention drift to the
  requested read time);
- **observers** watch write-verify cycle accounting without touching any
  level (endurance wear).

RNG discipline
--------------
Write stages draw *sequentially* from the generator the caller passes —
exactly the contract :meth:`repro.cim.mapping.WeightMapper.program_levels`
always had — so the default stack is bitwise-identical to the historical
programming path, and per-trial generators keep batched and scalar Monte
Carlo runs bitwise-equivalent.  Read stages draw from a *named substream
per stage* (``stream.child(stage.name)``), so re-deploying the same trial
at the same read time always sees the same drift realization: the paired
design of the NWC sweeps extends to retention studies, and a device's
drift exponent stays fixed across observation times.

Trial batching: every stack method has a ``*_trials`` twin taking one
generator (or stream) per trial and returning the accelerator's
slice-major ``(num_slices, n_trials) + weight_shape`` layout, with trial
``i`` bitwise-equal to the scalar call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cim.devices.endurance import EnduranceObserver

__all__ = [
    "StageContext",
    "NonidealityStage",
    "ProgrammingNoiseStage",
    "SpatialCorrelationStage",
    "RetentionDriftStage",
    "NonidealityStack",
]


@dataclass(frozen=True)
class StageContext:
    """Mapping-derived geometry every stage needs.

    Attributes
    ----------
    slice_sigma_levels:
        Programming-noise std per bit slice, in that slice's level units.
    slice_max_levels:
        Conductance full-scale per bit slice (level units).
    differential:
        Whether each weight also programs a complementary-column device
        (doubling the programming-noise draws, as in
        :meth:`~repro.cim.mapping.WeightMapper.program_levels`).
    """

    slice_sigma_levels: np.ndarray
    slice_max_levels: np.ndarray
    differential: bool = False

    @classmethod
    def from_mapping(cls, mapping_config):
        """Build the context for one :class:`~repro.cim.mapping.MappingConfig`."""
        return cls(
            slice_sigma_levels=np.asarray(
                mapping_config.slice_sigma_levels(), dtype=np.float64
            ),
            slice_max_levels=np.asarray(
                mapping_config.slice_max_levels, dtype=np.float64
            ),
            differential=bool(mapping_config.differential),
        )


class NonidealityStage:
    """One ordered transformation of slice-major device levels.

    Subclasses set ``name`` (used for read-substream naming and display)
    and ``when`` (``"write"`` = applied at programming time, ``"read"`` =
    applied at deployment time), and implement :meth:`apply` on a
    ``(num_slices,) + weight_shape`` array for one trial.  Stages must be
    pure in their inputs apart from RNG draws: trial batching relies on
    per-trial generators reproducing the scalar draw order bitwise.
    """

    name = "stage"
    when = "write"

    def apply(self, levels, ctx, rng, t=None):
        """Transform one trial's slice-major levels; returns a new array."""
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}(name={self.name!r}, when={self.when!r})"


class ProgrammingNoiseStage(NonidealityStage):
    """I.i.d. Gaussian programming noise per device (paper Eq. 15).

    Reproduces :meth:`~repro.cim.mapping.WeightMapper.program_levels`
    draw-for-draw — one standard-normal array per tensor scaled by the
    per-slice sigma, plus a second subtracted draw in differential mode —
    so a default stack is bitwise-identical to the historical path.
    """

    name = "program-noise"
    when = "write"

    def apply(self, levels, ctx, rng, t=None):
        per_slice = ctx.slice_sigma_levels.reshape(
            (-1,) + (1,) * (levels.ndim - 1)
        )
        out = levels + rng.normal(0.0, 1.0, size=levels.shape) * per_slice
        if ctx.differential:
            out = out - rng.normal(0.0, 1.0, size=levels.shape) * per_slice
        return out


class SpatialCorrelationStage(NonidealityStage):
    """Adds a spatially correlated error field per bit slice.

    Wraps :class:`~repro.cim.devices.spatial.SpatialVariationModel`: each
    slice's devices are folded onto crossbar coordinates and receive one
    correlated field draw, scaled to the slice's own full-scale.
    """

    name = "spatial"
    when = "write"

    def __init__(self, model):
        self.model = model

    def apply(self, levels, ctx, rng, t=None):
        out = np.array(levels, dtype=np.float64)
        for i in range(out.shape[0]):
            field = self.model.sample_field(
                out[i].size, rng, device_max_level=ctx.slice_max_levels[i]
            )
            out[i] = out[i] + field.reshape(out[i].shape)
        return out


class RetentionDriftStage(NonidealityStage):
    """Drifts levels to the read time ``t`` at deployment.

    Wraps :class:`~repro.cim.devices.retention.RetentionModel`.  A read
    with ``t=None`` (or ``t == t0``) is the paper's read-after-write
    setting and leaves levels untouched.
    """

    name = "retention"
    when = "read"

    def __init__(self, model):
        self.model = model

    def apply(self, levels, ctx, rng, t=None):
        if t is None:
            return levels
        out = np.empty_like(np.asarray(levels, dtype=np.float64))
        for i in range(out.shape[0]):
            out[i] = self.model.apply(
                levels[i], t, rng, device_max_level=ctx.slice_max_levels[i]
            )
        return out


class NonidealityStack:
    """Ordered nonideality stages plus passive observers.

    Parameters
    ----------
    stages:
        :class:`NonidealityStage` instances; write stages run in the
        given order at programming time, read stages in the given order
        at read time.
    observers:
        Objects with ``reset()`` / ``observe(name, cycles)`` (e.g.
        :class:`~repro.cim.devices.endurance.EnduranceObserver`); fed the
        verify-cycle arrays of every write-verify session.
    """

    def __init__(self, stages=(), observers=()):
        self.stages = tuple(stages)
        self.observers = tuple(observers)
        for stage in self.stages:
            if stage.when not in ("write", "read"):
                raise ValueError(
                    f"stage {stage.name!r} has invalid when={stage.when!r}"
                )

    @classmethod
    def default(cls, endurance_model=None):
        """The paper's model: i.i.d. programming noise + wear accounting."""
        return cls(
            stages=(ProgrammingNoiseStage(),),
            observers=(EnduranceObserver(endurance_model),),
        )

    # ------------------------------------------------------------ structure

    @property
    def write_stages(self):
        """Stages applied at programming time, in order."""
        return tuple(s for s in self.stages if s.when == "write")

    @property
    def read_stages(self):
        """Stages applied at read/deployment time, in order."""
        return tuple(s for s in self.stages if s.when == "read")

    @property
    def has_read_stages(self):
        """True when deployment-time physics (e.g. drift) is modeled."""
        return bool(self.read_stages)

    def stage(self, name):
        """Look up one stage by name."""
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage named {name!r}; have {[s.name for s in self.stages]}")

    # ---------------------------------------------------------------- write

    def program(self, levels, ctx, rng):
        """Run all write stages on one trial's desired levels.

        ``rng`` is a numpy Generator; stages draw from it sequentially
        (the historical ``program_levels`` contract).
        """
        out = np.asarray(levels, dtype=np.float64)
        for stage in self.write_stages:
            out = stage.apply(out, ctx, rng)
        return out

    def program_trials(self, levels, ctx, trial_rngs):
        """Program a stack of trials: ``(num_slices, n_trials) + shape``.

        Trial ``i`` draws from ``trial_rngs[i]`` exactly as
        :meth:`program` would, so batched and scalar paths see
        bit-identical programmed levels.
        """
        return np.stack(
            [self.program(levels, ctx, rng) for rng in trial_rngs], axis=1
        )

    # ----------------------------------------------------------------- read

    def read(self, levels, ctx, stream, t=None):
        """Run all read stages on one trial's deployed levels.

        ``stream`` is an :class:`~repro.utils.rng.RngStream`; each stage
        draws from ``stream.child(stage.name)``, so identical (stream, t)
        pairs always produce identical drift realizations — re-deploying
        a trial at several NWC targets keeps the paired design.
        """
        if t is None or not self.read_stages:
            return levels
        out = levels
        for stage in self.read_stages:
            out = stage.apply(out, ctx, stream.child(stage.name).generator, t=t)
        return out

    def read_trials(self, levels, ctx, streams, t=None):
        """Read a slice-major trial stack through all read stages.

        ``levels`` is ``(num_slices, n_trials) + shape``; trial ``i``
        reads through ``streams[i]`` bitwise-equal to :meth:`read`.
        """
        if t is None or not self.read_stages:
            return levels
        return np.stack(
            [
                self.read(levels[:, i], ctx, stream, t=t)
                for i, stream in enumerate(streams)
            ],
            axis=1,
        )

    # ------------------------------------------------------------ observers

    def reset_observers(self):
        """Start a fresh wear-accounting session (called on programming)."""
        for observer in self.observers:
            observer.reset()

    def observe(self, name, cycles):
        """Report one tensor's verify-cycle array to every observer."""
        for observer in self.observers:
            observer.observe(name, cycles)

    def wear_summary(self, initial_writes=1):
        """The endurance observer's wear statistics (None when absent)."""
        for observer in self.observers:
            if isinstance(observer, EnduranceObserver):
                return observer.summary(initial_writes=initial_writes)
        return None

    def __repr__(self):
        names = ", ".join(f"{s.name}@{s.when}" for s in self.stages)
        return f"NonidealityStack([{names}], observers={len(self.observers)})"
