"""Composable, trial-batched nonideality stack.

Before this subsystem the repository's device physics lived in five silos
(programming noise, closed-form noise, retention, spatial correlation,
endurance) that only the benchmarks wired together.  The stack composes
them into one ordered pipeline the accelerator runs for every tensor:

- **write stages** run at programming time, in order (programming noise,
  then spatially correlated variation);
- **read stages** run at deployment/read time (retention drift to the
  requested read time);
- **observers** watch write-verify cycle accounting without touching any
  level (endurance wear).

RNG discipline
--------------
Write stages draw *sequentially* from the generator the caller passes —
exactly the contract :meth:`repro.cim.mapping.WeightMapper.program_levels`
always had — so the default stack is bitwise-identical to the historical
programming path, and per-trial generators keep batched and scalar Monte
Carlo runs bitwise-equivalent.  Read stages draw from a *named substream
per stage* (``stream.child(stage.name)``), so re-deploying the same trial
at the same read time always sees the same drift realization: the paired
design of the NWC sweeps extends to retention studies, and a device's
drift exponent stays fixed across observation times.

Trial batching: every stack method has a ``*_trials`` twin taking one
generator (or stream) per trial and returning the accelerator's
slice-major ``(num_slices, n_trials) + weight_shape`` layout, with trial
``i`` bitwise-equal to the scalar call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cim.devices.endurance import EnduranceObserver

__all__ = [
    "StageContext",
    "NonidealityStage",
    "ProgrammingNoiseStage",
    "SpatialCorrelationStage",
    "RetentionDriftStage",
    "DriftCompensationStage",
    "NonidealityStack",
]


@dataclass(frozen=True)
class StageContext:
    """Mapping-derived geometry every stage needs.

    Attributes
    ----------
    slice_sigma_levels:
        Programming-noise std per bit slice, in that slice's level units.
    slice_max_levels:
        Conductance full-scale per bit slice (level units).
    differential:
        Whether each weight also programs a complementary-column device
        (doubling the programming-noise draws, as in
        :meth:`~repro.cim.mapping.WeightMapper.program_levels`).
    """

    slice_sigma_levels: np.ndarray
    slice_max_levels: np.ndarray
    differential: bool = False

    @classmethod
    def from_mapping(cls, mapping_config):
        """Build the context for one :class:`~repro.cim.mapping.MappingConfig`."""
        return cls(
            slice_sigma_levels=np.asarray(
                mapping_config.slice_sigma_levels(), dtype=np.float64
            ),
            slice_max_levels=np.asarray(
                mapping_config.slice_max_levels, dtype=np.float64
            ),
            differential=bool(mapping_config.differential),
        )


class NonidealityStage:
    """One ordered transformation of slice-major device levels.

    Subclasses set ``name`` (used for read-substream naming and display)
    and ``when`` (``"write"`` = applied at programming time, ``"read"`` =
    applied at deployment time), and implement :meth:`apply` on a
    ``(num_slices,) + weight_shape`` array for one trial.  Stages must be
    pure in their inputs apart from RNG draws: trial batching relies on
    per-trial generators reproducing the scalar draw order bitwise.
    """

    name = "stage"
    when = "write"

    def apply(self, levels, ctx, rng, t=None):
        """Transform one trial's slice-major levels; returns a new array."""
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}(name={self.name!r}, when={self.when!r})"


class ProgrammingNoiseStage(NonidealityStage):
    """I.i.d. Gaussian programming noise per device (paper Eq. 15).

    Reproduces :meth:`~repro.cim.mapping.WeightMapper.program_levels`
    draw-for-draw — one standard-normal array per tensor scaled by the
    per-slice sigma, plus a second subtracted draw in differential mode —
    so a default stack is bitwise-identical to the historical path.
    """

    name = "program-noise"
    when = "write"

    def apply(self, levels, ctx, rng, t=None):
        per_slice = ctx.slice_sigma_levels.reshape(
            (-1,) + (1,) * (levels.ndim - 1)
        )
        out = levels + rng.normal(0.0, 1.0, size=levels.shape) * per_slice
        if ctx.differential:
            out = out - rng.normal(0.0, 1.0, size=levels.shape) * per_slice
        return out


class SpatialCorrelationStage(NonidealityStage):
    """Adds a spatially correlated error field per bit slice.

    Wraps :class:`~repro.cim.devices.spatial.SpatialVariationModel`: each
    slice's devices are folded onto crossbar coordinates and receive one
    correlated field draw, scaled to the slice's own full-scale.
    """

    name = "spatial"
    when = "write"

    def __init__(self, model):
        self.model = model

    def apply(self, levels, ctx, rng, t=None):
        out = np.array(levels, dtype=np.float64)
        for i in range(out.shape[0]):
            field = self.model.sample_field(
                out[i].size, rng, device_max_level=ctx.slice_max_levels[i]
            )
            out[i] = out[i] + field.reshape(out[i].shape)
        return out


class RetentionDriftStage(NonidealityStage):
    """Drifts levels to the read time ``t`` at deployment.

    Wraps :class:`~repro.cim.devices.retention.RetentionModel`.  A read
    with ``t=None`` (or ``t == t0``) is the paper's read-after-write
    setting and leaves levels untouched.
    """

    name = "retention"
    when = "read"

    def __init__(self, model):
        self.model = model

    def apply(self, levels, ctx, rng, t=None):
        if t is None:
            return levels
        out = np.empty_like(np.asarray(levels, dtype=np.float64))
        for i in range(out.shape[0]):
            out[i] = self.model.apply(
                levels[i], t, rng, device_max_level=ctx.slice_max_levels[i]
            )
        return out


class DriftCompensationStage(NonidealityStage):
    """Global conductance rescale cancelling the mean drift at read time.

    PCM platforms track the decay of reference cells and rescale the whole
    array's readout accordingly (time-aware sensing / global scaling).
    This stage models that: it runs *after* :class:`RetentionDriftStage`
    and divides every level by the drift model's exact mean decay
    ``E[(t/t0) ** (-max(nu, 0))]`` (see
    :meth:`~repro.cim.devices.retention.RetentionModel.decay_moments`).
    The deterministic part of the power-law decay cancels; the
    device-to-device exponent spread and the relaxation noise remain —
    compensation recovers the mean, not the variance.

    The stage draws nothing from its RNG substream, and at ``t == t0``
    (or ``t=None``) the factor is exactly 1 and the levels pass through
    untouched — a bitwise no-op at the read-after-write reference time.
    """

    name = "drift-compensation"
    when = "read"

    def __init__(self, model):
        self.model = model

    def apply(self, levels, ctx, rng, t=None):
        if t is None:
            return levels
        factor = self.model.mean_decay(t)
        if factor == 1.0:
            return levels
        return np.asarray(levels, dtype=np.float64) / factor


class NonidealityStack:
    """Ordered nonideality stages plus passive observers.

    Parameters
    ----------
    stages:
        :class:`NonidealityStage` instances; write stages run in the
        given order at programming time, read stages in the given order
        at read time.
    observers:
        Objects with ``reset()`` / ``observe(name, cycles)`` (e.g.
        :class:`~repro.cim.devices.endurance.EnduranceObserver`); fed the
        verify-cycle arrays of every write-verify session.
    """

    def __init__(self, stages=(), observers=()):
        self.stages = tuple(stages)
        self.observers = tuple(observers)
        for stage in self.stages:
            if stage.when not in ("write", "read"):
                raise ValueError(
                    f"stage {stage.name!r} has invalid when={stage.when!r}"
                )

    @classmethod
    def default(cls, endurance_model=None):
        """The paper's model: i.i.d. programming noise + wear accounting."""
        return cls(
            stages=(ProgrammingNoiseStage(),),
            observers=(EnduranceObserver(endurance_model),),
        )

    # ------------------------------------------------------------ structure

    @property
    def write_stages(self):
        """Stages applied at programming time, in order."""
        return tuple(s for s in self.stages if s.when == "write")

    @property
    def read_stages(self):
        """Stages applied at read/deployment time, in order."""
        return tuple(s for s in self.stages if s.when == "read")

    @property
    def has_read_stages(self):
        """True when deployment-time physics (e.g. drift) is modeled."""
        return bool(self.read_stages)

    def stage(self, name):
        """Look up one stage by name."""
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage named {name!r}; have {[s.name for s in self.stages]}")

    # ---------------------------------------------------------------- write

    def program(self, levels, ctx, rng):
        """Run all write stages on one trial's desired levels.

        ``rng`` is a numpy Generator; stages draw from it sequentially
        (the historical ``program_levels`` contract).
        """
        out = np.asarray(levels, dtype=np.float64)
        for stage in self.write_stages:
            out = stage.apply(out, ctx, rng)
        return out

    def program_trials(self, levels, ctx, trial_rngs):
        """Program a stack of trials: ``(num_slices, n_trials) + shape``.

        Trial ``i`` draws from ``trial_rngs[i]`` exactly as
        :meth:`program` would, so batched and scalar paths see
        bit-identical programmed levels.
        """
        return np.stack(
            [self.program(levels, ctx, rng) for rng in trial_rngs], axis=1
        )

    # ----------------------------------------------------------------- read

    def read(self, levels, ctx, stream, t=None):
        """Run all read stages on one trial's deployed levels.

        ``stream`` is an :class:`~repro.utils.rng.RngStream`; each stage
        draws from ``stream.child(stage.name)``, so identical (stream, t)
        pairs always produce identical drift realizations — re-deploying
        a trial at several NWC targets keeps the paired design.
        """
        if t is None or not self.read_stages:
            return levels
        out = levels
        for stage in self.read_stages:
            out = stage.apply(out, ctx, stream.child(stage.name).generator, t=t)
        return out

    def read_trials(self, levels, ctx, streams, t=None):
        """Read a slice-major trial stack through all read stages.

        ``levels`` is ``(num_slices, n_trials) + shape``; trial ``i``
        reads through ``streams[i]`` bitwise-equal to :meth:`read`.
        """
        if t is None or not self.read_stages:
            return levels
        return np.stack(
            [
                self.read(levels[:, i], ctx, stream, t=t)
                for i, stream in enumerate(streams)
            ],
            axis=1,
        )

    # ------------------------------------------------------- variance closure

    def resolve_wear_inflation(self, wear=None, wear_inflation=1.0):
        """Effective programming-noise variance multiplier.

        The manual ``wear_inflation`` knob always wins when set (any
        value other than the fresh-device 1.0).  Otherwise ``wear`` —
        the endurance observer's :meth:`wear_summary` dict, or a bare
        consumed fraction — is run through the endurance model's
        sigma-growth-vs-cycling curve
        (:meth:`~repro.cim.devices.endurance.EnduranceModel.
        wear_inflation`).  A summary dict may carry a ``deployments``
        entry to scale its per-deployment ``consumed_fraction`` to the
        lifetime point being planned for.  Without an endurance
        observer (or with ``wear=None``) devices are fresh: 1.0.
        """
        if wear is None or wear_inflation != 1.0:
            return float(wear_inflation)
        model = None
        for observer in self.observers:
            if isinstance(observer, EnduranceObserver):
                model = observer.model
                break
        if model is None:
            return 1.0
        if isinstance(wear, dict):
            consumed = wear.get("consumed_fraction")
            if consumed is None:
                consumed = model.consumed_fraction(
                    wear.get("mean_pulses_per_device", 0.0)
                )
            consumed = consumed * float(wear.get("deployments", 1))
        else:
            consumed = float(wear)
        return model.wear_inflation(consumed)

    def variance_map(self, mapping_config, read_time=None, shape=None,
                     space=None, model=None, levels=None, scale=1.0,
                     wear_inflation=1.0, wear=None):
        """Analytic per-weight perturbation variance ``E[dw_i^2]``, weight units.

        This closes the loop between the device physics and Eq. 5
        selection: instead of the constant per-tensor Eq. 16 variance,
        the stack composes what its own stages actually do to an
        *unverified* weight —

        - **write variance**: per-slice programming-noise sigma through
          the quantization scale and positional slice weights (doubled in
          differential mode), plus the marginal variance of any
          :class:`SpatialCorrelationStage` (correlation moves covariance,
          not the per-device marginal), optionally inflated by
          ``wear_inflation`` for aged cells;
        - **drift at the read time**: a :class:`RetentionDriftStage`
          multiplies the programmed level (signal and noise alike) by the
          random decay ``D``, whose exact clipped-Gaussian moments give
          the bias term ``(E[D]-1)^2 code^2``, the level-dependent spread
          ``Var(D) L_i^2``, and the ``E[D^2]`` shrink of the write noise,
          plus the log-time relaxation variance;
        - **compensation**: a :class:`DriftCompensationStage` divides all
          moments by the mean decay, cancelling the bias exactly.

        The result is the second moment of ``w_read - w_desired`` for a
        programmed-but-not-verified weight — the ``E[dw_i^2]`` that
        Eq. 5 pairs with the curvature diagonal — and matches
        :meth:`empirical_variance_map` draw-for-draw in distribution.

        Parameters
        ----------
        mapping_config:
            The :class:`~repro.cim.mapping.MappingConfig` in use.
        read_time:
            Seconds since programming (None = read-after-write: read
            stages do not apply, matching :meth:`read`).
        shape:
            Tensor mode: return an array of this weight shape.  Pass
            ``levels`` (slice-major desired levels) for the
            level-dependent drift terms and ``scale`` (dequantization
            scale) for weight units; without ``levels`` the map is the
            level-independent noise floor.
        space / model:
            Model mode: a :class:`~repro.core.selection.WeightSpace` plus
            the model itself; every mapped tensor is quantized to get its
            scale and desired levels, and the flat concatenated variance
            vector is returned.
        wear_inflation:
            Manual multiplier on the programming-noise variance modeling
            write-precision loss of worn cells (1.0 = fresh devices).
        wear:
            Derived alternative to the manual knob: the endurance
            observer's ``wear_summary()`` dict (or a bare consumed
            fraction), folded through the endurance model's
            sigma-growth curve by :meth:`resolve_wear_inflation`.  An
            explicit ``wear_inflation`` overrides it.

        Returns
        -------
        numpy.ndarray
            Weight-shaped array (tensor mode) or flat vector (model
            mode) of per-weight ``E[dw^2]`` in weight units.
        """
        wear_inflation = self.resolve_wear_inflation(wear, wear_inflation)
        if space is not None:
            if model is None:
                raise ValueError("variance_map(space=...) requires model=")
            from repro.cim.mapping import WeightMapper

            mapper = WeightMapper(mapping_config)
            params = dict(model.named_parameters())
            per_tensor = {}
            for name in space.names:
                mapped = mapper.map_tensor(params[name].data)
                per_tensor[name] = self._tensor_variance(
                    mapping_config, mapped.levels, mapped.scale,
                    read_time, wear_inflation,
                )
            return space.flatten(per_tensor)
        if levels is not None:
            levels = np.asarray(levels, dtype=np.float64)
            if shape is not None and tuple(shape) != levels.shape[1:]:
                raise ValueError(
                    f"shape {tuple(shape)} != levels weight shape "
                    f"{levels.shape[1:]}"
                )
            return self._tensor_variance(
                mapping_config, levels, scale, read_time, wear_inflation
            )
        if shape is None:
            raise ValueError("variance_map needs shape=, levels= or space=")
        return self._tensor_variance(
            mapping_config, None, scale, read_time, wear_inflation,
            shape=tuple(shape),
        )

    def _read_moment_state(self, read_time, pos, max_levels):
        """Fold the read stages into moment factors for one tensor.

        Tracks the moments of a programmed level ``g`` through the read
        pipeline as ``E[g] = mf * L`` and ``E[g^2] = A L^2 + B v_write +
        relax`` (``relax`` per slice in code units): drift multiplies
        ``(mf, A, B)`` by its decay moments and adds relaxation variance;
        compensation divides by the mean decay.
        """
        mf, second_l2, second_noise = 1.0, 1.0, 1.0
        relax = np.zeros(len(max_levels))
        if read_time is None:
            return mf, second_l2, second_noise, relax
        for stage in self.read_stages:
            if isinstance(stage, RetentionDriftStage):
                m1, m2 = stage.model.decay_moments(read_time)
                mf *= m1
                second_l2 *= m2
                second_noise *= m2
                relax = relax * m2 + pos ** 2 * np.array([
                    stage.model.relaxation_variance(read_time, lv)
                    for lv in max_levels
                ])
            elif isinstance(stage, DriftCompensationStage):
                c = stage.model.mean_decay(read_time)
                mf /= c
                second_l2 /= c ** 2
                second_noise /= c ** 2
                relax = relax / c ** 2
            else:
                raise NotImplementedError(
                    f"variance_map has no analytic model for read stage "
                    f"{stage!r}; use empirical_variance_map for custom "
                    "stacks"
                )
        return mf, second_l2, second_noise, relax

    def _tensor_variance(self, mapping_config, levels, scale, read_time,
                         wear_inflation, shape=None):
        """Per-weight ``E[dw^2]`` for one tensor (weight units).

        Only the built-in stage types have analytic models; a stack
        holding a custom :class:`NonidealityStage` subclass fails loudly
        rather than returning a map the deployment would not obey
        (:meth:`empirical_variance_map` works for any composition).
        """
        programming_stages = 0
        spatial_var = 0.0
        for stage in self.write_stages:
            if isinstance(stage, ProgrammingNoiseStage):
                programming_stages += 1
            elif isinstance(stage, SpatialCorrelationStage):
                spatial_var += float(stage.model.sigma) ** 2
            else:
                raise NotImplementedError(
                    f"variance_map has no analytic model for write stage "
                    f"{stage!r}; use empirical_variance_map for custom "
                    "stacks"
                )
        reads_apply = read_time is not None and self.has_read_stages
        if shape is None:
            shape = levels.shape[1:]
        if (programming_stages == 1 and spatial_var == 0.0
                and not reads_apply and wear_inflation == 1.0):
            # Pure homogeneous programming noise: reproduce the constant
            # Eq. 16 map bit-for-bit (the historical
            # ``variance_map_from_mapping`` arithmetic).
            std_w = mapping_config.code_noise_std() * scale
            return np.full(shape, std_w ** 2)

        pos = mapping_config.slice_weights.astype(np.float64)
        max_levels = mapping_config.slice_max_levels.astype(np.float64)
        sigmas = mapping_config.slice_sigma_levels()
        write_var = (
            (sigmas * pos) ** 2 * float(wear_inflation) * programming_stages
        )
        if mapping_config.differential:
            write_var = 2.0 * write_var
        write_var = write_var + spatial_var * (max_levels * pos) ** 2

        mf, second_l2, second_noise, relax = self._read_moment_state(
            read_time, pos, max_levels
        )
        noise_floor = float(np.sum(second_noise * write_var + relax))
        # Var(D) and bias factors; clamp float cancellation at ~0 so the
        # map is non-negative by construction.
        spread = max(second_l2 - mf ** 2, 0.0)
        bias = (mf - 1.0) ** 2
        if levels is None or (spread == 0.0 and bias == 0.0):
            var_code = np.full(shape, noise_floor)
        else:
            codes = np.tensordot(pos, levels, axes=(0, 0))
            level_sq = np.tensordot(pos ** 2, levels ** 2, axes=(0, 0))
            var_code = spread * level_sq + bias * codes ** 2 + noise_floor
        return var_code * float(scale) ** 2

    def empirical_variance_map(self, mapping_config, n_trials, rng,
                               read_time=None, space=None, model=None,
                               levels=None, scale=1.0):
        """Monte-Carlo estimate of :meth:`variance_map` (same modes).

        Programs every tensor ``n_trials`` times through the write
        stages (no verify), reads at ``read_time`` through the read
        stages, and returns the per-weight empirical second moment of the
        weight error.  The RNG discipline mirrors
        :class:`~repro.cim.accelerator.CimAccelerator`: trial ``i`` draws
        programming noise from ``rng.child("mc", i).child("program")``
        (one generator shared across tensors) and drift from the
        per-tensor substream ``.child("read", name)`` — so the estimate
        samples exactly the distribution the accelerator deploys.

        Parameters
        ----------
        mapping_config / read_time / space / model / levels / scale:
            As in :meth:`variance_map`.
        n_trials:
            Monte Carlo draws (the validation tests use >= 256).
        rng:
            Parent :class:`~repro.utils.rng.RngStream`.
        """
        streams = [rng.child("mc", i) for i in range(int(n_trials))]
        gens = [s.child("program").generator for s in streams]
        ctx = StageContext.from_mapping(mapping_config)
        pos = mapping_config.slice_weights.astype(np.float64)

        def estimate(name, desired_levels, signs, tensor_scale, ideal):
            programmed = self.program_trials(desired_levels, ctx, gens)
            if read_time is not None:
                children = [s.child("read", name) for s in streams]
                programmed = self.read_trials(
                    programmed, ctx, children, t=read_time
                )
            codes = np.tensordot(pos, programmed, axes=(0, 0))
            deployed = codes * signs * tensor_scale
            return ((deployed - ideal) ** 2).mean(axis=0)

        if space is not None:
            if model is None:
                raise ValueError("empirical_variance_map(space=...) requires model=")
            from repro.cim.mapping import WeightMapper

            mapper = WeightMapper(mapping_config)
            params = dict(model.named_parameters())
            per_tensor = {}
            for name in space.names:
                mapped = mapper.map_tensor(params[name].data)
                per_tensor[name] = estimate(
                    name, mapped.levels, mapped.signs, mapped.scale,
                    mapper.ideal_weights(mapped),
                )
            return space.flatten(per_tensor)
        if levels is None:
            raise ValueError("empirical_variance_map needs levels= or space=")
        levels = np.asarray(levels, dtype=np.float64)
        ideal = np.tensordot(pos, levels, axes=(0, 0)) * scale
        return estimate("tensor", levels, 1.0, float(scale), ideal)

    # ------------------------------------------------------------ observers

    def reset_observers(self):
        """Start a fresh wear-accounting session (called on programming)."""
        for observer in self.observers:
            observer.reset()

    def observe(self, name, cycles):
        """Report one tensor's verify-cycle array to every observer."""
        for observer in self.observers:
            observer.observe(name, cycles)

    def wear_summary(self, initial_writes=1):
        """The endurance observer's wear statistics (None when absent)."""
        for observer in self.observers:
            if isinstance(observer, EnduranceObserver):
                return observer.summary(initial_writes=initial_writes)
        return None

    def __repr__(self):
        names = ", ".join(f"{s.name}@{s.when}" for s in self.stages)
        return f"NonidealityStack([{names}], observers={len(self.observers)})"
