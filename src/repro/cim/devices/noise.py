"""Fast-path variation injection (closed-form Eq. 16) and residual models.

Two ways to obtain "weights as programmed" exist in this repository:

1. the honest device simulation in :mod:`repro.cim.accelerator`
   (program every device, run the verify loop, read back), and
2. the closed-form fast path here, which samples the *aggregate* weight
   error distribution directly: pre-write-verify errors from Eq. 16, and
   post-write-verify residuals from an empirical distribution measured
   once from the honest simulation.

The fast path exists for studies that perturb weights many times without
needing per-device state (e.g. the Fig. 1 sensitivity correlation study);
``tests/test_noise_consistency.py`` verifies the two paths agree
statistically.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "inject_code_noise",
    "inject_weight_noise",
    "ResidualModel",
]


def inject_code_noise(codes, config, rng, n_trials=None):
    """Eq. 16: add the closed-form mapped-code error to integer codes.

    Parameters
    ----------
    codes:
        Desired signed integer codes.
    config:
        :class:`~repro.cim.mapping.MappingConfig`.
    rng:
        numpy Generator.
    n_trials:
        When set, draw that many independent noise realizations in one
        call and return a stack with a leading ``(n_trials,)`` axis — the
        trial-batched fast path of :mod:`repro.core.mc`.

    Returns
    -------
    numpy.ndarray
        Float codes ``W_map`` (not rounded — conductance is analog),
        shape ``codes.shape`` or ``(n_trials,) + codes.shape``.
    """
    codes = np.asarray(codes, dtype=np.float64)
    shape = codes.shape if n_trials is None else (int(n_trials),) + codes.shape
    std = config.code_noise_std()
    if std == 0:
        return codes.copy() if n_trials is None else np.broadcast_to(codes, shape).copy()
    return codes + rng.normal(0.0, std, size=shape)


def inject_weight_noise(weights, config, rng, n_trials=None):
    """Quantize a float tensor and return its noisy mapped float values.

    Convenience wrapper: quantize to codes, add Eq. 16 noise, dequantize.
    The returned array has the same shape/dtype domain as ``weights``
    (with a leading trial axis when ``n_trials`` is set).
    """
    from repro.cim.mapping import WeightMapper  # local import avoids cycle

    mapper = WeightMapper(config)
    codes, scale = mapper.quantize(weights)
    noisy = inject_code_noise(codes, config, rng, n_trials=n_trials)
    return noisy * scale


class ResidualModel:
    """Empirical post-write-verify residual distribution (per device).

    Built by running the honest verify loop once on a sample of devices
    and storing the sorted residuals; sampling then draws by inverse-CDF
    interpolation, so the fast path reproduces the simulation's residual
    statistics (including the concentration near the tolerance boundary
    that a parametric Gaussian would miss).
    """

    def __init__(self, sorted_residuals_levels, mean_cycles):
        self._sorted = np.asarray(sorted_residuals_levels, dtype=np.float64)
        if self._sorted.size < 2:
            raise ValueError("need at least two residual samples")
        self.mean_cycles = float(mean_cycles)

    @classmethod
    def from_simulation(cls, device, wv_config=None, n_devices=8192, seed=2024):
        """Measure residuals by simulating the verify loop once."""
        from repro.cim.write_verify import WriteVerifyConfig, write_verify

        wv_config = wv_config if wv_config is not None else WriteVerifyConfig()
        rng = np.random.default_rng(seed)
        targets = rng.uniform(0, device.max_level, size=n_devices)
        initial = device.program(targets, rng)
        result = write_verify(targets, initial, device, wv_config, rng)
        residuals = np.sort(result.levels - targets)
        return cls(residuals, result.cycles.mean())

    def sample_levels(self, shape, rng):
        """Sample per-device residuals in level units."""
        u = rng.uniform(0.0, 1.0, size=shape)
        positions = u * (self._sorted.size - 1)
        lo = np.floor(positions).astype(np.int64)
        hi = np.minimum(lo + 1, self._sorted.size - 1)
        frac = positions - lo
        return (1 - frac) * self._sorted[lo] + frac * self._sorted[hi]

    def residual_std_levels(self):
        """Std of the stored residual distribution (level units)."""
        return float(self._sorted.std())

    def apply_to_codes(self, codes, config, rng, n_trials=None):
        """Sample post-verify residuals for every slice of every weight.

        Returns float codes: the desired code plus the bit-slice-weighted
        sum of per-device residuals (the verified analogue of Eq. 16).
        With ``n_trials`` set, the result carries a leading trial axis of
        independent residual draws.
        """
        codes = np.asarray(codes, dtype=np.float64)
        shape = codes.shape if n_trials is None else (int(n_trials),) + codes.shape
        slice_weights = config.slice_weights.astype(np.float64)
        total = codes.copy() if n_trials is None else np.broadcast_to(codes, shape).copy()
        for weight in slice_weights:
            total = total + weight * self.sample_levels(shape, rng)
        return total
