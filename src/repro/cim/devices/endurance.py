"""Device endurance: write-verify consumes program/erase cycles.

NVM cells endure a finite number of programming pulses (RRAM: ~1e6-1e12
depending on technology).  Full write-verify spends ~10 pulses per device
at every deployment; SWIM's selective scheme concentrates pulses on the
sensitive weights and leaves the rest at one (parallel, verify-free)
write.  This module turns per-device cycle counts into wear statistics so
the endurance benefit — a side effect of the paper's speedup — can be
quantified.

:class:`EnduranceObserver` is the stack-facing half: it rides along the
nonideality stack (:mod:`repro.cim.devices.stack`) as a passive observer,
accumulating the cycle arrays each write-verify session produces so the
accelerator can report wear without the physics stages knowing about it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EnduranceModel", "EnduranceObserver", "WearReport"]


@dataclass
class WearReport:
    """Aggregate wear of one programming session.

    Attributes
    ----------
    total_pulses:
        All programming pulses issued (including the initial parallel
        write of every device).
    max_pulses_per_device:
        The most-stressed device's pulse count.
    mean_pulses_per_device:
        Average pulses per device.
    deployments_to_failure:
        How many identical deployments the *most-stressed* device
        survives under the endurance budget.
    """

    total_pulses: int
    max_pulses_per_device: int
    mean_pulses_per_device: float
    deployments_to_failure: float


@dataclass(frozen=True)
class EnduranceModel:
    """Pulse budget and write-precision aging of the device technology.

    Attributes
    ----------
    endurance_cycles:
        Program/erase cycles a device survives (default 1e6: conservative
        multi-level RRAM).
    sigma_growth:
        Fractional programming-noise sigma increase of a cell that has
        consumed its whole endurance budget (0 = write precision does
        not age, the historical behavior).  Cycling degrades NVM write
        precision well before hard failure — filament instability in
        RRAM, ferroelectric fatigue in FeFET — and this is the
        first-order knob for it.
    growth_exponent:
        Shape of the sigma-growth-vs-cycling curve: sigma grows with
        ``consumed_fraction ** growth_exponent`` (1 = linear; < 1 =
        early-life degradation front-loaded).
    """

    endurance_cycles: float = 1e6
    sigma_growth: float = 0.0
    growth_exponent: float = 1.0

    def __post_init__(self):
        if self.endurance_cycles <= 0:
            raise ValueError("endurance_cycles must be > 0")
        if self.sigma_growth < 0:
            raise ValueError("sigma_growth must be >= 0")
        if self.growth_exponent <= 0:
            raise ValueError("growth_exponent must be > 0")

    def consumed_fraction(self, pulses):
        """Fraction of the endurance budget spent by ``pulses`` writes."""
        return float(np.clip(pulses / self.endurance_cycles, 0.0, 1.0))

    def wear_inflation(self, consumed_fraction):
        """Programming-noise *variance* multiplier after cycling.

        The sigma of a cell that has consumed fraction ``f`` of its
        budget is ``sigma * (1 + sigma_growth * f ** growth_exponent)``,
        so the variance — what Eq. 5 selection pairs with the curvature
        — inflates by the square.  Fresh devices (``f = 0``) and
        non-aging models (``sigma_growth = 0``) return exactly 1.0.
        """
        fraction = float(np.clip(consumed_fraction, 0.0, 1.0))
        return float(
            (1.0 + self.sigma_growth * fraction ** self.growth_exponent) ** 2
        )

    def wear_report(self, verify_cycles, initial_writes=1):
        """Wear statistics for one deployment.

        Parameters
        ----------
        verify_cycles:
            Per-device correction-pulse counts (any shape), e.g. a
            :class:`~repro.cim.write_verify.WriteVerifyResult` ``cycles``
            array, or zeros for unverified devices.
        initial_writes:
            Pulses of the initial parallel programming pass (1 for every
            device, regardless of selection).

        Returns
        -------
        WearReport
        """
        cycles = np.asarray(verify_cycles, dtype=np.int64)
        per_device = cycles + int(initial_writes)
        worst = int(per_device.max()) if per_device.size else initial_writes
        return WearReport(
            total_pulses=int(per_device.sum()),
            max_pulses_per_device=worst,
            mean_pulses_per_device=float(per_device.mean())
            if per_device.size
            else float(initial_writes),
            deployments_to_failure=self.endurance_cycles / max(worst, 1),
        )

    def compare_selection(self, cycles, selection_mask):
        """Wear of selective vs full write-verify on the same cycle draw.

        Parameters
        ----------
        cycles:
            Per-device verify cycles a full write-verify would spend.
        selection_mask:
            Boolean array: devices whose weights are selected for verify.

        Returns
        -------
        dict
            ``{"full": WearReport, "selective": WearReport,
            "lifetime_gain": float}`` — the lifetime multiplier is in
            expected re-deployments of the *average* device.
        """
        cycles = np.asarray(cycles, dtype=np.int64)
        mask = np.asarray(selection_mask, dtype=bool)
        if mask.shape != cycles.shape:
            raise ValueError("selection mask must match cycles shape")
        full = self.wear_report(cycles)
        selective = self.wear_report(np.where(mask, cycles, 0))
        gain = (
            full.mean_pulses_per_device / selective.mean_pulses_per_device
            if selective.mean_pulses_per_device > 0
            else float("inf")
        )
        return {"full": full, "selective": selective, "lifetime_gain": gain}


class EnduranceObserver:
    """Accumulates verify-cycle arrays as a nonideality-stack observer.

    The observer is passive: every write-verify session reports its
    per-device cycle arrays through :meth:`observe`; re-programming
    starts a new session (:meth:`reset`), which folds the previous one
    into running aggregates instead of discarding it.  :meth:`summary`
    therefore covers *every device-trial observed since construction* —
    a Monte Carlo sweep's trials are independent realizations of one
    deployment, so the mean and maximum over all of them are the right
    per-deployment wear statistics regardless of how the trials were
    blocked.  Trial-batched sessions simply report
    ``(num_slices, n_trials, ...)`` stacks; each stacked device counts
    once.
    """

    def __init__(self, model=None):
        self.model = model if model is not None else EnduranceModel()
        self._cycles = {}
        self._agg_devices = 0
        self._agg_cycles = 0
        self._agg_max = 0

    def reset(self):
        """Start a new session, folding the previous one into aggregates."""
        for cycles in self._cycles.values():
            flat = cycles.reshape(-1)
            if flat.size:
                self._agg_devices += flat.size
                self._agg_cycles += int(flat.sum())
                self._agg_max = max(self._agg_max, int(flat.max()))
        self._cycles = {}

    def observe(self, name, cycles):
        """Record one tensor's verify-cycle array for this session."""
        self._cycles[name] = np.asarray(cycles, dtype=np.int64)

    @property
    def has_data(self):
        """True once at least one write-verify session was observed."""
        return bool(self._cycles) or self._agg_devices > 0

    def summary(self, initial_writes=1):
        """Wear statistics over every device-trial observed so far.

        Returns
        -------
        dict
            ``{"endurance_cycles", "total_pulses",
            "mean_pulses_per_device", "max_pulses_per_device",
            "deployments_to_failure", "consumed_fraction"}`` or ``None``
            before any session.  ``consumed_fraction`` is the average
            device's endurance budget spent *per deployment*; scale it
            by the expected deployment count before feeding it to
            :meth:`EnduranceModel.wear_inflation` (which is what
            ``variance_map(wear=summary)`` does via the summary's own
            fields).
        """
        devices = self._agg_devices
        total_cycles = self._agg_cycles
        worst_cycles = self._agg_max
        for cycles in self._cycles.values():
            flat = cycles.reshape(-1)
            if flat.size:
                devices += flat.size
                total_cycles += int(flat.sum())
                worst_cycles = max(worst_cycles, int(flat.max()))
        if devices == 0:
            return None
        worst = worst_cycles + int(initial_writes)
        mean_pulses = total_cycles / devices + int(initial_writes)
        return {
            "endurance_cycles": self.model.endurance_cycles,
            "total_pulses": total_cycles + devices * int(initial_writes),
            "mean_pulses_per_device": mean_pulses,
            "max_pulses_per_device": worst,
            "deployments_to_failure": self.model.endurance_cycles / max(worst, 1),
            "consumed_fraction": self.model.consumed_fraction(mean_pulses),
            # Raw integer aggregates: what the derived statistics are
            # computed from.  Summaries over disjoint trial subsets
            # (work-rectangle tiles) merge exactly through these —
            # sum devices/verify_cycles, max max_verify_cycles — and
            # re-derive the floats above bit for bit
            # (:func:`repro.robustness.checkpoint.merge_wear`).
            "devices": devices,
            "verify_cycles": total_cycles,
            "max_verify_cycles": worst_cycles,
            "initial_writes": int(initial_writes),
        }
