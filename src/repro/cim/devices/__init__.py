"""Device nonidealities: composable stack + technology registry.

This subsystem unifies the repository's device physics — programming
noise, spatially correlated variation, retention drift, endurance wear —
behind two concepts:

- :class:`NonidealityStack`: ordered, trial-batched stages (write-time
  programming noise and spatial correlation, read-time retention drift)
  plus passive observers (endurance accounting);
- :class:`DeviceTechnology` and the registry
  (:func:`get_technology` / :func:`register_technology`): named profiles
  (``fefet`` — the paper's default — plus ``rram``, ``pcm``, ``mram``)
  with technology-specific sigma/drift/endurance parameters.

Every stage supports a leading ``(n_trials, ...)`` axis with per-trial
RNG substreams, so the batched Monte Carlo engine and the scalar
reference path stay bitwise-equivalent.
"""

from repro.cim.devices.device import DeviceConfig
from repro.cim.devices.endurance import EnduranceModel, EnduranceObserver, WearReport
from repro.cim.devices.noise import (
    ResidualModel,
    inject_code_noise,
    inject_weight_noise,
)
from repro.cim.devices.registry import (
    DEFAULT_TECHNOLOGY,
    DeviceTechnology,
    get_technology,
    register_technology,
    resolve_technology,
    technology_names,
)
from repro.cim.devices.retention import RetentionModel
from repro.cim.devices.spatial import SpatialVariationModel
from repro.cim.devices.stack import (
    DriftCompensationStage,
    NonidealityStack,
    NonidealityStage,
    ProgrammingNoiseStage,
    RetentionDriftStage,
    SpatialCorrelationStage,
    StageContext,
)

__all__ = [
    "DEFAULT_TECHNOLOGY",
    "DeviceConfig",
    "DeviceTechnology",
    "DriftCompensationStage",
    "EnduranceModel",
    "EnduranceObserver",
    "NonidealityStack",
    "NonidealityStage",
    "ProgrammingNoiseStage",
    "ResidualModel",
    "RetentionDriftStage",
    "RetentionModel",
    "SpatialCorrelationStage",
    "SpatialVariationModel",
    "StageContext",
    "WearReport",
    "get_technology",
    "inject_code_noise",
    "inject_weight_noise",
    "register_technology",
    "resolve_technology",
    "technology_names",
]
