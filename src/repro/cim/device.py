"""Deprecated shim: moved to :mod:`repro.cim.devices.device`.

The five nonideality silos (``device``, ``noise``, ``retention``,
``spatial``, ``endurance``) were unified into the composable
:mod:`repro.cim.devices` subsystem.  Import from :mod:`repro.cim` or
:mod:`repro.cim.devices` instead; this module re-exports the old names
so existing imports keep working.
"""

from __future__ import annotations

import warnings

from repro.cim.devices.device import DeviceConfig

__all__ = ["DeviceConfig"]

warnings.warn(
    "repro.cim.device is deprecated; import DeviceConfig from repro.cim "
    "or repro.cim.devices instead",
    DeprecationWarning,
    stacklevel=2,
)
