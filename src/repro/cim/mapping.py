"""Bit-sliced mapping of quantized weights onto K-bit devices (Eqs. 14-16).

An M-bit weight magnitude ``W_des = sum_i m_i 2^i`` (Eq. 14) is split into
``ceil(M/K)`` K-bit slices, each programmed onto one device (Eq. 15).  The
programmed weight then deviates from the desired value by a zero-mean
Gaussian whose variance is the bit-slice-weighted sum of the per-device
variances (Eq. 16)::

    W_map = W_des + N(0, sigma_lv^2 * sum_i 4^(i*K))

with ``sigma_lv`` the device noise in level units.  Negative weights map
"in a similar manner" (paper Sec. 4.1): the sign is carried by the
differential crossbar column pair, so the magnitude slices are programmed
identically; an optional ``differential`` mode also models the noise of
the complementary column's devices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cim.devices.device import DeviceConfig
from repro.nn.quant import quantize_symmetric

__all__ = ["MappingConfig", "WeightMapper", "MappedTensor"]


@dataclass(frozen=True)
class MappingConfig:
    """How weights are quantized and sliced onto devices.

    Attributes
    ----------
    weight_bits:
        Magnitude bits M of the quantized weight (Eq. 14).
    device:
        The :class:`DeviceConfig` (bits per device K, noise sigma).
    differential:
        When True, each weight uses a positive *and* a negative column
        device pair (2x devices, hence 2x noise variance); when False the
        sign is ideal and only magnitude devices contribute noise — the
        literal Eq. 16 setting.
    """

    weight_bits: int = 4
    device: DeviceConfig = DeviceConfig()
    differential: bool = False

    def __post_init__(self):
        if self.weight_bits < 1:
            raise ValueError("weight_bits must be >= 1")

    @property
    def num_slices(self):
        """Devices per weight magnitude, ``ceil(M / K)``."""
        return -(-self.weight_bits // self.device.bits)

    @property
    def slice_bits(self):
        """Bits stored by each slice, LSB first.

        When M is not a multiple of K the *top* slice is a narrower cell
        holding only the remaining bits (e.g. 6-bit weights on 4-bit
        devices use a 4-bit cell plus a 2-bit cell).  Using a full K-bit
        cell there would amplify its programming noise by the slice's
        positional weight without storing more information.
        """
        k = self.device.bits
        remaining = self.weight_bits
        bits = []
        while remaining > 0:
            bits.append(min(k, remaining))
            remaining -= k
        return bits

    @property
    def slice_weights(self):
        """Positional weight ``2^(i*K)`` of each slice, LSB first."""
        k = self.device.bits
        return np.array([1 << (i * k) for i in range(self.num_slices)], dtype=np.int64)

    @property
    def slice_max_levels(self):
        """Conductance full-scale of each slice's cell, ``2^bits_i - 1``."""
        return np.array([(1 << b) - 1 for b in self.slice_bits], dtype=np.int64)

    @property
    def qmax(self):
        """Largest representable magnitude code, ``2^M - 1``."""
        return (1 << self.weight_bits) - 1

    def slice_sigma_levels(self, sigma_fs=None):
        """Per-slice programming-noise std in level units.

        ``sigma`` is a fraction of each cell's own full-scale, so narrower
        top slices carry proportionally less absolute noise.
        """
        sigma = self.device.sigma if sigma_fs is None else float(sigma_fs)
        return sigma * self.slice_max_levels.astype(np.float64)

    def code_noise_std(self, sigma_fs=None):
        """Eq. 16: std of the mapped integer code around the desired code.

        Parameters
        ----------
        sigma_fs:
            Per-device noise std (fraction of device full-scale) to use
            instead of the config's value — e.g. the smaller noise of an
            incremental update pulse.
        """
        sigmas = self.slice_sigma_levels(sigma_fs)
        weights = self.slice_weights.astype(np.float64)
        variance = float(np.sum((sigmas * weights) ** 2))
        if self.differential:
            variance *= 2.0
        return np.sqrt(variance)

    def slice_tolerance_levels(self, tolerance):
        """Per-slice verify tolerance in each cell's own level units.

        Each cell is verified to the same *relative* tolerance (the
        per-cell criterion of Shim et al. [8], the paper's calibration
        source).  Because the slice full-scales telescope —
        ``sum_i (2^bits_i - 1) * 2^(iK) = 2^M - 1`` — the worst-case
        *weight code* error is then exactly ``tolerance * qmax``, so
        "write-verify everything" bounds the weight error by the paper's
        0.06 full-scale figure for any M/K split.
        """
        return float(tolerance) * self.slice_max_levels.astype(np.float64)

    def relative_noise_std(self):
        """Mapped-weight noise std as a fraction of the weight full-scale."""
        return self.code_noise_std() / self.qmax


@dataclass
class MappedTensor:
    """A weight tensor quantized and sliced onto devices.

    Attributes
    ----------
    codes:
        Signed integer codes, shape = weight shape.
    scale:
        Dequantization scale: ``weight ~= code * scale``.
    levels:
        Desired device levels, shape ``(num_slices,) + weight shape``
        (LSB slice first).
    signs:
        ``+1/-1/0`` per weight (sign carried by the column pair).
    """

    codes: np.ndarray
    scale: float
    levels: np.ndarray
    signs: np.ndarray

    @property
    def num_slices(self):
        """Devices per weight magnitude."""
        return self.levels.shape[0]


class WeightMapper:
    """Quantize + slice float weight tensors; reassemble noisy readouts."""

    def __init__(self, config=None):
        self.config = config if config is not None else MappingConfig()

    # ------------------------------------------------------------- mapping

    def quantize(self, weights):
        """Symmetric per-tensor quantization to M magnitude bits + sign."""
        codes, scale = quantize_symmetric(weights, self.config.weight_bits)
        return codes, scale

    def slice_codes(self, codes):
        """Split magnitude codes into per-device levels (Eq. 14).

        Returns ``(levels, signs)`` with ``levels[i]`` the i-th (LSB-first)
        slice of ``|codes|`` (K bits each, except a possibly narrower top
        slice — see :attr:`MappingConfig.slice_bits`).
        """
        codes = np.asarray(codes, dtype=np.int64)
        magnitude = np.abs(codes)
        if magnitude.max(initial=0) > self.config.qmax:
            raise ValueError("codes exceed the representable magnitude")
        # Zero-valued weights live on the positive column: they keep sign +1
        # so their devices' programming noise still reaches the weight.
        signs = np.where(codes < 0, -1, 1).astype(np.int64)
        k = self.config.device.bits
        levels = np.stack(
            [
                (magnitude >> (i * k)) & ((1 << bits) - 1)
                for i, bits in enumerate(self.config.slice_bits)
            ]
        ).astype(np.float64)
        return levels, signs

    def assemble_codes(self, levels, signs):
        """Inverse of :func:`slice_codes` for (possibly noisy) levels.

        Noisy levels are *not* rounded: the analog conductance contributes
        proportionally to the matrix-vector product, so the readout code is
        the positionally weighted sum of raw conductances.
        """
        weights = self.config.slice_weights.astype(np.float64)
        magnitude = np.tensordot(weights, np.asarray(levels, dtype=np.float64), axes=(0, 0))
        return magnitude * signs

    def map_tensor(self, weights):
        """Quantize and slice a float tensor; returns a :class:`MappedTensor`."""
        codes, scale = self.quantize(weights)
        levels, signs = self.slice_codes(codes)
        return MappedTensor(codes=codes, scale=scale, levels=levels, signs=signs)

    # ------------------------------------------------------ noisy programming

    def program_levels(self, mapped, rng):
        """One-shot (no verify) programming of all devices (Eq. 15).

        Returns the programmed level array, same shape as ``mapped.levels``.
        Noise per slice scales with that slice's cell range (a narrower
        top cell has proportionally less absolute noise).  In differential
        mode the complementary column adds an independent noise draw (its
        desired level is 0, and its noise subtracts).
        """
        sigmas = self.config.slice_sigma_levels()
        shape = mapped.levels.shape
        per_slice = sigmas.reshape((-1,) + (1,) * (len(shape) - 1))
        programmed = mapped.levels + rng.normal(0.0, 1.0, size=shape) * per_slice
        if self.config.differential:
            programmed = programmed - rng.normal(0.0, 1.0, size=shape) * per_slice
        return programmed

    def readout_weights(self, mapped, programmed_levels):
        """Float weights corresponding to programmed device levels."""
        codes = self.assemble_codes(programmed_levels, mapped.signs)
        return (codes * mapped.scale).astype(np.float64)

    def ideal_weights(self, mapped):
        """Float weights with ideal (noise-free) programming."""
        return (mapped.codes * mapped.scale).astype(np.float64)
