"""Deprecated shim: moved to :mod:`repro.cim.devices.noise`.

Import :func:`inject_code_noise` / :func:`inject_weight_noise` /
:class:`ResidualModel` from :mod:`repro.cim` or
:mod:`repro.cim.devices` instead; this module re-exports the old names
so existing imports keep working.
"""

from __future__ import annotations

import warnings

from repro.cim.devices.noise import (
    ResidualModel,
    inject_code_noise,
    inject_weight_noise,
)

__all__ = ["inject_code_noise", "inject_weight_noise", "ResidualModel"]

warnings.warn(
    "repro.cim.noise is deprecated; import from repro.cim or "
    "repro.cim.devices instead",
    DeprecationWarning,
    stacklevel=2,
)
