"""CiM accelerator simulation: device state per weight, programming, verify.

:class:`CimAccelerator` owns the device-level state for every weighted
layer of a model (conv and linear weights — biases and batch-norm
parameters stay in digital peripherals, as in the reference architectures
the paper builds on).  It supports the full experiment protocol:

1. ``map_model()``      — quantize + bit-slice all weights (Eq. 14);
2. ``program(rng)``     — initial parallel programming of all devices
   (Eq. 15; free in write-cycle accounting);
3. ``write_verify_all(rng)`` — simulate the verify loop on every device
   and record per-weight correction-cycle counts;
4. ``apply_selection(masks)`` — deploy verified values for the selected
   weights and raw programmed values for the rest, and report the
   normalized write cycles (NWC) actually spent.

Step 3+4 make the NWC normalization *self-consistent per Monte Carlo run*:
the denominator is the cycle count this very run would have needed to
write-verify everything, exactly the paper's normalization.

Trial batching
--------------
The ``*_trials`` methods run the same protocol for ``n_trials``
independent Monte Carlo draws at once: device state is stacked as
``(num_slices, n_trials) + weight_shape`` per tensor, the verify loop
advances all trials through one masked pulse loop, and
``apply_selection_trials`` deploys trial-batched weight overrides (see
:mod:`repro.nn.layers.base`) plus a per-trial NWC vector.  Programming
uses one RNG substream per trial, so trial ``i``'s initial conductances
are bit-identical to what the scalar path draws for run ``i``.

Nonideality stack
-----------------
All device physics flows through a
:class:`~repro.cim.devices.NonidealityStack`: write stages (programming
noise, optionally spatial correlation) run inside ``program`` /
``program_trials``; read stages (retention drift) run inside
``apply_selection*`` when a ``read_time`` is requested; write-verify
cycle counts feed the stack's endurance observer (``wear_summary()``).
Pass ``technology="pcm"`` (or any registered
:class:`~repro.cim.devices.DeviceTechnology`) to derive mapping + stack
from one named profile; the default stack reproduces the paper's i.i.d.
Gaussian model bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.cim.devices import NonidealityStack, StageContext, resolve_technology
from repro.cim.mapping import MappingConfig, WeightMapper
from repro.cim.write_verify import (
    WriteVerifyConfig,
    WriteVerifyResult,
    write_verify,
    write_verify_trials,
)
from repro.nn.layers.base import WeightedLayer

__all__ = ["CimAccelerator", "weighted_layer_names"]


def weighted_layer_names(model):
    """Names of all mapped weight tensors, in traversal order."""
    names = []
    for mod_name, module in model.named_modules():
        if isinstance(module, WeightedLayer):
            prefix = f"{mod_name}." if mod_name else ""
            names.append(f"{prefix}weight")
    return names


class CimAccelerator:
    """Simulated nvCiM platform hosting one model's weights."""

    def __init__(self, model, mapping_config=None, wv_config=None, stack=None,
                 technology=None):
        self.model = model
        self.technology = None
        if technology is not None:
            self.technology = resolve_technology(technology)
            if mapping_config is None:
                mapping_config = self.technology.mapping_config()
            if stack is None:
                stack = self.technology.build_stack()
        self.mapping_config = (
            mapping_config if mapping_config is not None else MappingConfig()
        )
        self.wv_config = wv_config if wv_config is not None else WriteVerifyConfig()
        self.stack = stack if stack is not None else NonidealityStack.default()
        self._stage_ctx = StageContext.from_mapping(self.mapping_config)
        self.mapper = WeightMapper(self.mapping_config)
        self._layers = {}
        for mod_name, module in model.named_modules():
            if isinstance(module, WeightedLayer):
                prefix = f"{mod_name}." if mod_name else ""
                self._layers[f"{prefix}weight"] = module
        if not self._layers:
            raise ValueError("model has no weighted layers to map")
        self._mapped = None
        self._programmed = None
        self._verified = None
        self._programmed_trials = None
        self._verified_trials = None
        self._n_trials = None
        self._drift_cache = None

    # -------------------------------------------------------------- mapping

    @property
    def weight_names(self):
        """Mapped tensor names in deterministic order."""
        return list(self._layers)

    def map_model(self):
        """Quantize and bit-slice every weight tensor (idempotent)."""
        if self._mapped is None:
            self._mapped = {
                name: self.mapper.map_tensor(layer.weight.data)
                for name, layer in self._layers.items()
            }
        return self._mapped

    def num_weights(self):
        """Total number of mapped weights."""
        self.map_model()
        return int(sum(m.codes.size for m in self._mapped.values()))

    def ideal_weights(self):
        """Quantized (but noise-free) weight values per tensor."""
        self.map_model()
        return {
            name: self.mapper.ideal_weights(mapped)
            for name, mapped in self._mapped.items()
        }

    def variance_map(self, read_time=None, wear_inflation=1.0, wear=None):
        """Per-weight unverified-deployment variance from this stack.

        The analytic ``E[dw_i^2]`` of
        :meth:`~repro.cim.devices.NonidealityStack.variance_map` for
        every mapped tensor of this accelerator (write variance through
        the actual quantization scales, drift at ``read_time``,
        compensation if staged), as a ``name -> weight-shaped array``
        dict — the physics side of Eq. 5 selection.  ``wear=True``
        feeds this accelerator's own :meth:`wear_summary` through the
        endurance model's sigma-growth curve (a dict or consumed
        fraction is passed straight through; the manual
        ``wear_inflation`` knob overrides either).
        """
        self.map_model()
        if wear is True:
            wear = self.wear_summary()
        return {
            name: self.stack.variance_map(
                self.mapping_config,
                read_time=read_time,
                levels=mapped.levels,
                scale=mapped.scale,
                wear_inflation=wear_inflation,
                wear=wear,
            )
            for name, mapped in self._mapped.items()
        }

    # ---------------------------------------------------------- programming

    def program(self, rng):
        """Initial parallel programming of all devices (no verify).

        Runs the stack's write stages (programming noise, then any
        correlated-variation stage) on every tensor; the default stack is
        draw-for-draw identical to the historical
        ``WeightMapper.program_levels`` path.  Invalidates any previous
        verify results and resets the wear observers (new run).
        """
        self.map_model()
        self.stack.reset_observers()
        self._drift_cache = None
        self._programmed = {
            name: self.stack.program(mapped.levels, self._stage_ctx, rng)
            for name, mapped in self._mapped.items()
        }
        self._verified = None
        return self._programmed

    def write_verify_all(self, rng):
        """Simulate the verify loop on every device of every tensor.

        Returns
        -------
        dict
            ``name -> WriteVerifyResult`` (levels + per-device cycles).
        """
        if self._programmed is None:
            raise RuntimeError("program() must run before write_verify_all()")
        self._drift_cache = None
        mapping = self.mapping_config
        tolerances = mapping.slice_tolerance_levels(self.wv_config.tolerance)
        full_scales = mapping.slice_max_levels
        self._verified = {}
        for name, mapped in self._mapped.items():
            slice_results = [
                write_verify(
                    mapped.levels[i],
                    self._programmed[name][i],
                    mapping.device,
                    self.wv_config,
                    rng,
                    tolerance_levels=tolerances[i],
                    full_scale=full_scales[i],
                )
                for i in range(mapping.num_slices)
            ]
            self._verified[name] = WriteVerifyResult(
                levels=np.stack([r.levels for r in slice_results]),
                cycles=np.stack([r.cycles for r in slice_results]),
                converged=np.stack([r.converged for r in slice_results]),
            )
            self.stack.observe(name, self._verified[name].cycles)
        return self._verified

    # ------------------------------------------------------------ accounting

    def weight_cycles(self):
        """Per-weight verify cycles: sum over the weight's bit slices."""
        if self._verified is None:
            raise RuntimeError("write_verify_all() must run first")
        return {
            name: result.cycles.sum(axis=0)
            for name, result in self._verified.items()
        }

    def total_cycles(self):
        """Cycles to write-verify every weight (the NWC denominator)."""
        return int(sum(c.sum() for c in self.weight_cycles().values()))

    # ------------------------------------------------------------ deployment

    def _drift_pair(self, key, name, drift_fn):
        """Cached (drifted verified, drifted programmed) for one tensor.

        Drift stages are elementwise with draws that depend only on the
        array shape and the named substream, so drifting the verified and
        programmed stacks separately (with the *same* per-tensor
        substream, hence the same exponent/relaxation draws) and
        selecting afterwards is bitwise-identical to drifting the
        selected combination — and lets every (method, target) deployment
        of a sweep reuse one drift computation.  The cache holds the most
        recent ``(read_time, streams)`` key only and is invalidated by
        re-programming/re-verifying.
        """
        if self._drift_cache is None or self._drift_cache[0] != key:
            self._drift_cache = (key, {})
        cache = self._drift_cache[1]
        if name not in cache:
            cache[name] = drift_fn()
        return cache[name]

    def _drifted_scalar(self, name, read_time, read_stream):
        """Drifted (verified, programmed) level stacks for one tensor.

        ``read_stream`` is an :class:`~repro.utils.rng.RngStream`; the
        per-tensor substream ``read_stream.child("read", name)`` makes the
        drift realization a deterministic function of (trial stream, read
        time), so re-deploying the same trial at several NWC targets sees
        the same drifted devices — the paired design survives retention.
        """
        def drift():
            stream = read_stream.child("read", name)
            return (
                self.stack.read(self._verified[name].levels, self._stage_ctx,
                                stream, t=read_time),
                self.stack.read(self._programmed[name], self._stage_ctx,
                                stream, t=read_time),
            )

        key = (float(read_time), read_stream.seed)
        return self._drift_pair(key, name, drift)

    def apply_selection(self, selection_masks, read_time=None, read_stream=None):
        """Deploy: verified levels where selected, raw elsewhere.

        Parameters
        ----------
        selection_masks:
            ``name -> boolean array`` (weight shape).  Missing names mean
            "nothing selected in this tensor".
        read_time:
            Optional read time (seconds since programming); when the
            stack has read stages, deployed levels drift to this time.
        read_stream:
            :class:`~repro.utils.rng.RngStream` naming the drift draws
            (required when ``read_time`` is set on a drifting stack).

        Returns
        -------
        float
            Achieved NWC: cycles spent on the selected weights divided by
            the cycles needed to write-verify all weights this run.
        """
        if self._verified is None:
            raise RuntimeError("write_verify_all() must run first")
        drifting = read_time is not None and self.stack.has_read_stages
        if drifting and read_stream is None:
            raise ValueError("read_time requires a read_stream (RngStream)")
        spent = 0
        total = 0
        for name, mapped in self._mapped.items():
            cycles = self._verified[name].cycles.sum(axis=0)
            total += int(cycles.sum())
            mask = selection_masks.get(name)
            if mask is None:
                mask = np.zeros(mapped.codes.shape, dtype=bool)
            else:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape != mapped.codes.shape:
                    raise ValueError(
                        f"mask shape {mask.shape} != weight shape "
                        f"{mapped.codes.shape} for {name}"
                    )
            if drifting:
                verified, programmed = self._drifted_scalar(
                    name, read_time, read_stream
                )
            else:
                verified = self._verified[name].levels
                programmed = self._programmed[name]
            levels = np.where(mask[None, ...], verified, programmed)
            weights = self.mapper.readout_weights(mapped, levels)
            layer = self._layers[name]
            layer.set_weight_override(weights.astype(layer.weight.data.dtype))
            spent += int(cycles[mask].sum())
        return spent / total if total else 0.0

    def apply_none(self, read_time=None, read_stream=None):
        """Deploy raw programmed weights everywhere (NWC = 0)."""
        return self.apply_selection({}, read_time=read_time,
                                    read_stream=read_stream)

    def apply_all(self, read_time=None, read_stream=None):
        """Deploy verified weights everywhere (NWC = 1)."""
        masks = {
            name: np.ones(m.codes.shape, dtype=bool)
            for name, m in self._mapped.items()
        }
        return self.apply_selection(masks, read_time=read_time,
                                    read_stream=read_stream)

    def apply_ideal(self):
        """Deploy noise-free quantized weights (clean reference accuracy)."""
        self.map_model()
        for name, mapped in self._mapped.items():
            layer = self._layers[name]
            layer.set_weight_override(
                self.mapper.ideal_weights(mapped).astype(layer.weight.data.dtype)
            )

    # ------------------------------------------------------- trial batching

    @property
    def n_trials(self):
        """Trial count of the current batched state (None when scalar)."""
        return self._n_trials

    def program_trials(self, trial_rngs):
        """Initial programming of every device for a stack of trials.

        Parameters
        ----------
        trial_rngs:
            One numpy Generator per trial.  Trial ``i`` draws its noise
            exactly as a scalar :meth:`program` call with
            ``trial_rngs[i]`` would, so batched and scalar Monte Carlo
            runs see bit-identical initial conductances.

        Returns
        -------
        dict
            ``name -> (num_slices, n_trials) + weight_shape`` levels.
        """
        self.map_model()
        self.stack.reset_observers()
        self._drift_cache = None
        # Per-trial generators advance only when their own trial draws, so
        # running the stack tensor-major here gives each trial the exact
        # draw order of a scalar program() call with the same generator.
        self._programmed_trials = {
            name: self.stack.program_trials(
                mapped.levels, self._stage_ctx, trial_rngs
            )
            for name, mapped in self._mapped.items()
        }
        self._verified_trials = None
        self._n_trials = len(trial_rngs)
        return self._programmed_trials

    def write_verify_trials(self, rng=None, trial_rngs=None, batched=True):
        """Verify-loop every device of every trial.

        ``batched=True`` (default) advances all trials through one masked
        pulse loop per tensor slice, drawing pulse noise from ``rng``.
        ``batched=False`` runs the reference scalar path: trial ``i``
        re-uses ``trial_rngs[i]`` so its result is bit-identical to a
        scalar :meth:`write_verify_all` call for that trial.

        Returns
        -------
        dict
            ``name -> WriteVerifyResult`` with
            ``(num_slices, n_trials) + weight_shape`` arrays.
        """
        if self._programmed_trials is None:
            raise RuntimeError("program_trials() must run before write_verify_trials()")
        self._drift_cache = None
        mapping = self.mapping_config
        tolerances = mapping.slice_tolerance_levels(self.wv_config.tolerance)
        full_scales = mapping.slice_max_levels
        self._verified_trials = {}
        for name, mapped in self._mapped.items():
            slice_results = []
            for i in range(mapping.num_slices):
                targets = np.broadcast_to(
                    mapped.levels[i][None, ...],
                    self._programmed_trials[name][i].shape[:1] + mapped.levels[i].shape,
                )
                # The trial axis leads inside write_verify_trials; device
                # state is stored slice-major, so swap back afterwards.
                result = write_verify_trials(
                    targets,
                    self._programmed_trials[name][i],
                    mapping.device,
                    self.wv_config,
                    rng=rng,
                    trial_rngs=trial_rngs,
                    tolerance_levels=tolerances[i],
                    full_scale=full_scales[i],
                    batched=batched,
                )
                slice_results.append(result)
            self._verified_trials[name] = WriteVerifyResult(
                levels=np.stack([r.levels for r in slice_results]),
                cycles=np.stack([r.cycles for r in slice_results]),
                converged=np.stack([r.converged for r in slice_results]),
            )
            self.stack.observe(name, self._verified_trials[name].cycles)
        return self._verified_trials

    def weight_cycles_trials(self):
        """Per-trial per-weight verify cycles: ``name -> (n_trials,)+shape``."""
        if self._verified_trials is None:
            raise RuntimeError("write_verify_trials() must run first")
        return {
            name: result.cycles.sum(axis=0)
            for name, result in self._verified_trials.items()
        }

    def total_cycles_trials(self):
        """Per-trial NWC denominator, shape ``(n_trials,)``."""
        cycles = self.weight_cycles_trials()
        total = np.zeros(self._n_trials, dtype=np.int64)
        for per_weight in cycles.values():
            total += per_weight.reshape(self._n_trials, -1).sum(axis=1)
        return total

    def apply_selection_trials(self, selection_masks, trial_indices=None,
                               read_time=None, read_streams=None):
        """Deploy trial-batched weights: verified where selected, raw else.

        Parameters
        ----------
        selection_masks:
            ``name -> boolean array``, either the weight shape (same
            selection for every trial) or ``(n_trials,) + weight_shape``
            (per-trial selections, e.g. the random baseline).  Missing
            names mean "nothing selected in this tensor".
        trial_indices:
            Optional integer index array restricting deployment to a
            subset of trials (the active-trial mask of Algorithm 1); the
            returned NWC vector then has that subset's length.
        read_time:
            Optional read time (seconds since programming) for the
            stack's read stages (retention drift).
        read_streams:
            One :class:`~repro.utils.rng.RngStream` per trial of the
            *full* trial set (``trial_indices`` subsets them); trial
            ``i`` drifts bitwise-identically to a scalar
            :meth:`apply_selection` call with ``read_streams[i]``.

        Returns
        -------
        numpy.ndarray
            Achieved NWC per deployed trial.
        """
        if self._verified_trials is None:
            raise RuntimeError("write_verify_trials() must run first")
        n_deploy = (
            self._n_trials if trial_indices is None else len(trial_indices)
        )
        drifting = read_time is not None and self.stack.has_read_stages
        if drifting:
            if read_streams is None:
                raise ValueError("read_time requires read_streams")
            deploy_streams = (
                list(read_streams)
                if trial_indices is None
                else [read_streams[int(i)] for i in trial_indices]
            )
            if len(deploy_streams) != n_deploy:
                raise ValueError(
                    f"need {n_deploy} read_streams, got {len(deploy_streams)}"
                )
        spent = np.zeros(n_deploy, dtype=np.int64)
        total = np.zeros(n_deploy, dtype=np.int64)
        for name, mapped in self._mapped.items():
            verified = self._verified_trials[name]
            programmed = self._programmed_trials[name]
            if trial_indices is not None:
                verified_levels = verified.levels[:, trial_indices]
                cycles = verified.cycles[:, trial_indices].sum(axis=0)
                programmed = programmed[:, trial_indices]
            else:
                verified_levels = verified.levels
                cycles = verified.cycles.sum(axis=0)
            total += cycles.reshape(n_deploy, -1).sum(axis=1)
            mask = selection_masks.get(name)
            if mask is None:
                mask = np.zeros(mapped.codes.shape, dtype=bool)
            else:
                mask = np.asarray(mask, dtype=bool)
            if mask.shape == mapped.codes.shape:
                trial_mask = np.broadcast_to(mask, (n_deploy,) + mask.shape)
            elif mask.shape[1:] == mapped.codes.shape:
                trial_mask = (
                    mask if trial_indices is None else mask[trial_indices]
                )
            else:
                raise ValueError(
                    f"mask shape {mask.shape} matches neither the weight "
                    f"shape {mapped.codes.shape} nor a per-trial stack "
                    f"for {name}"
                )
            if drifting:
                verified_levels, programmed = self._drifted_trials(
                    name, verified_levels, programmed, read_time,
                    deploy_streams,
                )
            levels = np.where(trial_mask[None, ...], verified_levels, programmed)
            weights = self.mapper.readout_weights(mapped, levels)
            layer = self._layers[name]
            layer.set_weight_override(weights.astype(layer.weight.data.dtype))
            spent += np.where(trial_mask, cycles, 0).reshape(n_deploy, -1).sum(axis=1)
        return np.where(total > 0, spent / np.maximum(total, 1), 0.0)

    def _drifted_trials(self, name, verified_levels, programmed, read_time,
                        streams):
        """Drifted (verified, programmed) trial stacks for one tensor.

        Same substream naming as the scalar path (trial ``i`` drifts via
        ``streams[i].child("read", name)``), so batched and scalar drift
        stay bitwise-equal; the cache key is the deployed streams' seeds,
        so a sweep's repeated (method, target) deployments of one block
        drift once.
        """
        def drift():
            children = [s.child("read", name) for s in streams]
            return (
                self.stack.read_trials(verified_levels, self._stage_ctx,
                                       children, t=read_time),
                self.stack.read_trials(programmed, self._stage_ctx,
                                       children, t=read_time),
            )

        key = (float(read_time), tuple(s.seed for s in streams))
        return self._drift_pair(key, name, drift)

    def wear_summary(self, initial_writes=1):
        """Endurance wear over every trial this accelerator simulated.

        Delegates to the stack's :class:`~repro.cim.devices.
        EnduranceObserver`, which folds each programming session into
        running aggregates — so blocked trial-batched sweeps and scalar
        per-trial loops both report statistics over all observed
        device-trials, not just the last block.
        """
        return self.stack.wear_summary(initial_writes=initial_writes)

    def deployed_weights(self):
        """Current override arrays per tensor (None when not deployed)."""
        return {
            name: layer.weight_override for name, layer in self._layers.items()
        }

    def clear(self):
        """Remove overrides: the model computes with ideal float weights."""
        for layer in self._layers.values():
            layer.clear_weight_override()
