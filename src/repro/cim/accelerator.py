"""CiM accelerator simulation: device state per weight, programming, verify.

:class:`CimAccelerator` owns the device-level state for every weighted
layer of a model (conv and linear weights — biases and batch-norm
parameters stay in digital peripherals, as in the reference architectures
the paper builds on).  It supports the full experiment protocol:

1. ``map_model()``      — quantize + bit-slice all weights (Eq. 14);
2. ``program(rng)``     — initial parallel programming of all devices
   (Eq. 15; free in write-cycle accounting);
3. ``write_verify_all(rng)`` — simulate the verify loop on every device
   and record per-weight correction-cycle counts;
4. ``apply_selection(masks)`` — deploy verified values for the selected
   weights and raw programmed values for the rest, and report the
   normalized write cycles (NWC) actually spent.

Step 3+4 make the NWC normalization *self-consistent per Monte Carlo run*:
the denominator is the cycle count this very run would have needed to
write-verify everything, exactly the paper's normalization.

Trial batching
--------------
The ``*_trials`` methods run the same protocol for ``n_trials``
independent Monte Carlo draws at once: device state is stacked as
``(num_slices, n_trials) + weight_shape`` per tensor, the verify loop
advances all trials through one masked pulse loop, and
``apply_selection_trials`` deploys trial-batched weight overrides (see
:mod:`repro.nn.layers.base`) plus a per-trial NWC vector.  Programming
uses one RNG substream per trial, so trial ``i``'s initial conductances
are bit-identical to what the scalar path draws for run ``i``.
"""

from __future__ import annotations

import numpy as np

from repro.cim.mapping import MappingConfig, WeightMapper
from repro.cim.write_verify import (
    WriteVerifyConfig,
    WriteVerifyResult,
    write_verify,
    write_verify_trials,
)
from repro.nn.layers.base import WeightedLayer

__all__ = ["CimAccelerator", "weighted_layer_names"]


def weighted_layer_names(model):
    """Names of all mapped weight tensors, in traversal order."""
    names = []
    for mod_name, module in model.named_modules():
        if isinstance(module, WeightedLayer):
            prefix = f"{mod_name}." if mod_name else ""
            names.append(f"{prefix}weight")
    return names


class CimAccelerator:
    """Simulated nvCiM platform hosting one model's weights."""

    def __init__(self, model, mapping_config=None, wv_config=None):
        self.model = model
        self.mapping_config = (
            mapping_config if mapping_config is not None else MappingConfig()
        )
        self.wv_config = wv_config if wv_config is not None else WriteVerifyConfig()
        self.mapper = WeightMapper(self.mapping_config)
        self._layers = {}
        for mod_name, module in model.named_modules():
            if isinstance(module, WeightedLayer):
                prefix = f"{mod_name}." if mod_name else ""
                self._layers[f"{prefix}weight"] = module
        if not self._layers:
            raise ValueError("model has no weighted layers to map")
        self._mapped = None
        self._programmed = None
        self._verified = None
        self._programmed_trials = None
        self._verified_trials = None
        self._n_trials = None

    # -------------------------------------------------------------- mapping

    @property
    def weight_names(self):
        """Mapped tensor names in deterministic order."""
        return list(self._layers)

    def map_model(self):
        """Quantize and bit-slice every weight tensor (idempotent)."""
        if self._mapped is None:
            self._mapped = {
                name: self.mapper.map_tensor(layer.weight.data)
                for name, layer in self._layers.items()
            }
        return self._mapped

    def num_weights(self):
        """Total number of mapped weights."""
        self.map_model()
        return int(sum(m.codes.size for m in self._mapped.values()))

    def ideal_weights(self):
        """Quantized (but noise-free) weight values per tensor."""
        self.map_model()
        return {
            name: self.mapper.ideal_weights(mapped)
            for name, mapped in self._mapped.items()
        }

    # ---------------------------------------------------------- programming

    def program(self, rng):
        """Initial parallel programming of all devices (no verify).

        Invalidates any previous verify results (new run).
        """
        self.map_model()
        self._programmed = {
            name: self.mapper.program_levels(mapped, rng)
            for name, mapped in self._mapped.items()
        }
        self._verified = None
        return self._programmed

    def write_verify_all(self, rng):
        """Simulate the verify loop on every device of every tensor.

        Returns
        -------
        dict
            ``name -> WriteVerifyResult`` (levels + per-device cycles).
        """
        if self._programmed is None:
            raise RuntimeError("program() must run before write_verify_all()")
        mapping = self.mapping_config
        tolerances = mapping.slice_tolerance_levels(self.wv_config.tolerance)
        full_scales = mapping.slice_max_levels
        self._verified = {}
        for name, mapped in self._mapped.items():
            slice_results = [
                write_verify(
                    mapped.levels[i],
                    self._programmed[name][i],
                    mapping.device,
                    self.wv_config,
                    rng,
                    tolerance_levels=tolerances[i],
                    full_scale=full_scales[i],
                )
                for i in range(mapping.num_slices)
            ]
            self._verified[name] = WriteVerifyResult(
                levels=np.stack([r.levels for r in slice_results]),
                cycles=np.stack([r.cycles for r in slice_results]),
                converged=np.stack([r.converged for r in slice_results]),
            )
        return self._verified

    # ------------------------------------------------------------ accounting

    def weight_cycles(self):
        """Per-weight verify cycles: sum over the weight's bit slices."""
        if self._verified is None:
            raise RuntimeError("write_verify_all() must run first")
        return {
            name: result.cycles.sum(axis=0)
            for name, result in self._verified.items()
        }

    def total_cycles(self):
        """Cycles to write-verify every weight (the NWC denominator)."""
        return int(sum(c.sum() for c in self.weight_cycles().values()))

    # ------------------------------------------------------------ deployment

    def apply_selection(self, selection_masks):
        """Deploy: verified levels where selected, raw elsewhere.

        Parameters
        ----------
        selection_masks:
            ``name -> boolean array`` (weight shape).  Missing names mean
            "nothing selected in this tensor".

        Returns
        -------
        float
            Achieved NWC: cycles spent on the selected weights divided by
            the cycles needed to write-verify all weights this run.
        """
        if self._verified is None:
            raise RuntimeError("write_verify_all() must run first")
        spent = 0
        total = 0
        for name, mapped in self._mapped.items():
            cycles = self._verified[name].cycles.sum(axis=0)
            total += int(cycles.sum())
            mask = selection_masks.get(name)
            if mask is None:
                mask = np.zeros(mapped.codes.shape, dtype=bool)
            else:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape != mapped.codes.shape:
                    raise ValueError(
                        f"mask shape {mask.shape} != weight shape "
                        f"{mapped.codes.shape} for {name}"
                    )
            levels = np.where(
                mask[None, ...],
                self._verified[name].levels,
                self._programmed[name],
            )
            weights = self.mapper.readout_weights(mapped, levels)
            layer = self._layers[name]
            layer.set_weight_override(weights.astype(layer.weight.data.dtype))
            spent += int(cycles[mask].sum())
        return spent / total if total else 0.0

    def apply_none(self):
        """Deploy raw programmed weights everywhere (NWC = 0)."""
        return self.apply_selection({})

    def apply_all(self):
        """Deploy verified weights everywhere (NWC = 1)."""
        masks = {
            name: np.ones(m.codes.shape, dtype=bool)
            for name, m in self._mapped.items()
        }
        return self.apply_selection(masks)

    def apply_ideal(self):
        """Deploy noise-free quantized weights (clean reference accuracy)."""
        self.map_model()
        for name, mapped in self._mapped.items():
            layer = self._layers[name]
            layer.set_weight_override(
                self.mapper.ideal_weights(mapped).astype(layer.weight.data.dtype)
            )

    # ------------------------------------------------------- trial batching

    @property
    def n_trials(self):
        """Trial count of the current batched state (None when scalar)."""
        return self._n_trials

    def program_trials(self, trial_rngs):
        """Initial programming of every device for a stack of trials.

        Parameters
        ----------
        trial_rngs:
            One numpy Generator per trial.  Trial ``i`` draws its noise
            exactly as a scalar :meth:`program` call with
            ``trial_rngs[i]`` would, so batched and scalar Monte Carlo
            runs see bit-identical initial conductances.

        Returns
        -------
        dict
            ``name -> (num_slices, n_trials) + weight_shape`` levels.
        """
        self.map_model()
        n_trials = len(trial_rngs)
        per_trial = [
            {
                name: self.mapper.program_levels(mapped, rng)
                for name, mapped in self._mapped.items()
            }
            for rng in trial_rngs
        ]
        self._programmed_trials = {
            name: np.stack([draw[name] for draw in per_trial], axis=1)
            for name in self._mapped
        }
        self._verified_trials = None
        self._n_trials = n_trials
        return self._programmed_trials

    def write_verify_trials(self, rng=None, trial_rngs=None, batched=True):
        """Verify-loop every device of every trial.

        ``batched=True`` (default) advances all trials through one masked
        pulse loop per tensor slice, drawing pulse noise from ``rng``.
        ``batched=False`` runs the reference scalar path: trial ``i``
        re-uses ``trial_rngs[i]`` so its result is bit-identical to a
        scalar :meth:`write_verify_all` call for that trial.

        Returns
        -------
        dict
            ``name -> WriteVerifyResult`` with
            ``(num_slices, n_trials) + weight_shape`` arrays.
        """
        if self._programmed_trials is None:
            raise RuntimeError("program_trials() must run before write_verify_trials()")
        mapping = self.mapping_config
        tolerances = mapping.slice_tolerance_levels(self.wv_config.tolerance)
        full_scales = mapping.slice_max_levels
        self._verified_trials = {}
        for name, mapped in self._mapped.items():
            slice_results = []
            for i in range(mapping.num_slices):
                targets = np.broadcast_to(
                    mapped.levels[i][None, ...],
                    self._programmed_trials[name][i].shape[:1] + mapped.levels[i].shape,
                )
                # The trial axis leads inside write_verify_trials; device
                # state is stored slice-major, so swap back afterwards.
                result = write_verify_trials(
                    targets,
                    self._programmed_trials[name][i],
                    mapping.device,
                    self.wv_config,
                    rng=rng,
                    trial_rngs=trial_rngs,
                    tolerance_levels=tolerances[i],
                    full_scale=full_scales[i],
                    batched=batched,
                )
                slice_results.append(result)
            self._verified_trials[name] = WriteVerifyResult(
                levels=np.stack([r.levels for r in slice_results]),
                cycles=np.stack([r.cycles for r in slice_results]),
                converged=np.stack([r.converged for r in slice_results]),
            )
        return self._verified_trials

    def weight_cycles_trials(self):
        """Per-trial per-weight verify cycles: ``name -> (n_trials,)+shape``."""
        if self._verified_trials is None:
            raise RuntimeError("write_verify_trials() must run first")
        return {
            name: result.cycles.sum(axis=0)
            for name, result in self._verified_trials.items()
        }

    def total_cycles_trials(self):
        """Per-trial NWC denominator, shape ``(n_trials,)``."""
        cycles = self.weight_cycles_trials()
        total = np.zeros(self._n_trials, dtype=np.int64)
        for per_weight in cycles.values():
            total += per_weight.reshape(self._n_trials, -1).sum(axis=1)
        return total

    def apply_selection_trials(self, selection_masks, trial_indices=None):
        """Deploy trial-batched weights: verified where selected, raw else.

        Parameters
        ----------
        selection_masks:
            ``name -> boolean array``, either the weight shape (same
            selection for every trial) or ``(n_trials,) + weight_shape``
            (per-trial selections, e.g. the random baseline).  Missing
            names mean "nothing selected in this tensor".
        trial_indices:
            Optional integer index array restricting deployment to a
            subset of trials (the active-trial mask of Algorithm 1); the
            returned NWC vector then has that subset's length.

        Returns
        -------
        numpy.ndarray
            Achieved NWC per deployed trial.
        """
        if self._verified_trials is None:
            raise RuntimeError("write_verify_trials() must run first")
        n_deploy = (
            self._n_trials if trial_indices is None else len(trial_indices)
        )
        spent = np.zeros(n_deploy, dtype=np.int64)
        total = np.zeros(n_deploy, dtype=np.int64)
        for name, mapped in self._mapped.items():
            verified = self._verified_trials[name]
            programmed = self._programmed_trials[name]
            if trial_indices is not None:
                verified_levels = verified.levels[:, trial_indices]
                cycles = verified.cycles[:, trial_indices].sum(axis=0)
                programmed = programmed[:, trial_indices]
            else:
                verified_levels = verified.levels
                cycles = verified.cycles.sum(axis=0)
            total += cycles.reshape(n_deploy, -1).sum(axis=1)
            mask = selection_masks.get(name)
            if mask is None:
                mask = np.zeros(mapped.codes.shape, dtype=bool)
            else:
                mask = np.asarray(mask, dtype=bool)
            if mask.shape == mapped.codes.shape:
                trial_mask = np.broadcast_to(mask, (n_deploy,) + mask.shape)
            elif mask.shape[1:] == mapped.codes.shape:
                trial_mask = (
                    mask if trial_indices is None else mask[trial_indices]
                )
            else:
                raise ValueError(
                    f"mask shape {mask.shape} matches neither the weight "
                    f"shape {mapped.codes.shape} nor a per-trial stack "
                    f"for {name}"
                )
            levels = np.where(trial_mask[None, ...], verified_levels, programmed)
            weights = self.mapper.readout_weights(mapped, levels)
            layer = self._layers[name]
            layer.set_weight_override(weights.astype(layer.weight.data.dtype))
            spent += np.where(trial_mask, cycles, 0).reshape(n_deploy, -1).sum(axis=1)
        return np.where(total > 0, spent / np.maximum(total, 1), 0.0)

    def deployed_weights(self):
        """Current override arrays per tensor (None when not deployed)."""
        return {
            name: layer.weight_override for name, layer in self._layers.items()
        }

    def clear(self):
        """Remove overrides: the model computes with ideal float weights."""
        for layer in self._layers.values():
            layer.clear_weight_override()
