"""CiM accelerator simulation: device state per weight, programming, verify.

:class:`CimAccelerator` owns the device-level state for every weighted
layer of a model (conv and linear weights — biases and batch-norm
parameters stay in digital peripherals, as in the reference architectures
the paper builds on).  It supports the full experiment protocol:

1. ``map_model()``      — quantize + bit-slice all weights (Eq. 14);
2. ``program(rng)``     — initial parallel programming of all devices
   (Eq. 15; free in write-cycle accounting);
3. ``write_verify_all(rng)`` — simulate the verify loop on every device
   and record per-weight correction-cycle counts;
4. ``apply_selection(masks)`` — deploy verified values for the selected
   weights and raw programmed values for the rest, and report the
   normalized write cycles (NWC) actually spent.

Step 3+4 make the NWC normalization *self-consistent per Monte Carlo run*:
the denominator is the cycle count this very run would have needed to
write-verify everything, exactly the paper's normalization.
"""

from __future__ import annotations

import numpy as np

from repro.cim.mapping import MappingConfig, WeightMapper
from repro.cim.write_verify import WriteVerifyConfig, WriteVerifyResult, write_verify
from repro.nn.layers.base import WeightedLayer

__all__ = ["CimAccelerator", "weighted_layer_names"]


def weighted_layer_names(model):
    """Names of all mapped weight tensors, in traversal order."""
    names = []
    for mod_name, module in model.named_modules():
        if isinstance(module, WeightedLayer):
            prefix = f"{mod_name}." if mod_name else ""
            names.append(f"{prefix}weight")
    return names


class CimAccelerator:
    """Simulated nvCiM platform hosting one model's weights."""

    def __init__(self, model, mapping_config=None, wv_config=None):
        self.model = model
        self.mapping_config = (
            mapping_config if mapping_config is not None else MappingConfig()
        )
        self.wv_config = wv_config if wv_config is not None else WriteVerifyConfig()
        self.mapper = WeightMapper(self.mapping_config)
        self._layers = {}
        for mod_name, module in model.named_modules():
            if isinstance(module, WeightedLayer):
                prefix = f"{mod_name}." if mod_name else ""
                self._layers[f"{prefix}weight"] = module
        if not self._layers:
            raise ValueError("model has no weighted layers to map")
        self._mapped = None
        self._programmed = None
        self._verified = None

    # -------------------------------------------------------------- mapping

    @property
    def weight_names(self):
        """Mapped tensor names in deterministic order."""
        return list(self._layers)

    def map_model(self):
        """Quantize and bit-slice every weight tensor (idempotent)."""
        if self._mapped is None:
            self._mapped = {
                name: self.mapper.map_tensor(layer.weight.data)
                for name, layer in self._layers.items()
            }
        return self._mapped

    def num_weights(self):
        """Total number of mapped weights."""
        self.map_model()
        return int(sum(m.codes.size for m in self._mapped.values()))

    def ideal_weights(self):
        """Quantized (but noise-free) weight values per tensor."""
        self.map_model()
        return {
            name: self.mapper.ideal_weights(mapped)
            for name, mapped in self._mapped.items()
        }

    # ---------------------------------------------------------- programming

    def program(self, rng):
        """Initial parallel programming of all devices (no verify).

        Invalidates any previous verify results (new run).
        """
        self.map_model()
        self._programmed = {
            name: self.mapper.program_levels(mapped, rng)
            for name, mapped in self._mapped.items()
        }
        self._verified = None
        return self._programmed

    def write_verify_all(self, rng):
        """Simulate the verify loop on every device of every tensor.

        Returns
        -------
        dict
            ``name -> WriteVerifyResult`` (levels + per-device cycles).
        """
        if self._programmed is None:
            raise RuntimeError("program() must run before write_verify_all()")
        mapping = self.mapping_config
        tolerances = mapping.slice_tolerance_levels(self.wv_config.tolerance)
        full_scales = mapping.slice_max_levels
        self._verified = {}
        for name, mapped in self._mapped.items():
            slice_results = [
                write_verify(
                    mapped.levels[i],
                    self._programmed[name][i],
                    mapping.device,
                    self.wv_config,
                    rng,
                    tolerance_levels=tolerances[i],
                    full_scale=full_scales[i],
                )
                for i in range(mapping.num_slices)
            ]
            self._verified[name] = WriteVerifyResult(
                levels=np.stack([r.levels for r in slice_results]),
                cycles=np.stack([r.cycles for r in slice_results]),
                converged=np.stack([r.converged for r in slice_results]),
            )
        return self._verified

    # ------------------------------------------------------------ accounting

    def weight_cycles(self):
        """Per-weight verify cycles: sum over the weight's bit slices."""
        if self._verified is None:
            raise RuntimeError("write_verify_all() must run first")
        return {
            name: result.cycles.sum(axis=0)
            for name, result in self._verified.items()
        }

    def total_cycles(self):
        """Cycles to write-verify every weight (the NWC denominator)."""
        return int(sum(c.sum() for c in self.weight_cycles().values()))

    # ------------------------------------------------------------ deployment

    def apply_selection(self, selection_masks):
        """Deploy: verified levels where selected, raw elsewhere.

        Parameters
        ----------
        selection_masks:
            ``name -> boolean array`` (weight shape).  Missing names mean
            "nothing selected in this tensor".

        Returns
        -------
        float
            Achieved NWC: cycles spent on the selected weights divided by
            the cycles needed to write-verify all weights this run.
        """
        if self._verified is None:
            raise RuntimeError("write_verify_all() must run first")
        spent = 0
        total = 0
        for name, mapped in self._mapped.items():
            cycles = self._verified[name].cycles.sum(axis=0)
            total += int(cycles.sum())
            mask = selection_masks.get(name)
            if mask is None:
                mask = np.zeros(mapped.codes.shape, dtype=bool)
            else:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape != mapped.codes.shape:
                    raise ValueError(
                        f"mask shape {mask.shape} != weight shape "
                        f"{mapped.codes.shape} for {name}"
                    )
            levels = np.where(
                mask[None, ...],
                self._verified[name].levels,
                self._programmed[name],
            )
            weights = self.mapper.readout_weights(mapped, levels)
            layer = self._layers[name]
            layer.set_weight_override(weights.astype(layer.weight.data.dtype))
            spent += int(cycles[mask].sum())
        return spent / total if total else 0.0

    def apply_none(self):
        """Deploy raw programmed weights everywhere (NWC = 0)."""
        return self.apply_selection({})

    def apply_all(self):
        """Deploy verified weights everywhere (NWC = 1)."""
        masks = {
            name: np.ones(m.codes.shape, dtype=bool)
            for name, m in self._mapped.items()
        }
        return self.apply_selection(masks)

    def apply_ideal(self):
        """Deploy noise-free quantized weights (clean reference accuracy)."""
        self.map_model()
        for name, mapped in self._mapped.items():
            layer = self._layers[name]
            layer.set_weight_override(
                self.mapper.ideal_weights(mapped).astype(layer.weight.data.dtype)
            )

    def deployed_weights(self):
        """Current override arrays per tensor (None when not deployed)."""
        return {
            name: layer.weight_override for name, layer in self._layers.items()
        }

    def clear(self):
        """Remove overrides: the model computes with ideal float weights."""
        for layer in self._layers.values():
            layer.clear_weight_override()
