"""Programming time and energy accounting.

The paper's motivation is wall-clock: "programming even a ResNet-18 for
CIFAR-10 to an nvCiM platform can take more than one week" (Sec. 1, citing
Shim et al. [8]).  NWC is the paper's hardware-neutral metric; this module
converts cycle counts back into physical time/energy so the headline claim
can be reproduced and SWIM's savings reported in hours, not just ratios.

Defaults are order-of-magnitude figures for multi-level RRAM macro
programming (per-cell write pulse + verify read + peripheral addressing,
amortized over row-parallel verify reads); with the default 5 ms effective
per-weight-cycle cost and the ~10-cycle write-verify calibration, a
full-width ResNet-18 (1.12e7 weights) costs ~6.5 days — the paper's
"more than one week" scale.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "format_duration"]

_SECONDS = (("d", 86400.0), ("h", 3600.0), ("min", 60.0), ("s", 1.0))


def format_duration(seconds):
    """Human-readable duration, two leading units (e.g. ``6d 14h``)."""
    if seconds < 1.0:
        return f"{1000 * seconds:.1f} ms"
    parts = []
    rest = float(seconds)
    for name, unit in _SECONDS:
        count = int(rest // unit)
        if count > 0 or (name == "s" and not parts):
            parts.append(f"{count}{name}")
            rest -= count * unit
        if len(parts) == 2:
            break
    return " ".join(parts)


@dataclass(frozen=True)
class CostModel:
    """Physical cost per write-verify cycle.

    Attributes
    ----------
    seconds_per_cycle:
        Effective wall-clock per weight-cycle: write pulse train + verify
        read + addressing (default 5 ms: the multi-level-cell
        write-verify figure that reproduces the paper's "one week for
        ResNet-18" with ~10 cycles/weight).
    energy_per_cycle_nj:
        Programming energy per cycle in nanojoules (pulse + read).
    """

    seconds_per_cycle: float = 5e-3
    energy_per_cycle_nj: float = 10.0

    def __post_init__(self):
        if self.seconds_per_cycle <= 0 or self.energy_per_cycle_nj <= 0:
            raise ValueError("cost parameters must be > 0")

    def programming_time(self, total_cycles):
        """Seconds to issue ``total_cycles`` write-verify cycles."""
        return float(total_cycles) * self.seconds_per_cycle

    def programming_energy_mj(self, total_cycles):
        """Millijoules to issue ``total_cycles`` cycles."""
        return float(total_cycles) * self.energy_per_cycle_nj * 1e-6

    def estimate_full_write_verify(self, n_weights, mean_cycles=10.0):
        """Time/energy to write-verify every weight of a model.

        Returns
        -------
        dict
            ``{"cycles", "seconds", "human", "energy_mj"}``.
        """
        cycles = float(n_weights) * float(mean_cycles)
        seconds = self.programming_time(cycles)
        return {
            "cycles": cycles,
            "seconds": seconds,
            "human": format_duration(seconds),
            "energy_mj": self.programming_energy_mj(cycles),
        }

    def speedup_report(self, n_weights, nwc, mean_cycles=10.0):
        """Compare a selective schedule (at ``nwc``) to full write-verify.

        Returns
        -------
        dict
            Full and selective costs plus the speedup factor.
        """
        full = self.estimate_full_write_verify(n_weights, mean_cycles)
        selective_seconds = full["seconds"] * nwc
        return {
            "full_human": full["human"],
            "selective_human": format_duration(selective_seconds),
            "speedup": (1.0 / nwc) if nwc > 0 else float("inf"),
            "saved_seconds": full["seconds"] - selective_seconds,
        }
