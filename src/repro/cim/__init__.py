"""nvCiM substrate: devices, mapping, write-verify, crossbars, accelerator."""

from repro.cim.accelerator import CimAccelerator, weighted_layer_names
from repro.cim.crossbar import (
    ConverterConfig,
    CrossbarConfig,
    CrossbarLinear,
    uniform_quantize_midrise,
)
from repro.cim.device import DeviceConfig
from repro.cim.endurance import EnduranceModel, WearReport
from repro.cim.energy import CostModel, format_duration
from repro.cim.mapping import MappedTensor, MappingConfig, WeightMapper
from repro.cim.noise import ResidualModel, inject_code_noise, inject_weight_noise
from repro.cim.retention import RetentionModel
from repro.cim.spatial import SpatialVariationModel
from repro.cim.write_verify import (
    WriteVerifyConfig,
    WriteVerifyResult,
    calibrate_alpha,
    write_verify,
    write_verify_trials,
)

__all__ = [
    "CimAccelerator",
    "CostModel",
    "ConverterConfig",
    "CrossbarConfig",
    "CrossbarLinear",
    "DeviceConfig",
    "EnduranceModel",
    "MappedTensor",
    "MappingConfig",
    "ResidualModel",
    "RetentionModel",
    "SpatialVariationModel",
    "WearReport",
    "WeightMapper",
    "WriteVerifyConfig",
    "WriteVerifyResult",
    "calibrate_alpha",
    "format_duration",
    "inject_code_noise",
    "inject_weight_noise",
    "uniform_quantize_midrise",
    "weighted_layer_names",
    "write_verify",
    "write_verify_trials",
]
