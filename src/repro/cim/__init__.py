"""nvCiM substrate: devices, mapping, write-verify, crossbars, accelerator.

Device physics lives in the composable :mod:`repro.cim.devices`
subsystem: a trial-batched :class:`NonidealityStack` (programming noise →
spatial correlation at write time, retention drift at read time, with
endurance accounting as an observer) behind a :class:`DeviceTechnology`
registry (``fefet`` — the paper's default — plus ``rram``, ``pcm``,
``mram``).  The old per-silo modules (``repro.cim.device`` etc.) remain
as deprecated shims.
"""

from repro.cim.accelerator import CimAccelerator, weighted_layer_names
from repro.cim.crossbar import (
    ConverterConfig,
    CrossbarConfig,
    CrossbarLinear,
    uniform_quantize_midrise,
)
from repro.cim.devices import (
    DEFAULT_TECHNOLOGY,
    DeviceConfig,
    DeviceTechnology,
    DriftCompensationStage,
    EnduranceModel,
    EnduranceObserver,
    NonidealityStack,
    NonidealityStage,
    ProgrammingNoiseStage,
    ResidualModel,
    RetentionDriftStage,
    RetentionModel,
    SpatialCorrelationStage,
    SpatialVariationModel,
    StageContext,
    WearReport,
    get_technology,
    inject_code_noise,
    inject_weight_noise,
    register_technology,
    resolve_technology,
    technology_names,
)
from repro.cim.energy import CostModel, format_duration
from repro.cim.mapping import MappedTensor, MappingConfig, WeightMapper
from repro.cim.write_verify import (
    WriteVerifyConfig,
    WriteVerifyResult,
    calibrate_alpha,
    write_verify,
    write_verify_trials,
)

__all__ = [
    "CimAccelerator",
    "CostModel",
    "ConverterConfig",
    "CrossbarConfig",
    "CrossbarLinear",
    "DEFAULT_TECHNOLOGY",
    "DeviceConfig",
    "DeviceTechnology",
    "DriftCompensationStage",
    "EnduranceModel",
    "EnduranceObserver",
    "MappedTensor",
    "MappingConfig",
    "NonidealityStack",
    "NonidealityStage",
    "ProgrammingNoiseStage",
    "ResidualModel",
    "RetentionDriftStage",
    "RetentionModel",
    "SpatialCorrelationStage",
    "SpatialVariationModel",
    "StageContext",
    "WearReport",
    "WeightMapper",
    "WriteVerifyConfig",
    "WriteVerifyResult",
    "calibrate_alpha",
    "format_duration",
    "get_technology",
    "inject_code_noise",
    "inject_weight_noise",
    "register_technology",
    "resolve_technology",
    "technology_names",
    "uniform_quantize_midrise",
    "weighted_layer_names",
    "write_verify",
    "write_verify_trials",
]
