"""Deprecated shim: moved to :mod:`repro.cim.devices.retention`.

Retention drift is now a read-time stage of the composable nonideality
stack (:class:`repro.cim.devices.RetentionDriftStage`).  Import
:class:`RetentionModel` from :mod:`repro.cim` or
:mod:`repro.cim.devices` instead; this module re-exports the old name
so existing imports keep working.
"""

from __future__ import annotations

import warnings

from repro.cim.devices.retention import RetentionModel

__all__ = ["RetentionModel"]

warnings.warn(
    "repro.cim.retention is deprecated; import RetentionModel from "
    "repro.cim or repro.cim.devices instead",
    DeprecationWarning,
    stacklevel=2,
)
