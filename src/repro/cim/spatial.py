"""Deprecated shim: moved to :mod:`repro.cim.devices.spatial`.

Spatially correlated variation is now a write-time stage of the
composable nonideality stack
(:class:`repro.cim.devices.SpatialCorrelationStage`).  Import
:class:`SpatialVariationModel` from :mod:`repro.cim` or
:mod:`repro.cim.devices` instead; this module re-exports the old name
so existing imports keep working.
"""

from __future__ import annotations

import warnings

from repro.cim.devices.spatial import SpatialVariationModel

__all__ = ["SpatialVariationModel"]

warnings.warn(
    "repro.cim.spatial is deprecated; import SpatialVariationModel from "
    "repro.cim or repro.cim.devices instead",
    DeprecationWarning,
    stacklevel=2,
)
