"""Spatially correlated device variation (the paper's Sec. 2.1 extension).

The paper evaluates *temporal* variation (i.i.d. per device) and notes that
"spatial variations result from fabrication defects and have both local and
global correlations... The proposed framework can also be extended to other
sources of variations with modification."  This module provides that
extension: a Gaussian random field over the physical crossbar layout, with

- a *global* wafer-level offset shared by a whole array, and
- a *local* component correlated over a configurable length scale
  (filtered white noise),

normalized so the marginal per-device std matches the requested sigma.
Because correlated noise cannot be fought by re-programming alone (all
nearby devices err together), write-verify still works — the verify loop
measures each device individually — but *unverified* weights now fail in
clusters, which stresses selection quality differently than i.i.d. noise
(see ``benchmarks/bench_spatial.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["SpatialVariationModel"]


@dataclass(frozen=True)
class SpatialVariationModel:
    """Correlated programming-error field over crossbar coordinates.

    Attributes
    ----------
    sigma:
        Marginal per-device noise std as a fraction of full-scale (the
        same convention as :class:`~repro.cim.device.DeviceConfig`).
    correlation_length:
        Length scale (in devices) of the local correlation; 0 reduces to
        i.i.d. noise.
    global_fraction:
        Fraction of the noise *variance* carried by the array-wide offset
        (fabrication-lot component).
    array_rows:
        Devices per physical column used to fold a flat weight tensor
        onto 2-D crossbar coordinates.
    """

    sigma: float = 0.1
    correlation_length: float = 8.0
    global_fraction: float = 0.2
    array_rows: int = 128

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        if self.correlation_length < 0:
            raise ValueError("correlation_length must be >= 0")
        if not 0 <= self.global_fraction < 1:
            raise ValueError("global_fraction must be in [0, 1)")
        if self.array_rows < 1:
            raise ValueError("array_rows must be >= 1")

    def _layout(self, size):
        """Fold ``size`` devices into (rows, cols) crossbar coordinates."""
        rows = min(self.array_rows, size)
        cols = -(-size // rows)
        return rows, cols

    def sample_field(self, size, rng, device_max_level=15):
        """Sample a correlated error field for ``size`` devices.

        Parameters
        ----------
        size:
            Number of devices.
        rng:
            numpy Generator.
        device_max_level:
            Full-scale in level units (errors are returned in levels).

        Returns
        -------
        numpy.ndarray
            Flat error array of length ``size`` (level units) whose
            marginal std is ``sigma * device_max_level``.
        """
        if self.sigma == 0 or size == 0:
            return np.zeros(size)
        rows, cols = self._layout(size)
        white = rng.normal(0.0, 1.0, size=(rows, cols))
        if self.correlation_length > 0:
            local = ndimage.gaussian_filter(
                white, self.correlation_length, mode="wrap"
            )
            std = local.std()
            local = local / std if std > 0 else white
        else:
            local = white
        field = np.sqrt(1.0 - self.global_fraction) * local
        if self.global_fraction > 0:
            field = field + np.sqrt(self.global_fraction) * rng.normal()
        flat = field.reshape(-1)[:size]
        return flat * self.sigma * device_max_level

    def correlation_at_lag(self, lag, size=8192, seed=0, device_max_level=15):
        """Empirical autocorrelation of the field at a given row lag.

        Diagnostic used by tests and the spatial bench to demonstrate the
        difference from i.i.d. noise.
        """
        rng = np.random.default_rng(seed)
        field = self.sample_field(size, rng, device_max_level)
        rows, cols = self._layout(size)
        grid = np.resize(field, rows * cols).reshape(rows, cols)
        a = grid[: rows - lag, :].reshape(-1)
        b = grid[lag:, :].reshape(-1)
        a = a - a.mean()
        b = b - b.mean()
        denom = np.sqrt((a * a).mean() * (b * b).mean())
        return float((a * b).mean() / denom) if denom > 0 else 0.0
