"""Iterative write-verify simulation with cycle accounting (paper Sec. 4.1).

The paper's procedure: "for each weight, we iteratively program the
difference between the value on the device and the expected value until it
is below 0.06"; the resulting statistics are "an average of 10 cycles over
all the weights and a weight variation distribution with sigma = 0.03
after write-verify", matching Shim et al. [8].

Pulse dynamics
--------------
Each verify-fail triggers an incremental correction pulse::

    g <- g + alpha * (target - g) + N(0, pulse_sigma^2)

``alpha`` models the fractional conductance step an update pulse achieves
(RRAM SET/RESET pulses move the device only part-way) and ``pulse_sigma``
the per-pulse stochasticity.  The defaults are calibrated (see
:func:`calibrate_alpha`) so that at the paper's operating point
(device sigma 0.1 full-scale, tolerance 0.06 full-scale) the mean cycle
count is ~10 and the post-verify residual std is ~0.03 full-scale.

Cycle accounting
----------------
``cycles`` counts correction pulses only: the initial programming of the
whole array happens in parallel and is free (paper Sec. 2.2: writing
without verify "is done in parallel").  A device that lands within
tolerance on the initial write costs zero cycles ("some may not need
rewrite at all; while others need a lot").

Trial batching
--------------
All arrays are shape-agnostic, so a Monte Carlo study can stack its
trials on a leading ``(n_trials, ...)`` axis and run the masked pulse
loop once for every trial simultaneously — see
:func:`write_verify_trials`.  The scalar one-trial-at-a-time path stays
available behind ``batched=False`` so batched results can be checked
against it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "WriteVerifyConfig",
    "WriteVerifyResult",
    "write_verify",
    "write_verify_trials",
    "calibrate_alpha",
]

#: Devices processed per pulse-loop segment on the trial-batched path.
#: Large trial stacks are split so the working set (levels + targets +
#: cycles + noise) stays cache-resident; measured ~1.6x faster than one
#: full-array loop on a 64-trial LeNet-sized stack.  Single-trial calls
#: stay unsegmented so their seeded draw order matches prior releases.
_SEGMENT_ELEMS = 1 << 17


@dataclass(frozen=True)
class WriteVerifyConfig:
    """Parameters of the verify loop.

    Attributes
    ----------
    tolerance:
        Acceptable |device - target| as a fraction of conductance
        full-scale (paper: 0.06).
    alpha:
        Fractional correction per update pulse.
    pulse_sigma:
        Per-pulse noise std as a fraction of conductance full-scale.
    max_pulses:
        Safety bound on correction pulses per device.
    """

    tolerance: float = 0.06
    alpha: float = 0.033
    pulse_sigma: float = 0.013
    max_pulses: int = 200

    def __post_init__(self):
        if not 0 < self.tolerance < 1:
            raise ValueError("tolerance must be in (0, 1)")
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if self.pulse_sigma < 0:
            raise ValueError("pulse_sigma must be >= 0")
        if self.max_pulses < 1:
            raise ValueError("max_pulses must be >= 1")


@dataclass
class WriteVerifyResult:
    """Outcome of write-verifying an array of devices.

    Attributes
    ----------
    levels:
        Final programmed levels (float array, same shape as targets).
    cycles:
        Correction pulses per device (int array).
    converged:
        Per-device flag: within tolerance when the loop ended.
    """

    levels: np.ndarray
    cycles: np.ndarray
    converged: np.ndarray

    @property
    def mean_cycles(self):
        """Average correction pulses per device."""
        return float(self.cycles.mean()) if self.cycles.size else 0.0


def write_verify(targets, initial_levels, device, config, rng,
                 tolerance_levels=None, full_scale=None,
                 segment_elems=None):
    """Run the verify loop on an array of devices (vectorized).

    Parameters
    ----------
    targets:
        Desired levels (float array).
    initial_levels:
        Levels after the initial parallel programming pass.
    device:
        :class:`~repro.cim.device.DeviceConfig` (supplies the full-scale).
    config:
        :class:`WriteVerifyConfig`.
    rng:
        numpy Generator.
    tolerance_levels:
        Optional absolute tolerance in level units, overriding
        ``config.tolerance * full_scale`` (used by bit-sliced mapping,
        where MSB cells need proportionally tighter verification).
    full_scale:
        Optional cell full-scale in levels, overriding
        ``device.max_level`` (used for narrower top slices).
    segment_elems:
        When set, process the flattened array in segments of this many
        devices (cache blocking for large trial stacks).  ``None`` (the
        default) runs one loop over the whole array, preserving the
        seeded RNG draw order of earlier releases for any array size.

    Returns
    -------
    WriteVerifyResult
    """
    targets = np.asarray(targets, dtype=np.float64)
    shape = targets.shape
    levels = np.array(initial_levels, dtype=np.float64).reshape(-1)
    full_scale = device.max_level if full_scale is None else float(full_scale)
    tol_levels = (
        config.tolerance * full_scale
        if tolerance_levels is None
        else float(tolerance_levels)
    )
    pulse_sigma_levels = config.pulse_sigma * full_scale

    # The pulse loop runs on flat segments: 1-D gather/scatter of a
    # compacted active set is markedly faster than N-D fancy indexing,
    # lets the same code serve single arrays and (n_trials, ...) stacks,
    # and segmenting keeps the working set cache-resident for large
    # trial stacks.
    flat_targets = targets.reshape(-1)
    cycles = np.zeros(flat_targets.shape, dtype=np.int64)
    step = segment_elems if segment_elems else max(flat_targets.size, 1)
    for start in range(0, max(flat_targets.size, 1), step):
        stop = start + step
        _pulse_loop(
            flat_targets[start:stop], levels[start:stop],
            cycles[start:stop], config, rng,
            tol_levels, pulse_sigma_levels,
        )
    converged = np.abs(levels - flat_targets) <= tol_levels
    return WriteVerifyResult(
        levels=levels.reshape(shape),
        cycles=cycles.reshape(shape),
        converged=converged.reshape(shape),
    )


def _pulse_loop(targets, levels, cycles, config, rng, tol_levels,
                pulse_sigma_levels):
    """Run the masked verify loop in place on one flat segment.

    Devices leave the compacted index array the moment they verify, so
    each iteration only touches the still-failing devices (mean ~10
    pulses, but stragglers can take ``max_pulses`` — without compaction
    they would force full-array scans every pulse).
    """
    remaining = np.nonzero(np.abs(levels - targets) > tol_levels)[0]
    pulse = 0
    while remaining.size and pulse < config.max_pulses:
        error = targets[remaining] - levels[remaining]
        noise = (
            rng.normal(0.0, pulse_sigma_levels, size=error.shape)
            if pulse_sigma_levels > 0
            else 0.0
        )
        levels[remaining] = levels[remaining] + config.alpha * error + noise
        cycles[remaining] += 1
        still = np.abs(levels[remaining] - targets[remaining]) > tol_levels
        remaining = remaining[still]
        pulse += 1


def write_verify_trials(
    targets,
    initial_levels,
    device,
    config,
    rng=None,
    trial_rngs=None,
    tolerance_levels=None,
    full_scale=None,
    batched=True,
):
    """Verify-loop an ``(n_trials, ...)`` stack of independent trials.

    Parameters
    ----------
    targets, initial_levels:
        Arrays with a leading trial axis; ``targets`` may broadcast
        against ``initial_levels`` (e.g. the same desired levels under
        ``n_trials`` independent programming draws).
    rng:
        numpy Generator driving pulse noise for the batched path.
    trial_rngs:
        Per-trial generators for the scalar path (``batched=False``);
        trial ``i`` then reproduces exactly what a standalone
        :func:`write_verify` call with ``trial_rngs[i]`` produces.
    batched:
        When True (default), one masked pulse loop advances every trial
        simultaneously.  When False, trials run one at a time — the
        reference path equivalence tests compare against.

    Returns
    -------
    WriteVerifyResult
        With ``(n_trials, ...)``-shaped ``levels``/``cycles``/``converged``.
    """
    initial_levels = np.asarray(initial_levels, dtype=np.float64)
    if initial_levels.ndim < 1:
        raise ValueError("initial_levels needs a leading trial axis")
    targets = np.broadcast_to(
        np.asarray(targets, dtype=np.float64), initial_levels.shape
    )
    if batched:
        if rng is None:
            raise ValueError("batched write_verify_trials requires rng")
        return write_verify(
            targets, initial_levels, device, config, rng,
            tolerance_levels=tolerance_levels, full_scale=full_scale,
            segment_elems=_SEGMENT_ELEMS,
        )
    n_trials = initial_levels.shape[0]
    if trial_rngs is None:
        raise ValueError("scalar write_verify_trials requires trial_rngs")
    if len(trial_rngs) != n_trials:
        raise ValueError(
            f"need {n_trials} trial_rngs, got {len(trial_rngs)}"
        )
    results = [
        write_verify(
            targets[i], initial_levels[i], device, config, trial_rngs[i],
            tolerance_levels=tolerance_levels, full_scale=full_scale,
        )
        for i in range(n_trials)
    ]
    return WriteVerifyResult(
        levels=np.stack([r.levels for r in results]),
        cycles=np.stack([r.cycles for r in results]),
        converged=np.stack([r.converged for r in results]),
    )


def calibrate_alpha(
    device,
    target_mean_cycles=10.0,
    tolerance=0.06,
    pulse_sigma=0.013,
    n_devices=20000,
    seed=0,
    alpha_bounds=(0.005, 1.0),
    iterations=22,
):
    """Bisection-fit ``alpha`` so the mean cycle count matches a target.

    Smaller ``alpha`` means weaker pulses and more cycles, so mean cycles
    is monotonically decreasing in ``alpha``; bisection converges quickly.
    Used to document the Shim-et-al.-matching claim (Sec. 4.1) and by the
    write-verify calibration bench.

    Returns
    -------
    tuple
        ``(alpha, achieved_mean_cycles)``.
    """
    rng = np.random.default_rng(seed)
    # Representative workload: uniformly distributed target levels.
    targets = rng.uniform(0, device.max_level, size=n_devices)
    initial = device.program(targets, rng)

    def mean_cycles(alpha):
        config = WriteVerifyConfig(
            tolerance=tolerance, alpha=alpha, pulse_sigma=pulse_sigma
        )
        run_rng = np.random.default_rng(seed + 1)
        result = write_verify(targets, initial, device, config, run_rng)
        return result.mean_cycles

    low, high = alpha_bounds
    for _ in range(iterations):
        mid = 0.5 * (low + high)
        if mean_cycles(mid) > target_mean_cycles:
            low = mid  # too many cycles -> strengthen pulses
        else:
            high = mid
    alpha = 0.5 * (low + high)
    return alpha, mean_cycles(alpha)
