"""Iterative write-verify simulation with cycle accounting (paper Sec. 4.1).

The paper's procedure: "for each weight, we iteratively program the
difference between the value on the device and the expected value until it
is below 0.06"; the resulting statistics are "an average of 10 cycles over
all the weights and a weight variation distribution with sigma = 0.03
after write-verify", matching Shim et al. [8].

Pulse dynamics
--------------
Each verify-fail triggers an incremental correction pulse::

    g <- g + alpha * (target - g) + N(0, pulse_sigma^2)

``alpha`` models the fractional conductance step an update pulse achieves
(RRAM SET/RESET pulses move the device only part-way) and ``pulse_sigma``
the per-pulse stochasticity.  The defaults are calibrated (see
:func:`calibrate_alpha`) so that at the paper's operating point
(device sigma 0.1 full-scale, tolerance 0.06 full-scale) the mean cycle
count is ~10 and the post-verify residual std is ~0.03 full-scale.

Cycle accounting
----------------
``cycles`` counts correction pulses only: the initial programming of the
whole array happens in parallel and is free (paper Sec. 2.2: writing
without verify "is done in parallel").  A device that lands within
tolerance on the initial write costs zero cycles ("some may not need
rewrite at all; while others need a lot").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WriteVerifyConfig", "WriteVerifyResult", "write_verify", "calibrate_alpha"]


@dataclass(frozen=True)
class WriteVerifyConfig:
    """Parameters of the verify loop.

    Attributes
    ----------
    tolerance:
        Acceptable |device - target| as a fraction of conductance
        full-scale (paper: 0.06).
    alpha:
        Fractional correction per update pulse.
    pulse_sigma:
        Per-pulse noise std as a fraction of conductance full-scale.
    max_pulses:
        Safety bound on correction pulses per device.
    """

    tolerance: float = 0.06
    alpha: float = 0.033
    pulse_sigma: float = 0.013
    max_pulses: int = 200

    def __post_init__(self):
        if not 0 < self.tolerance < 1:
            raise ValueError("tolerance must be in (0, 1)")
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if self.pulse_sigma < 0:
            raise ValueError("pulse_sigma must be >= 0")
        if self.max_pulses < 1:
            raise ValueError("max_pulses must be >= 1")


@dataclass
class WriteVerifyResult:
    """Outcome of write-verifying an array of devices.

    Attributes
    ----------
    levels:
        Final programmed levels (float array, same shape as targets).
    cycles:
        Correction pulses per device (int array).
    converged:
        Per-device flag: within tolerance when the loop ended.
    """

    levels: np.ndarray
    cycles: np.ndarray
    converged: np.ndarray

    @property
    def mean_cycles(self):
        """Average correction pulses per device."""
        return float(self.cycles.mean()) if self.cycles.size else 0.0


def write_verify(targets, initial_levels, device, config, rng,
                 tolerance_levels=None, full_scale=None):
    """Run the verify loop on an array of devices (vectorized).

    Parameters
    ----------
    targets:
        Desired levels (float array).
    initial_levels:
        Levels after the initial parallel programming pass.
    device:
        :class:`~repro.cim.device.DeviceConfig` (supplies the full-scale).
    config:
        :class:`WriteVerifyConfig`.
    rng:
        numpy Generator.
    tolerance_levels:
        Optional absolute tolerance in level units, overriding
        ``config.tolerance * full_scale`` (used by bit-sliced mapping,
        where MSB cells need proportionally tighter verification).
    full_scale:
        Optional cell full-scale in levels, overriding
        ``device.max_level`` (used for narrower top slices).

    Returns
    -------
    WriteVerifyResult
    """
    targets = np.asarray(targets, dtype=np.float64)
    levels = np.asarray(initial_levels, dtype=np.float64).copy()
    full_scale = device.max_level if full_scale is None else float(full_scale)
    tol_levels = (
        config.tolerance * full_scale
        if tolerance_levels is None
        else float(tolerance_levels)
    )
    pulse_sigma_levels = config.pulse_sigma * full_scale

    cycles = np.zeros(targets.shape, dtype=np.int64)
    active = np.abs(levels - targets) > tol_levels
    pulse = 0
    while np.any(active) and pulse < config.max_pulses:
        idx = np.nonzero(active)
        error = targets[idx] - levels[idx]
        noise = (
            rng.normal(0.0, pulse_sigma_levels, size=error.shape)
            if pulse_sigma_levels > 0
            else 0.0
        )
        levels[idx] = levels[idx] + config.alpha * error + noise
        cycles[idx] += 1
        active[idx] = np.abs(levels[idx] - targets[idx]) > tol_levels
        pulse += 1
    converged = np.abs(levels - targets) <= tol_levels
    return WriteVerifyResult(levels=levels, cycles=cycles, converged=converged)


def calibrate_alpha(
    device,
    target_mean_cycles=10.0,
    tolerance=0.06,
    pulse_sigma=0.013,
    n_devices=20000,
    seed=0,
    alpha_bounds=(0.005, 1.0),
    iterations=22,
):
    """Bisection-fit ``alpha`` so the mean cycle count matches a target.

    Smaller ``alpha`` means weaker pulses and more cycles, so mean cycles
    is monotonically decreasing in ``alpha``; bisection converges quickly.
    Used to document the Shim-et-al.-matching claim (Sec. 4.1) and by the
    write-verify calibration bench.

    Returns
    -------
    tuple
        ``(alpha, achieved_mean_cycles)``.
    """
    rng = np.random.default_rng(seed)
    # Representative workload: uniformly distributed target levels.
    targets = rng.uniform(0, device.max_level, size=n_devices)
    initial = device.program(targets, rng)

    def mean_cycles(alpha):
        config = WriteVerifyConfig(
            tolerance=tolerance, alpha=alpha, pulse_sigma=pulse_sigma
        )
        run_rng = np.random.default_rng(seed + 1)
        result = write_verify(targets, initial, device, config, run_rng)
        return result.mean_cycles

    low, high = alpha_bounds
    for _ in range(iterations):
        mid = 0.5 * (low + high)
        if mean_cycles(mid) > target_mean_cycles:
            low = mid  # too many cycles -> strengthen pulses
        else:
            high = mid
    alpha = 0.5 * (low + high)
    return alpha, mean_cycles(alpha)
