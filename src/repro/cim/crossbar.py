"""Explicit crossbar-tile MVM model with DAC/ADC quantization.

The Monte Carlo experiment loops use an *effective-weight* shortcut: the
programmed device levels are folded back into a float weight matrix and
inference runs through the normal layer code (see
``CimAccelerator.apply_selection``).  This module provides the physical
tile-level execution path that justifies the shortcut:

- weights live as per-slice conductance matrices on ``rows x cols`` tiles,
  positive and negative weights on differential column pairs;
- inputs pass through a DAC (optional uniform quantization);
- each tile produces partial sums that pass through an ADC (optional
  uniform quantization) before digital accumulation across tiles and bit
  slices.

``tests/test_crossbar.py`` verifies that with ideal converters the tile
path is *numerically identical* to the effective-weight shortcut, and that
it converges to the shortcut as ADC resolution grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cim.mapping import MappingConfig, WeightMapper

__all__ = ["ConverterConfig", "CrossbarConfig", "CrossbarLinear", "uniform_quantize_midrise"]


def uniform_quantize_midrise(values, bits, full_range):
    """Uniform quantizer with ``2^bits`` levels over ``[-fr, +fr]``.

    Implemented as an offset-binary converter: values saturate at the
    range edges, then map to the nearest of the equally spaced levels
    (both endpoints are representable).
    """
    if full_range <= 0:
        return np.zeros_like(values)
    levels = 1 << int(bits)
    step = 2.0 * full_range / (levels - 1)
    clipped = np.clip(values, -full_range, full_range)
    codes = np.rint((clipped + full_range) / step)
    return codes * step - full_range


@dataclass(frozen=True)
class ConverterConfig:
    """DAC/ADC resolution; ``None`` bits means an ideal converter."""

    bits: int | None = None

    def quantize(self, values, full_range):
        """Apply the converter to an array."""
        if self.bits is None:
            return values
        return uniform_quantize_midrise(values, self.bits, full_range)


@dataclass(frozen=True)
class CrossbarConfig:
    """Tile geometry and converter resolutions.

    Attributes
    ----------
    rows:
        Word lines per tile (inputs accumulated per partial sum).
    dac, adc:
        Input and output converter configs.
    """

    rows: int = 128
    dac: ConverterConfig = ConverterConfig()
    adc: ConverterConfig = ConverterConfig()

    def __post_init__(self):
        if self.rows < 1:
            raise ValueError("rows must be >= 1")


class CrossbarLinear:
    """A Linear layer executed on bit-sliced differential crossbar tiles.

    Parameters
    ----------
    weights:
        Float weight matrix ``(out_features, in_features)``.
    mapping_config:
        Quantization/bit-slice configuration.
    crossbar_config:
        Tile geometry and converters.
    programmed_levels:
        Optional pre-programmed device levels (``(slices,) + weights.shape``)
        from an accelerator run; defaults to ideal (noise-free) levels.
    bias:
        Optional digital bias added after accumulation.
    """

    def __init__(
        self,
        weights,
        mapping_config=None,
        crossbar_config=None,
        programmed_levels=None,
        bias=None,
    ):
        self.mapping_config = (
            mapping_config if mapping_config is not None else MappingConfig()
        )
        self.crossbar_config = (
            crossbar_config if crossbar_config is not None else CrossbarConfig()
        )
        self.mapper = WeightMapper(self.mapping_config)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got {weights.shape}")
        self.out_features, self.in_features = weights.shape
        self.mapped = self.mapper.map_tensor(weights)
        self.levels = (
            np.asarray(programmed_levels, dtype=np.float64)
            if programmed_levels is not None
            else self.mapped.levels.copy()
        )
        if self.levels.shape != self.mapped.levels.shape:
            raise ValueError("programmed_levels shape mismatch")
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        # Signed conductance per slice: differential column pair folded into
        # one signed matrix (G+ - G-).
        self._signed_levels = self.levels * self.mapped.signs[None, ...]
        self._adc_ranges = self._calibrate_adc_ranges()

    def _row_chunks(self):
        rows = self.crossbar_config.rows
        for start in range(0, self.in_features, rows):
            yield start, min(start + rows, self.in_features)

    def _calibrate_adc_ranges(self):
        """Worst-case partial-sum magnitude per (slice, tile).

        A tile's partial sum is bounded by the sum of its conductances
        times the maximum input magnitude (inputs are assumed normalized
        to [-1, 1]; the DAC enforces this).
        """
        ranges = []
        for slice_levels in np.abs(self._signed_levels):
            tile_ranges = [
                float(slice_levels[:, start:stop].sum(axis=1).max())
                for start, stop in self._row_chunks()
            ]
            ranges.append(tile_ranges)
        return ranges

    def forward(self, x):
        """Compute ``x @ W.T (+ bias)`` through the tile path.

        ``x`` must be shaped ``(N, in_features)`` with entries in
        ``[-1, 1]`` (the DAC full-scale).
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected (N, {self.in_features}), got {x.shape}")
        x = self.crossbar_config.dac.quantize(x, 1.0)
        total = np.zeros((x.shape[0], self.out_features), dtype=np.float64)
        slice_weights = self.mapping_config.slice_weights.astype(np.float64)
        for slice_index, positional in enumerate(slice_weights):
            signed = self._signed_levels[slice_index]
            for tile_index, (start, stop) in enumerate(self._row_chunks()):
                partial = x[:, start:stop] @ signed[:, start:stop].T
                partial = self.crossbar_config.adc.quantize(
                    partial, self._adc_ranges[slice_index][tile_index]
                )
                total += positional * partial
        out = total * self.mapped.scale
        if self.bias is not None:
            out = out + self.bias
        return out

    def effective_weights(self):
        """The float weights the tile path implements (shortcut view)."""
        return self.mapper.readout_weights(self.mapped, self.levels)

    def __call__(self, x):
        return self.forward(x)
