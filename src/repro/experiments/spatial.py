"""Spatial-variation scenario: clustered failures stress selection quality.

The paper evaluates i.i.d. (temporal) variation and notes that spatial
variations "result from fabrication defects and have both local and global
correlations" (Sec. 2.1).  Under a correlated error field, *unverified*
weights fail in clusters: a whole neighbourhood of devices errs in the
same direction, so the damage a bad selection leaves behind is no longer
averaged away across the tensor — exactly the heterogeneity regime where
ranking by curvature alone stops being optimal.

This scenario sweeps the correlation length of a spatially-enabled
technology (``fefet-spatial`` by default) and runs the paired Monte Carlo
accuracy-vs-NWC sweep for ``swim``, ``hetero_swim`` (Eq. 5 fed by the
stack's analytic variance map) and ``magnitude`` at every length.  One
shared RNG root across lengths keeps the programming draws paired, so
differences down a column are purely the field's correlation structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cim import resolve_technology
from repro.core.metrics import DEFAULT_NWC_TARGETS
from repro.experiments.model_zoo import load_workload
from repro.plan import PlanRequest, ScenarioCell, ScenarioOrchestrator
from repro.utils.rng import RngStream
from repro.utils.tables import Table

__all__ = ["SpatialResult", "run_spatial", "render_spatial"]

SPATIAL_METHODS = ("swim", "hetero_swim", "magnitude")


@dataclass
class SpatialResult:
    """Sweep outcomes keyed by correlation length, plus scenario metadata."""

    workload: str
    technology: str
    spatial_sigma: float
    global_fraction: float
    clean_accuracy: float
    nwc_targets: tuple
    outcomes: dict = field(default_factory=dict)  # corr length -> SweepOutcome


def run_spatial(scale, technology="fefet-spatial", correlation_lengths=None,
                nwc_targets=DEFAULT_NWC_TARGETS, methods=SPATIAL_METHODS,
                workload="lenet-digits", seed=17, use_cache=True,
                batched=True, processes=None, jobs=None, workers=None,
                plan_cache=None,
                plans_out=None, resume=None, report_out=None):
    """Run the clustered-failure stress test across correlation lengths.

    Parameters
    ----------
    scale:
        A :class:`~repro.experiments.config.ScalePreset`
        (``mc_runs_spatial`` trials, ``spatial_correlation_lengths``
        grid).
    technology:
        A spatially-enabled profile (``spatial_sigma > 0``); each grid
        point runs a copy of it with that correlation length.
    correlation_lengths:
        Length grid in devices (default: the preset's); 0 means i.i.d.
    jobs:
        Fan the correlation-length cells across N forked workers (or
        ``REPRO_JOBS``); results are bitwise-equal to serial.
    plan_cache / plans_out:
        Planner cache override, and an optional dict collecting the
        resolved ``length -> SelectionPlan`` mapping.
    resume / report_out:
        Skip checkpointed cells (or ``REPRO_RESUME``), and an optional
        list collecting the orchestrator's :class:`~repro.robustness.
        report.RunReport`.

    Returns
    -------
    SpatialResult
    """
    base = resolve_technology(technology)
    if base.spatial_sigma <= 0:
        raise ValueError(
            f"technology {base.name!r} has no spatial variation "
            "(spatial_sigma = 0); use a spatially-enabled profile such as "
            "'fefet-spatial'"
        )
    lengths = (
        tuple(correlation_lengths)
        if correlation_lengths is not None
        else tuple(scale.spatial_correlation_lengths)
    )
    zoo = load_workload(scale.workload(workload), use_cache=use_cache)
    # One shared stream for every length: the same chips, refabricated
    # with the same draws but a differently structured error field.
    root = RngStream(seed).child("spatial", base.name)
    result = SpatialResult(
        workload=zoo.spec.key,
        technology=base.name,
        spatial_sigma=base.spatial_sigma,
        global_fraction=base.global_fraction,
        clean_accuracy=zoo.clean_accuracy,
        nwc_targets=tuple(nwc_targets),
    )
    cells = [
        ScenarioCell(
            key=float(length),
            request=PlanRequest(
                methods=tuple(methods),
                nwc_targets=tuple(nwc_targets),
                technology=replace(base, correlation_length=float(length)),
                weight_bits=zoo.spec.weight_bits,
            ),
            rng=root,
            mc_runs=scale.mc_runs_spatial,
        )
        for length in lengths
    ]
    orchestrator = ScenarioOrchestrator(
        zoo, eval_samples=scale.eval_samples,
        sense_samples=scale.sense_samples, cache=plan_cache,
    )
    result.outcomes.update(
        orchestrator.run(cells, batched=batched, processes=processes,
                         jobs=jobs, workers=workers, resume=resume,
                         scenario="spatial")
    )
    if plans_out is not None:
        plans_out.update(orchestrator.plans)
    if report_out is not None:
        report_out.append(orchestrator.report)
    return result


def render_spatial(result):
    """Stress-test layout: rows (correlation length, method), columns NWC."""
    headers = ["corr length", "Method"] + [
        f"NWC={t:g}" for t in result.nwc_targets
    ]
    table = Table(
        headers,
        title=(
            f"Spatial — {result.technology} "
            f"(sigma_s={result.spatial_sigma:g}, {result.workload}, "
            f"clean {100 * result.clean_accuracy:.2f}%)"
        ),
    )
    for length, outcome in sorted(result.outcomes.items()):
        first = True
        for method, curve in outcome.curves.items():
            label = "iid" if length == 0 else f"{length:g} dev"
            cells = [label if first else "", method]
            for i in range(len(result.nwc_targets)):
                stat = curve.mean_std(i)
                cells.append(f"{100 * stat.mean:.2f} ± {100 * stat.std:.2f}")
            table.add_row(cells)
            first = False
        table.add_separator()
    parts = [table.render()]
    parts.append(
        f"(global wafer fraction {result.global_fraction:g} of the field "
        "variance; correlation length 0 = i.i.d. reference)"
    )
    return "\n".join(parts)
