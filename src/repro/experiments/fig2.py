"""Figure 2 reproduction: accuracy vs NWC on the three large workloads.

Fig. 2a ConvNet/CIFAR-10, Fig. 2b ResNet-18/CIFAR-10, Fig. 2c ResNet-18/
Tiny-ImageNet — all at sigma = 0.1, weights/activations quantized to
6 bits, methods {SWIM, Magnitude, Random, In-situ}.  Rendered as ASCII
line plots (mean accuracy) plus a mean +/- std table.
"""

from __future__ import annotations

from repro.core.metrics import DEFAULT_NWC_TARGETS
from repro.experiments.model_zoo import load_workload
from repro.experiments.sweeps import run_method_sweep
from repro.utils.ascii_plot import line_plot
from repro.utils.rng import RngStream
from repro.utils.tables import Table

__all__ = ["FIG2_WORKLOADS", "run_fig2_panel", "render_fig2_panel"]

#: Panel id -> workload key, matching the paper's subfigures.
FIG2_WORKLOADS = {
    "a": "convnet-cifar",
    "b": "resnet18-cifar",
    "c": "resnet18-tiny",
}


def run_fig2_panel(scale, panel, nwc_targets=DEFAULT_NWC_TARGETS,
                   methods=("swim", "magnitude", "random", "insitu"),
                   sigma=0.1, seed=2, use_cache=True, batched=True,
                   processes=None):
    """Run one Fig. 2 panel (``panel`` in {"a", "b", "c"}).

    ``batched`` selects the trial-batched Monte Carlo engine (default);
    ``processes`` opts into the scalar process-pool fallback instead —
    the escape hatch for the ResNet panels when the trial-folded
    activations would not fit in memory.

    Returns
    -------
    repro.experiments.sweeps.SweepOutcome
    """
    if panel not in FIG2_WORKLOADS:
        raise KeyError(f"panel must be one of {sorted(FIG2_WORKLOADS)}")
    zoo = load_workload(scale.workload(FIG2_WORKLOADS[panel]),
                        use_cache=use_cache)
    root = RngStream(seed).child("fig2", panel)
    return run_method_sweep(
        zoo,
        sigma=sigma,
        nwc_targets=nwc_targets,
        mc_runs=scale.mc_runs_fig2,
        rng=root,
        eval_samples=scale.eval_samples,
        sense_samples=scale.sense_samples,
        methods=methods,
        insitu_lr=scale.insitu_lr,
        batched=batched,
        processes=processes,
    )


def render_fig2_panel(outcome, panel):
    """ASCII figure + stats table for one panel's SweepOutcome."""
    series = {
        method: (curve.achieved_nwc, 100.0 * curve.means())
        for method, curve in outcome.curves.items()
    }
    plot = line_plot(
        series,
        title=(
            f"Fig. 2{panel} — {outcome.workload} (sigma={outcome.sigma:g}, "
            f"clean {100 * outcome.clean_accuracy:.2f}%)"
        ),
        xlabel="Normalized Write Cycles",
        ylabel="accuracy %",
    )
    table = Table(
        ["Method"] + [f"NWC={t:g}" for t in outcome.nwc_targets],
        title=f"Fig. 2{panel} data (accuracy % mean ± std)",
    )
    for method, curve in outcome.curves.items():
        cells = [method]
        for i in range(len(outcome.nwc_targets)):
            stat = curve.mean_std(i)
            cells.append(f"{100 * stat.mean:.2f} ± {100 * stat.std:.2f}")
        table.add_row(cells)
    return plot + "\n\n" + table.render()
