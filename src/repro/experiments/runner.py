"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    python -m repro.experiments.runner table1 --scale smoke
    python -m repro.experiments.runner fig1
    python -m repro.experiments.runner fig2a fig2b fig2c
    python -m repro.experiments.runner ablations
    python -m repro.experiments.runner devices retention spatial
    python -m repro.experiments.runner all --scale default
    python -m repro.experiments.runner serve --port 8321

Results print to stdout in the paper's layout and are saved as CSV under
``results/`` (override with ``REPRO_RESULTS_DIR``).  ``serve`` is not
an experiment: it stands up the plan-serving HTTP service
(:mod:`repro.serve`) over a workload's :class:`~repro.plan.engine.
PlanEngine` and runs until signaled.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import ablations as ablation_mod
from repro.experiments.config import get_scale
from repro.experiments.devices import render_devices, run_devices
from repro.experiments.fig1 import Fig1Config, run_fig1
from repro.experiments.fig2 import FIG2_WORKLOADS, render_fig2_panel, run_fig2_panel
from repro.experiments.model_zoo import load_workload
from repro.experiments.reporting import (
    render_ablation,
    render_fig1,
    results_dir,
    save_devices_csv,
    save_fig1_csv,
    save_retention_csv,
    save_spatial_csv,
    save_sweep_csv,
)
from repro.experiments.retention import render_retention, run_retention
from repro.experiments.spatial import render_spatial, run_spatial
from repro.experiments.table1 import render_table1, run_table1
from repro.obs import TRACER
from repro.robustness import PartialGridError, ReproError
from repro.utils.rng import RngStream

EXPERIMENTS = ("fig1", "table1", "fig2a", "fig2b", "fig2c", "ablations",
               "devices", "retention", "spatial")


def _run_fig1(scale, out_dir, batched=True):
    zoo = load_workload(scale.workload("lenet-digits"))
    config = Fig1Config(
        n_weights=scale.fig1_weights,
        mc_runs=scale.fig1_mc_runs,
        eval_samples=scale.fig1_eval_samples,
    )
    result = run_fig1(zoo, config, RngStream(101).child("fig1"), batched=batched)
    print(render_fig1(result, workload=zoo.spec.key))
    path = save_fig1_csv(result, os.path.join(out_dir, "fig1.csv"))
    print(f"[saved {path}]")


def _save_plans(plans, out_dir, name):
    """Persist a scenario's resolved plans for offline reuse."""
    from repro.plan import save_plans

    path = save_plans(os.path.join(out_dir, f"{name}_plans.json"), plans)
    print(f"[saved {path}]")


def _report_back(reports):
    """Print a scenario's robustness summary when anything happened."""
    report = reports[-1] if reports else None
    if report is not None and report.eventful:
        print(report.render())
    return report


def _run_table1(scale, out_dir, batched=True, processes=None, jobs=None,
                workers=None, save_plans=False, resume=None):
    plans = {} if save_plans else None
    reports = []
    result = run_table1(scale, batched=batched, processes=processes,
                        jobs=jobs, workers=workers, plans_out=plans,
                        resume=resume, report_out=reports)
    print(render_table1(result))
    for sigma, outcome in result.outcomes.items():
        path = save_sweep_csv(
            outcome, os.path.join(out_dir, f"table1_sigma{sigma:g}.csv")
        )
        print(f"[saved {path}]")
    if plans is not None:
        _save_plans(plans, out_dir, "table1")
    return _report_back(reports)


def _run_fig2(scale, out_dir, panel, batched=True, processes=None):
    outcome = run_fig2_panel(scale, panel, batched=batched, processes=processes)
    print(render_fig2_panel(outcome, panel))
    path = save_sweep_csv(outcome, os.path.join(out_dir, f"fig2{panel}.csv"))
    print(f"[saved {path}]")


def _run_devices(scale, out_dir, batched=True, processes=None, jobs=None,
                 workers=None, save_plans=False, resume=None):
    plans = {} if save_plans else None
    reports = []
    result = run_devices(scale, batched=batched, processes=processes,
                         jobs=jobs, workers=workers, plans_out=plans,
                         resume=resume, report_out=reports)
    print(render_devices(result))
    path = save_devices_csv(result, os.path.join(out_dir, "devices.csv"))
    print(f"[saved {path}]")
    if plans is not None:
        _save_plans(plans, out_dir, "devices")
    return _report_back(reports)


def _run_retention(scale, out_dir, batched=True, processes=None, jobs=None,
                   workers=None, save_plans=False, resume=None):
    plans = {} if save_plans else None
    reports = []
    result = run_retention(scale, batched=batched, processes=processes,
                           jobs=jobs, workers=workers, plans_out=plans,
                           resume=resume, report_out=reports)
    print(render_retention(result))
    path = save_retention_csv(result, os.path.join(out_dir, "retention.csv"))
    print(f"[saved {path}]")
    if plans is not None:
        _save_plans(plans, out_dir, "retention")
    return _report_back(reports)


def _run_spatial(scale, out_dir, batched=True, processes=None, jobs=None,
                 workers=None, save_plans=False, resume=None):
    plans = {} if save_plans else None
    reports = []
    result = run_spatial(scale, batched=batched, processes=processes,
                         jobs=jobs, workers=workers, plans_out=plans,
                         resume=resume, report_out=reports)
    print(render_spatial(result))
    path = save_spatial_csv(result, os.path.join(out_dir, "spatial.csv"))
    print(f"[saved {path}]")
    if plans is not None:
        _save_plans(plans, out_dir, "spatial")
    return _report_back(reports)


def _run_ablations(scale, out_dir):
    zoo = load_workload(scale.workload("lenet-digits"))
    rng = RngStream(404).child("ablations")
    studies = (
        ("granularity", ablation_mod.ablate_granularity),
        ("device_bits", ablation_mod.ablate_device_bits),
        ("tie_break", ablation_mod.ablate_tie_break),
        ("curvature_batches", ablation_mod.ablate_curvature_batches),
        ("scorers", ablation_mod.ablate_scorers),
        ("differential", ablation_mod.ablate_differential),
    )
    for name, fn in studies:
        rows = fn(zoo, rng.child(name))
        print(render_ablation(rows, title=f"Ablation — {name}"))
        print()


def main(argv=None):
    """CLI entry point (also exposed as the ``repro-experiments`` script)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        # The serving subcommand has its own flag set (port, host,
        # workers) and lifecycle; ``run()``'s taxonomy wrapper still
        # applies — startup/shutdown failures exit 64/74/75.
        from repro.serve.cli import serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        description="Regenerate the SWIM paper's tables and figures."
    )
    parser.add_argument(
        "experiments", nargs="+",
        choices=EXPERIMENTS + ("all",),
        help="which experiment(s) to run",
    )
    parser.add_argument("--scale", default=None,
                        help="smoke | default | full (or REPRO_SCALE)")
    parser.add_argument("--output-dir", default=None,
                        help="directory for CSV artifacts")
    parser.add_argument("--scalar", action="store_true",
                        help="use the scalar per-trial Monte Carlo loop "
                             "instead of the trial-batched engine")
    parser.add_argument("--workers", type=int, default=None,
                        help="size the work-rectangle scheduler's fork "
                             "pool over a scenario's (cells x trial-"
                             "blocks) tiles; 0 = auto-size to the "
                             "detected core count; bitwise-identical to "
                             "serial (or REPRO_WORKERS)")
    parser.add_argument("--processes", type=int, default=None,
                        help="deprecated alias (REPRO_MC_PROCESSES): "
                             "combines with --jobs into the --workers "
                             "rectangle pool; still the trial-pool size "
                             "for fig2's scalar loop")
    parser.add_argument("--jobs", type=int, default=None,
                        help="deprecated alias (REPRO_JOBS): combines "
                             "with --processes into the --workers "
                             "rectangle pool")
    parser.add_argument("--save-plans", action="store_true",
                        help="also write each scenario's resolved "
                             "selection plans as <scenario>_plans.json "
                             "for offline reuse")
    parser.add_argument("--resume", action="store_true",
                        help="skip scenario cells whose checkpoints are "
                             "already in the artifact cache (e.g. after "
                             "a crash mid-grid; or REPRO_RESUME=1); "
                             "resumed output is byte-identical")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record trace spans and write them as JSONL "
                             "to PATH (plus a chrome://tracing twin next "
                             "to it); results stay byte-identical")
    args = parser.parse_args(argv)

    scale = get_scale(args.scale)
    out_dir = results_dir(args.output_dir)
    todo = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    batched = not args.scalar
    resume = True if args.resume else None
    reports = []
    if args.jobs is not None or args.processes is not None:
        print("note: --jobs/--processes are deprecated; they now combine "
              "into one --workers pool over the work rectangle")
    if args.trace:
        from repro.obs import enable_tracing

        enable_tracing()

    print(f"# scale preset: {scale.name}")
    for name in todo:
        start = time.time()
        print(f"\n=== {name} ===")
        with TRACER.span(f"runner.{name}", scale=scale.name):
            _run_one(name, scale, out_dir, args, batched, resume, reports)
        print(f"[{name} took {time.time() - start:.1f}s]")

    if args.trace:
        _write_trace(args.trace)

    failed = [
        (report.scenario, cell)
        for report in reports if report is not None
        for cell in report.failed
    ]
    if failed:
        raise PartialGridError(
            f"{len(failed)} cell(s) failed permanently: " + "; ".join(
                f"{scenario} {cell.key!r} ({cell.error})"
                for scenario, cell in failed
            )
        )
    return 0


def _run_one(name, scale, out_dir, args, batched, resume, reports):
    """Dispatch one experiment name (traced as ``runner.<name>``)."""
    if name == "fig1":
        _run_fig1(scale, out_dir, batched=batched)
    elif name == "table1":
        reports.append(_run_table1(
            scale, out_dir, batched=batched,
            processes=args.processes, jobs=args.jobs,
            workers=args.workers,
            save_plans=args.save_plans, resume=resume))
    elif name.startswith("fig2"):
        _run_fig2(scale, out_dir, name[-1], batched=batched,
                  processes=args.processes)
    elif name == "devices":
        reports.append(_run_devices(
            scale, out_dir, batched=batched,
            processes=args.processes, jobs=args.jobs,
            workers=args.workers,
            save_plans=args.save_plans, resume=resume))
    elif name == "retention":
        reports.append(_run_retention(
            scale, out_dir, batched=batched,
            processes=args.processes, jobs=args.jobs,
            workers=args.workers,
            save_plans=args.save_plans, resume=resume))
    elif name == "spatial":
        reports.append(_run_spatial(
            scale, out_dir, batched=batched,
            processes=args.processes, jobs=args.jobs,
            workers=args.workers,
            save_plans=args.save_plans, resume=resume))
    elif name == "ablations":
        _run_ablations(scale, out_dir)


def _write_trace(path):
    """Drain the tracer and export JSONL plus its chrome://tracing twin."""
    from repro.obs import chrome_trace_path, write_chrome_trace, write_spans_jsonl

    spans = TRACER.drain()
    jsonl = write_spans_jsonl(path, spans)
    chrome = write_chrome_trace(chrome_trace_path(path), spans)
    print(f"[trace: {len(spans)} span(s) -> {jsonl} (+ {chrome})]")


def run(argv=None):
    """``main`` behind the exception taxonomy: one-line errors, typed codes.

    Infrastructure and usage failures surface as a single ``error:``
    line and the family's exit code (64 usage, 70 software, 74 cache
    I/O, 75 partial/temporary) instead of a traceback — tracebacks are
    for bugs, not for a mistyped flag or a full disk.
    """
    try:
        return main(argv)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except OSError as exc:
        # Untyped filesystem trouble (unwritable REPRO_CACHE_DIR or
        # results dir, vanished workload cache) — same family as
        # CacheWriteError, same sysexits EX_IOERR code.
        print(f"error: cache/results I/O failed: {exc}", file=sys.stderr)
        return 74


if __name__ == "__main__":
    sys.exit(run())
