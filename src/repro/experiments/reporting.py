"""Rendering and persistence of experiment results.

Keeps the drivers (fig1/table1/fig2/ablations) free of formatting code and
gives the benchmark harness one place to print paper-style output and save
CSVs under ``results/``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.utils.ascii_plot import scatter_plot
from repro.utils.tables import Table

__all__ = [
    "results_dir",
    "render_ablation",
    "render_fig1",
    "save_sweep_csv",
    "save_fig1_csv",
    "save_devices_csv",
    "save_retention_csv",
    "save_spatial_csv",
]


def results_dir(base=None):
    """Directory for CSV artifacts (created on demand)."""
    path = base or os.environ.get("REPRO_RESULTS_DIR") or os.path.join(
        os.getcwd(), "results"
    )
    os.makedirs(path, exist_ok=True)
    return path


def render_ablation(rows, title):
    """Format a list of :class:`AblationRow` as an aligned table."""
    if not rows:
        raise ValueError("no ablation rows to render")
    metric_names = list(rows[0].metrics)
    table = Table(["config"] + metric_names, title=title)
    for row in rows:
        cells = [row.label]
        for name in metric_names:
            value = row.metrics.get(name, "")
            cells.append(f"{value:.4g}" if isinstance(value, float) else str(value))
        table.add_row(cells)
    return table.render()


def render_fig1(result, workload="lenet-digits"):
    """Two ASCII scatters + the correlation summary (paper Fig. 1)."""
    parts = []
    parts.append(scatter_plot(
        result.magnitudes, 100.0 * result.accuracy_drops,
        title=f"Fig. 1a — accuracy drop vs |weight| ({workload})",
        xlabel="weight magnitude", ylabel="accuracy drop %",
        height=14,
    ))
    parts.append(scatter_plot(
        result.second_derivatives, 100.0 * result.accuracy_drops,
        title=f"Fig. 1b — accuracy drop vs second derivative ({workload})",
        xlabel="second derivative", ylabel="accuracy drop %",
        height=14,
    ))
    summary = Table(["correlation", "vs accuracy drop", "vs loss increase"],
                    title="Fig. 1 Pearson correlations")
    summary.add_row([
        "weight magnitude",
        f"{result.pearson_magnitude_acc:+.3f}",
        f"{result.pearson_magnitude_loss:+.3f}",
    ])
    summary.add_row([
        "second derivative",
        f"{result.pearson_curvature_acc:+.3f}",
        f"{result.pearson_curvature_loss:+.3f}",
    ])
    parts.append(summary.render())
    parts.append(
        f"(paper reports Pearson ~0.83 for Fig. 1b; Spearman here: "
        f"{result.spearman_curvature_acc:+.3f})"
    )
    return "\n\n".join(parts)


def save_sweep_csv(outcome, path):
    """Persist a SweepOutcome as CSV (one row per method x target)."""
    lines = ["workload,sigma,method,nwc_target,achieved_nwc,accuracy_mean,accuracy_std,runs"]
    lines.extend(_sweep_rows(outcome))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return path


def _sweep_rows(outcome, prefix=None):
    """CSV rows (method x target) of one SweepOutcome.

    ``prefix`` prepends an extra key column (technology, read time) for
    the multi-sweep scenario CSVs.
    """
    lead = "" if prefix is None else f"{prefix},"
    lines = []
    for method, curve in outcome.curves.items():
        means = curve.means()
        stds = curve.stds()
        for i, target in enumerate(curve.nwc_targets):
            lines.append(
                f"{lead}{outcome.workload},{outcome.sigma},{method},"
                f"{target},{curve.achieved_nwc[i]:.6f},{means[i]:.6f},"
                f"{stds[i]:.6f},{curve.accuracy_runs.shape[0]}"
            )
    return lines


def save_devices_csv(result, path):
    """Persist a DevicesResult: one row per technology x method x target."""
    lines = [
        "technology,workload,sigma,method,nwc_target,achieved_nwc,"
        "accuracy_mean,accuracy_std,runs"
    ]
    for name, outcome in result.outcomes.items():
        lines.extend(_sweep_rows(outcome, name))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return path


def save_retention_csv(result, path):
    """Persist a RetentionResult: one row per technology x time x method x target."""
    lines = [
        "read_time_s,technology,workload,sigma,method,nwc_target,"
        "achieved_nwc,accuracy_mean,accuracy_std,runs"
    ]
    for (technology, t), outcome in sorted(result.outcomes.items()):
        lines.extend(_sweep_rows(outcome, f"{t:g},{technology}"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return path


def save_spatial_csv(result, path):
    """Persist a SpatialResult: one row per correlation length x method x target."""
    lines = [
        "correlation_length,technology,workload,sigma,method,nwc_target,"
        "achieved_nwc,accuracy_mean,accuracy_std,runs"
    ]
    for length, outcome in sorted(result.outcomes.items()):
        lines.extend(_sweep_rows(outcome, f"{length:g},{result.technology}"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return path


def save_fig1_csv(result, path):
    """Persist Fig. 1 per-weight samples as CSV."""
    lines = ["magnitude,second_derivative,accuracy_drop,loss_increase"]
    for m, h, a, l in zip(result.magnitudes, result.second_derivatives,
                          result.accuracy_drops, result.loss_increases):
        lines.append(f"{m:.8g},{h:.8g},{a:.8g},{l:.8g}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return path
