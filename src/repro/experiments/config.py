"""Experiment scale presets and workload specifications.

The paper's experiments run 3,000 Monte Carlo trials on full-width models
with GPU training; this CPU-only reproduction organizes every knob that
trades fidelity for time into three presets:

``smoke``
    Seconds-scale: tiny models, few trials.  Used by CI and the default
    pytest-benchmark run gates.
``default``
    Minutes-scale: the paper's topologies at reduced width, enough trials
    for stable means.  This is what EXPERIMENTS.md reports.
``full``
    The paper's parameter counts and 3,000 trials.  Provided for
    completeness; expect GPU-days of CPU time.

Select with the ``REPRO_SCALE`` environment variable or pass explicitly.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field

__all__ = ["WorkloadSpec", "ScalePreset", "get_scale", "SCALES"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One model + dataset training configuration.

    ``arch`` selects the model family; ``dataset`` the synthetic data
    generator.  ``weight_bits``/``act_bits`` follow the paper: 4/4 for
    LeNet (Sec. 4.3), 6/6 for ConvNet and ResNet-18 (Sec. 4.4-4.5).
    """

    key: str
    arch: str
    dataset: str
    n_train: int
    n_test: int
    epochs: int
    batch_size: int = 64
    lr: float = 0.03
    width_mult: float = 1.0
    weight_bits: int = 4
    act_bits: int = 4
    num_classes: int = 10
    image_size: int = 28
    seed: int = 20220217  # arXiv submission date of the paper
    data_version: int = 3  # bump when dataset generators change

    def cache_config(self):
        """JSON-serializable identity for the artifact cache."""
        return asdict(self)


@dataclass(frozen=True)
class ScalePreset:
    """All scale-dependent knobs of the experiment drivers.

    ``mc_runs_devices`` / ``mc_runs_retention`` / ``mc_runs_spatial``
    size the technology, drift and clustered-variation scenarios
    (``runner devices`` / ``retention`` / ``spatial``);
    ``retention_times`` is the read-time grid in seconds (the first entry
    should be the write-verify reference time ``t0 = 1 s``) and
    ``spatial_correlation_lengths`` the correlation-length grid (in
    devices; 0 = i.i.d.) the spatial stress test sweeps.
    """

    name: str
    workloads: dict
    mc_runs_table1: int
    mc_runs_fig2: int
    fig1_weights: int
    fig1_mc_runs: int
    fig1_eval_samples: int
    eval_samples: int
    sense_samples: int
    insitu_lr: float = 0.01
    mc_runs_devices: int = 2
    mc_runs_retention: int = 2
    retention_times: tuple = (1.0, 3.6e3, 8.64e4, 2.592e6)
    mc_runs_spatial: int = 2
    spatial_correlation_lengths: tuple = (0.0, 2.0, 8.0, 32.0)

    def workload(self, key):
        """Look up one workload spec."""
        if key not in self.workloads:
            raise KeyError(f"unknown workload {key!r}; known: {sorted(self.workloads)}")
        return self.workloads[key]


def _lenet_spec(n_train, n_test, epochs, **kwargs):
    return WorkloadSpec(
        key="lenet-digits", arch="lenet", dataset="digits",
        n_train=n_train, n_test=n_test, epochs=epochs,
        weight_bits=4, act_bits=4, image_size=28, **kwargs,
    )


def _convnet_spec(n_train, n_test, epochs, width_mult, **kwargs):
    return WorkloadSpec(
        key="convnet-cifar", arch="convnet", dataset="cifar",
        n_train=n_train, n_test=n_test, epochs=epochs,
        width_mult=width_mult, weight_bits=6, act_bits=6,
        image_size=32, **kwargs,
    )


def _resnet_cifar_spec(n_train, n_test, epochs, width_mult, **kwargs):
    return WorkloadSpec(
        key="resnet18-cifar", arch="resnet18", dataset="cifar",
        n_train=n_train, n_test=n_test, epochs=epochs,
        width_mult=width_mult, weight_bits=6, act_bits=6,
        image_size=32, **kwargs,
    )


def _resnet_tiny_spec(n_train, n_test, epochs, width_mult, **kwargs):
    kwargs.setdefault("num_classes", 20)
    return WorkloadSpec(
        key="resnet18-tiny", arch="resnet18", dataset="tiny",
        n_train=n_train, n_test=n_test, epochs=epochs,
        width_mult=width_mult, weight_bits=6, act_bits=6,
        image_size=64, **kwargs,
    )


SMOKE = ScalePreset(
    name="smoke",
    workloads={
        "lenet-digits": _lenet_spec(600, 200, 6, lr=0.03),
        "convnet-cifar": _convnet_spec(400, 160, 4, width_mult=0.1, lr=0.02),
        "resnet18-cifar": _resnet_cifar_spec(400, 160, 4, width_mult=0.1, lr=0.02),
        "resnet18-tiny": _resnet_tiny_spec(400, 160, 4, width_mult=0.1, lr=0.02),
    },
    mc_runs_table1=2,
    mc_runs_fig2=1,
    fig1_weights=24,
    fig1_mc_runs=3,
    fig1_eval_samples=128,
    eval_samples=160,
    sense_samples=128,
    mc_runs_devices=2,
    mc_runs_retention=2,
    retention_times=(1.0, 3.6e3, 2.592e6),  # write time, 1 hour, 1 month
    mc_runs_spatial=2,
    spatial_correlation_lengths=(0.0, 8.0),
)

DEFAULT = ScalePreset(
    name="default",
    workloads={
        "lenet-digits": _lenet_spec(3000, 800, 8, lr=0.03),
        "convnet-cifar": _convnet_spec(1800, 500, 6, width_mult=0.25, lr=0.02),
        "resnet18-cifar": _resnet_cifar_spec(1800, 500, 6, width_mult=0.25, lr=0.02),
        "resnet18-tiny": _resnet_tiny_spec(1200, 400, 6, width_mult=0.125, lr=0.02),
    },
    mc_runs_table1=6,
    mc_runs_fig2=1,
    fig1_weights=72,
    fig1_mc_runs=6,
    fig1_eval_samples=400,
    eval_samples=256,
    sense_samples=512,
    mc_runs_devices=6,
    mc_runs_retention=6,
    retention_times=(1.0, 3.6e3, 8.64e4, 2.592e6),  # + 1 day
    mc_runs_spatial=6,
    spatial_correlation_lengths=(0.0, 2.0, 8.0, 32.0),
)

FULL = ScalePreset(
    name="full",
    workloads={
        "lenet-digits": _lenet_spec(48000, 10000, 30, lr=0.03),
        "convnet-cifar": _convnet_spec(50000, 10000, 60, width_mult=1.0, lr=0.02),
        "resnet18-cifar": _resnet_cifar_spec(50000, 10000, 60, width_mult=1.0, lr=0.02),
        "resnet18-tiny": _resnet_tiny_spec(100000, 10000, 60, width_mult=1.0,
                                           lr=0.02, num_classes=200),
    },
    mc_runs_table1=3000,
    mc_runs_fig2=3000,
    fig1_weights=1000,
    fig1_mc_runs=100,
    fig1_eval_samples=10000,
    eval_samples=10000,
    sense_samples=4096,
    mc_runs_devices=3000,
    mc_runs_retention=3000,
    retention_times=(1.0, 3.6e3, 8.64e4, 2.592e6, 3.1536e7),  # + 1 year
    mc_runs_spatial=3000,
    spatial_correlation_lengths=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
)

SCALES = {s.name: s for s in (SMOKE, DEFAULT, FULL)}


def get_scale(name=None):
    """Resolve a preset from an explicit name or ``REPRO_SCALE`` (default)."""
    resolved = name or os.environ.get("REPRO_SCALE", "default")
    if resolved not in SCALES:
        raise KeyError(f"unknown scale {resolved!r}; known: {sorted(SCALES)}")
    return SCALES[resolved]
