"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments.config import SCALES, ScalePreset, WorkloadSpec, get_scale
from repro.experiments.devices import DevicesResult, render_devices, run_devices
from repro.experiments.fig1 import Fig1Config, Fig1Result, run_fig1
from repro.experiments.fig2 import FIG2_WORKLOADS, render_fig2_panel, run_fig2_panel
from repro.experiments.model_zoo import ZooModel, build_data, build_model, load_workload
from repro.experiments.retention import (
    RETENTION_TECHNOLOGIES,
    RetentionResult,
    render_retention,
    run_retention,
)
from repro.experiments.spatial import (
    SPATIAL_METHODS,
    SpatialResult,
    render_spatial,
    run_spatial,
)
from repro.experiments.sweeps import (
    MethodCurve,
    SweepOutcome,
    WRITE_VERIFY_METHODS,
    run_method_sweep,
)
from repro.experiments.table1 import (
    TABLE1_SIGMAS,
    Table1Result,
    render_table1,
    run_table1,
)

__all__ = [
    "DevicesResult",
    "FIG2_WORKLOADS",
    "Fig1Config",
    "Fig1Result",
    "MethodCurve",
    "RETENTION_TECHNOLOGIES",
    "RetentionResult",
    "SCALES",
    "SPATIAL_METHODS",
    "ScalePreset",
    "SpatialResult",
    "SweepOutcome",
    "TABLE1_SIGMAS",
    "Table1Result",
    "WRITE_VERIFY_METHODS",
    "WorkloadSpec",
    "ZooModel",
    "build_data",
    "build_model",
    "get_scale",
    "load_workload",
    "render_devices",
    "render_fig2_panel",
    "render_retention",
    "render_spatial",
    "render_table1",
    "run_devices",
    "run_fig1",
    "run_fig2_panel",
    "run_method_sweep",
    "run_retention",
    "run_spatial",
    "run_table1",
]
