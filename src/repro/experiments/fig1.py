"""Figure 1 reproduction: which metric predicts a weight's sensitivity?

The paper perturbs each LeNet weight individually with additive Gaussian
noise (the device model's value-independent noise), measures the MC-average
accuracy drop, and plots it against (a) the weight's magnitude — weak
correlation — and (b) the weight's second derivative — strong correlation
(Pearson 0.83).  This driver reproduces both scatters on sampled weights
and also records the *loss increase*, which is the quantity Eq. 5 actually
predicts (accuracy drop is a discretized proxy of it).

The Monte Carlo trials run trial-batched by default: every trial of a
perturbed weight differs from the baseline in exactly one tensor, so the
activations *upstream* of that tensor's layer are shared by all of its
trials and are computed once per tensor (prefix sharing), the perturbed
layer applies all trial weight variants to that shared input in a single
batched matmul (``forward_multi``), and only the suffix of the network
runs per-trial (folded trial-major).  ``batched=False`` keeps the scalar
one-forward-per-trial reference path; both draw identical perturbations
from the same RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cim import DeviceConfig, MappingConfig, WeightMapper
from repro.core import SwimScorer, WeightSpace, evaluate_accuracy
from repro.nn import functional as F
from repro.nn.losses import CrossEntropyLoss
from repro.utils.stats import pearson, spearman

__all__ = ["Fig1Config", "Fig1Result", "run_fig1"]

#: Upper bound on folded (trials * eval samples) per batched forward.
_MAX_FOLD_SAMPLES = 2048


@dataclass(frozen=True)
class Fig1Config:
    """Knobs of the perturbation study."""

    n_weights: int = 120
    mc_runs: int = 10
    eval_samples: int = 400
    sigma: float = 0.1
    device_bits: int = 4
    bypass_act_quant: bool = True
    seed_label: str = "fig1"


@dataclass
class Fig1Result:
    """Per-sampled-weight metrics and the headline correlations."""

    magnitudes: np.ndarray
    second_derivatives: np.ndarray
    accuracy_drops: np.ndarray
    loss_increases: np.ndarray
    pearson_magnitude_acc: float
    pearson_curvature_acc: float
    pearson_magnitude_loss: float
    pearson_curvature_loss: float
    spearman_curvature_acc: float


def _sample_entries(space, n_weights, rng):
    """Sample flat weight indices, stratified equally across tensors.

    Uniform sampling would land almost every draw in the largest fully
    connected tensor, whose weights share nearly identical (low)
    sensitivity; stratification reproduces the cross-layer sensitivity
    spread the paper's all-weights scatter shows.
    """
    gen = rng.generator
    names = space.names
    per_tensor = max(n_weights // len(names), 1)
    chosen = []
    offset = 0
    for name in names:
        size = int(np.prod(space.shape_of(name)))
        take = min(per_tensor, size)
        chosen.append(offset + gen.choice(size, size=take, replace=False))
        offset += size
    flat = np.unique(np.concatenate(chosen))
    if flat.size > n_weights:
        flat = gen.choice(flat, size=n_weights, replace=False)
    return np.sort(flat)


def _perturbation_mc_scalar(model, layers, base_weights, indices, deltas,
                            locate, eval_x, eval_y, base_accuracy, base_loss,
                            loss_fn):
    """Reference path: one full forward per (weight, trial)."""
    acc_drops = np.empty(indices.size)
    loss_increases = np.empty(indices.size)
    for pos, flat_index in enumerate(indices):
        name, inner = locate(int(flat_index))
        layer = layers[name]
        drops = []
        increases = []
        for delta in deltas[pos]:
            # Antithetic +/- pair: the first-order Taylor term g*delta
            # cancels exactly in the pair average, leaving the curvature
            # signal 0.5*H*delta^2 that Fig. 1b plots (variance reduction
            # over the paper's plain Monte Carlo).
            for signed in (delta, -delta):
                perturbed = base_weights[name].copy()
                perturbed.reshape(-1)[inner] += signed
                layer.set_weight_override(perturbed)
                logits = model(eval_x)
                accuracy = float((np.argmax(logits, axis=1) == eval_y).mean())
                value = loss_fn(logits, eval_y)
                drops.append(base_accuracy - accuracy)
                increases.append(value - base_loss)
        layer.set_weight_override(base_weights[name])
        acc_drops[pos] = float(np.mean(drops))
        loss_increases[pos] = float(np.mean(increases))
    return acc_drops, loss_increases


def _trial_stats(logits, eval_y):
    """Per-trial (accuracy, mean CE loss) from ``(T, N, C)`` logits."""
    accuracy = (np.argmax(logits, axis=2) == eval_y[None, :]).mean(axis=1)
    log_probs = F.log_softmax(logits, axis=2)
    picked = log_probs[:, np.arange(logits.shape[1]), eval_y]
    return accuracy, -picked.mean(axis=1)


def _perturbation_mc_batched(model, layers, base_weights, indices, deltas,
                             locate, eval_x, eval_y, base_accuracy,
                             base_loss):
    """Trial-batched path via :class:`~repro.core.perturbation.PerturbationEvaluator`.

    Weights are grouped by owning tensor; the evaluator shares that
    tensor's prefix activations across all of its trials, propagates each
    single-weight perturbation incrementally through its output channel,
    and only runs the network's tail per trial.
    """
    from repro.core.perturbation import PerturbationEvaluator

    mc_runs = deltas.shape[1]
    trials_per_weight = 2 * mc_runs
    acc_drops = np.empty(indices.size)
    loss_increases = np.empty(indices.size)

    by_tensor = {}
    for pos, flat_index in enumerate(indices):
        name, inner = locate(int(flat_index))
        by_tensor.setdefault(name, []).append((pos, inner))

    evaluator = PerturbationEvaluator(
        model, eval_x, max_fold_samples=_MAX_FOLD_SAMPLES
    )
    for name, entries in by_tensor.items():
        layer = layers[name]
        inner = np.repeat([e[1] for e in entries], trials_per_weight)
        signed = np.empty(len(entries) * trials_per_weight)
        for j, (pos, _) in enumerate(entries):
            row = j * trials_per_weight
            signed[row : row + trials_per_weight : 2] = deltas[pos]
            signed[row + 1 : row + trials_per_weight : 2] = -deltas[pos]
        logits = evaluator.evaluate(layer, inner, signed)
        accuracy, losses = _trial_stats(logits, eval_y)
        for j, (pos, _) in enumerate(entries):
            window = slice(j * trials_per_weight, (j + 1) * trials_per_weight)
            acc_drops[pos] = float((base_accuracy - accuracy[window]).mean())
            loss_increases[pos] = float((losses[window] - base_loss).mean())
    return acc_drops, loss_increases


def run_fig1(zoo, config, rng, batched=True):
    """Run the perturbation study on a trained workload.

    ``batched=True`` (default) evaluates all Monte Carlo perturbations of
    a weight in one trial-batched pass; ``batched=False`` is the scalar
    reference loop.  Both consume identical perturbation draws.

    Returns
    -------
    Fig1Result
    """
    model, data = zoo.model, zoo.data
    # Per-weight loss increases can be ~1e-6; run the whole study in
    # float64 so they are not swamped by single-precision forward noise.
    for param in model.parameters():
        param.data = param.data.astype(np.float64)
    saved_peaks = {}
    if config.bypass_act_quant:
        # Activation quantization turns the smooth Taylor response Eq. 5
        # analyses into O(delta) discretization jumps; the sensitivity
        # study runs on the float activation path (the regime the paper's
        # analysis — and its correlation figure — assumes).
        from repro.nn.quant import ActQuant

        for module in model.modules():
            if isinstance(module, ActQuant):
                saved_peaks[id(module)] = (module, module.running_peak)
                module.running_peak = 0.0
    space = WeightSpace.from_model(model)
    mapping = MappingConfig(
        weight_bits=zoo.spec.weight_bits,
        device=DeviceConfig(bits=config.device_bits, sigma=config.sigma),
    )
    mapper = WeightMapper(mapping)

    eval_x = data.test_x[: config.eval_samples]
    eval_y = data.test_y[: config.eval_samples]
    loss_fn = CrossEntropyLoss()

    # Per-tensor noise std in weight units (Eq. 16 at this sigma) and the
    # quantized baseline weights the perturbations are applied around.
    params = dict(model.named_parameters())
    layers = {}
    for mod_name, module in model.named_modules():
        from repro.nn.layers.base import WeightedLayer

        if isinstance(module, WeightedLayer):
            prefix = f"{mod_name}." if mod_name else ""
            layers[f"{prefix}weight"] = module

    base_weights = {}
    scales = {}
    for name in space.names:
        codes, scale = mapper.quantize(params[name].data)
        scales[name] = scale
        base_weights[name] = (codes * scale).astype(np.float64)
    # Paper Sec. 3.2: "we perturb each weight in LeNet with the SAME
    # additive Gaussian noise" — one global sigma in weight units (the
    # device-model noise at the median tensor scale), for every weight.
    # Per-tensor scaling would measure H_ii * sigma_tensor^2 instead of
    # H_ii and re-introduce a magnitude confound.
    global_std = mapping.code_noise_std() * float(
        np.median([scales[name] for name in space.names])
    )
    noise_std = {name: global_std for name in space.names}

    # Deploy the quantized baseline everywhere so the reference accuracy
    # and the perturbed evaluations share the same regime.
    for name, layer in layers.items():
        layer.set_weight_override(
            base_weights[name].astype(layer.weight.data.dtype)
        )
    model.eval()
    base_accuracy = evaluate_accuracy(model, eval_x, eval_y)
    base_loss = loss_fn(model(eval_x), eval_y)

    # Sensitivity metrics of the sampled weights.
    indices = _sample_entries(space, config.n_weights, rng.child("sample"))
    curvature_flat = SwimScorer(batch_size=256, max_batches=2).scores(
        model, space, data.train_x[:512], data.train_y[:512]
    )
    magnitude_flat = np.abs(space.gather_from_model(model, "data"))

    # Locate each flat index inside its tensor.
    offsets = {}
    cursor = 0
    for name in space.names:
        size = int(np.prod(space.shape_of(name)))
        offsets[name] = (cursor, cursor + size)
        cursor += size

    def locate(flat_index):
        for name, (start, stop) in offsets.items():
            if start <= flat_index < stop:
                return name, flat_index - start
        raise IndexError(flat_index)

    noise_rng = rng.child("noise").generator
    # One row of deltas per sampled weight, drawn in the same stream
    # order the scalar loop uses, so both paths see identical noise.
    deltas = np.stack(
        [
            noise_rng.normal(0.0, noise_std[locate(int(i))[0]],
                             size=config.mc_runs)
            for i in indices
        ]
    )

    if batched:
        acc_drops, loss_increases = _perturbation_mc_batched(
            model, layers, base_weights, indices, deltas, locate,
            eval_x, eval_y, base_accuracy, base_loss,
        )
    else:
        acc_drops, loss_increases = _perturbation_mc_scalar(
            model, layers, base_weights, indices, deltas, locate,
            eval_x, eval_y, base_accuracy, base_loss, loss_fn,
        )

    for layer in layers.values():
        layer.clear_weight_override()
    for module, peak in saved_peaks.values():
        module.running_peak = peak

    curvature = curvature_flat[indices]
    magnitude = magnitude_flat[indices]
    return Fig1Result(
        magnitudes=magnitude,
        second_derivatives=curvature,
        accuracy_drops=acc_drops,
        loss_increases=loss_increases,
        pearson_magnitude_acc=pearson(magnitude, acc_drops),
        pearson_curvature_acc=pearson(curvature, acc_drops),
        pearson_magnitude_loss=pearson(magnitude, loss_increases),
        pearson_curvature_loss=pearson(curvature, loss_increases),
        spearman_curvature_acc=spearman(curvature, acc_drops),
    )
