"""Device-technology scenario: accuracy-vs-NWC across memory materials.

CIMulator-style question the paper never asks: how do SWIM's write-verify
savings transfer across device technologies?  Each registered
:class:`~repro.cim.DeviceTechnology` (``fefet`` — the paper's operating
point — plus ``rram``, ``pcm``, ``fefet-spatial``, ``mram``; read-path
variants like ``pcm-comp`` are skipped since nothing drifts at
read-after-write) runs the Fig. 2-style paired Monte Carlo sweep on
LeNet through its own nonideality stack, batched by default, and the
summary adds the endurance angle: expected re-deployments of the
most-stressed cell under each technology's pulse budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cim import get_technology, technology_names
from repro.core.metrics import DEFAULT_NWC_TARGETS
from repro.experiments.model_zoo import load_workload
from repro.plan import PlanRequest, ScenarioCell, ScenarioOrchestrator
from repro.utils.rng import RngStream
from repro.utils.tables import Table

__all__ = ["DevicesResult", "run_devices", "render_devices"]

DEVICES_METHODS = ("swim", "hetero_swim", "magnitude", "random")


@dataclass
class DevicesResult:
    """Per-technology sweep outcomes plus workload metadata."""

    workload: str
    clean_accuracy: float
    nwc_targets: tuple
    outcomes: dict = field(default_factory=dict)  # tech name -> SweepOutcome


def run_devices(scale, technologies=None, nwc_targets=DEFAULT_NWC_TARGETS,
                methods=DEVICES_METHODS, workload="lenet-digits", seed=11,
                use_cache=True, batched=True, processes=None, jobs=None,
                workers=None, plan_cache=None, plans_out=None, resume=None,
                report_out=None):
    """Run the accuracy-vs-NWC sweep for every registered technology.

    Parameters
    ----------
    scale:
        A :class:`~repro.experiments.config.ScalePreset`
        (``mc_runs_devices`` trials per technology).
    technologies:
        Iterable of registry names (default: every registered profile
        whose physics differ at read-after-write — drift-compensated
        variants are skipped, because this scenario deploys at
        ``read_time=None`` where they are statistically identical to
        their base technology; ``runner retention`` is where they
        differ).
    batched:
        Same Monte Carlo path selection as the paper sweeps; per-trial
        draws are identical in every mode.
    workers / jobs / processes:
        Size the work-rectangle fork pool over the scenario's
        (cells x trial-blocks) tiles (``workers`` or ``REPRO_WORKERS``;
        the deprecated ``jobs``/``processes`` pair combines into it);
        results are bitwise-equal to serial.
    plan_cache:
        Optional :class:`~repro.plan.PlanArtifactCache` for the
        selection planner (default: the shared on-disk cache).
    plans_out:
        Optional dict filled with the resolved ``technology ->
        SelectionPlan`` mapping (for ``--save-plans``).
    resume / report_out:
        Skip checkpointed cells (or ``REPRO_RESUME``), and an optional
        list collecting the orchestrator's :class:`~repro.robustness.
        report.RunReport`.

    Returns
    -------
    DevicesResult
    """
    zoo = load_workload(scale.workload(workload), use_cache=use_cache)
    names = (
        list(technologies)
        if technologies is not None
        else [
            name for name in technology_names()
            if not get_technology(name).drift_compensated
        ]
    )
    root = RngStream(seed).child("devices")
    result = DevicesResult(
        workload=zoo.spec.key,
        clean_accuracy=zoo.clean_accuracy,
        nwc_targets=tuple(nwc_targets),
    )
    orchestrator = ScenarioOrchestrator(
        zoo, eval_samples=scale.eval_samples,
        sense_samples=scale.sense_samples, cache=plan_cache,
    )
    cells = [
        ScenarioCell(
            key=name,
            request=PlanRequest(
                methods=tuple(methods),
                nwc_targets=tuple(nwc_targets),
                technology=name,
                weight_bits=zoo.spec.weight_bits,
            ),
            rng=root.child(name),
            mc_runs=scale.mc_runs_devices,
        )
        for name in names
    ]
    result.outcomes.update(
        orchestrator.run(cells, batched=batched, processes=processes,
                         jobs=jobs, workers=workers, resume=resume,
                         scenario="devices")
    )
    if plans_out is not None:
        plans_out.update(orchestrator.plans)
    if report_out is not None:
        report_out.append(orchestrator.report)
    return result


def render_devices(result):
    """Per-technology method tables plus a cross-technology summary."""
    parts = []
    for name, outcome in result.outcomes.items():
        tech = get_technology(name)
        table = Table(
            ["Method"] + [f"NWC={t:g}" for t in result.nwc_targets],
            title=(
                f"Devices — {name} (K={tech.bits}, sigma={outcome.sigma:g}, "
                f"{result.workload}, clean "
                f"{100 * result.clean_accuracy:.2f}%)"
            ),
        )
        for method, curve in outcome.curves.items():
            cells = [method]
            for i in range(len(result.nwc_targets)):
                stat = curve.mean_std(i)
                cells.append(f"{100 * stat.mean:.2f} ± {100 * stat.std:.2f}")
            table.add_row(cells)
        parts.append(table.render())

    summary = Table(
        ["technology", "K", "sigma", "acc@NWC=0", "acc@NWC=1",
         "mean pulses/dev", "deployments to failure"],
        title="Technology summary (SWIM curve, full write-verify wear over all trials)",
    )
    for name, outcome in result.outcomes.items():
        tech = get_technology(name)
        curve = outcome.curves.get("swim") or next(iter(outcome.curves.values()))
        means = curve.means()
        wear = outcome.wear or {}
        summary.add_row([
            name,
            str(tech.bits),
            f"{outcome.sigma:g}",
            f"{100 * means[0]:.2f}",
            f"{100 * means[-1]:.2f}",
            f"{wear.get('mean_pulses_per_device', float('nan')):.2f}",
            f"{wear.get('deployments_to_failure', float('nan')):.3g}",
        ])
    parts.append(summary.render())
    return "\n\n".join(parts)
