"""Table 1 reproduction: LeNet accuracy vs NWC under three device sigmas.

Paper layout: rows are (sigma, method), columns are NWC in
{0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}; each cell is mean +/- std accuracy
over Monte Carlo runs.  The paper's arrows (shared cells) are rendered as
explicit values here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import DEFAULT_NWC_TARGETS
from repro.experiments.model_zoo import load_workload
from repro.plan import PlanRequest, ScenarioCell, ScenarioOrchestrator
from repro.utils.rng import RngStream
from repro.utils.tables import Table

__all__ = ["Table1Result", "run_table1", "render_table1", "TABLE1_SIGMAS"]

TABLE1_SIGMAS = (0.1, 0.15, 0.2)
_METHOD_LABELS = {
    "swim": "SWIM",
    "magnitude": "Magnitude",
    "random": "Random",
    "insitu": "In-situ",
}


@dataclass
class Table1Result:
    """Sweep outcomes keyed by sigma, plus workload metadata."""

    workload: str
    clean_accuracy: float
    nwc_targets: tuple
    outcomes: dict = field(default_factory=dict)  # sigma -> SweepOutcome


def run_table1(scale, sigmas=TABLE1_SIGMAS, nwc_targets=DEFAULT_NWC_TARGETS,
               methods=("swim", "magnitude", "random", "insitu"),
               seed=1, use_cache=True, batched=True, processes=None,
               jobs=None, workers=None, plan_cache=None, plans_out=None,
               resume=None, report_out=None):
    """Run the Table 1 experiment at a given scale preset.

    ``batched`` selects the trial-batched Monte Carlo engine (default).
    ``workers`` sizes the work-rectangle scheduler's fork pool over the
    (cells x trial-blocks) tiles (``jobs``/``processes`` are deprecated
    aliases that combine into it; results bitwise-equal to serial); the
    deterministic selections themselves are planned once for all sigmas
    — the curvature ranking does not depend on the device noise level.
    ``resume`` skips checkpointed cells (or ``REPRO_RESUME``);
    ``report_out`` (a list, when given) collects the orchestrator's
    :class:`~repro.robustness.report.RunReport`.

    Returns
    -------
    Table1Result
    """
    zoo = load_workload(scale.workload("lenet-digits"), use_cache=use_cache)
    root = RngStream(seed).child("table1")
    result = Table1Result(
        workload=zoo.spec.key,
        clean_accuracy=zoo.clean_accuracy,
        nwc_targets=tuple(nwc_targets),
    )
    cells = [
        ScenarioCell(
            key=sigma,
            request=PlanRequest(
                methods=tuple(methods),
                nwc_targets=tuple(nwc_targets),
                sigma=sigma,
                weight_bits=zoo.spec.weight_bits,
            ),
            rng=root.child("sigma", str(sigma)),
            mc_runs=scale.mc_runs_table1,
            sweep_kwargs={"insitu_lr": scale.insitu_lr},
        )
        for sigma in sigmas
    ]
    orchestrator = ScenarioOrchestrator(
        zoo, eval_samples=scale.eval_samples,
        sense_samples=scale.sense_samples, cache=plan_cache,
    )
    result.outcomes.update(
        orchestrator.run(cells, batched=batched, processes=processes,
                         jobs=jobs, workers=workers, resume=resume,
                         scenario="table1")
    )
    if plans_out is not None:
        plans_out.update(orchestrator.plans)
    if report_out is not None:
        report_out.append(orchestrator.report)
    return result


def render_table1(result, as_markdown=False):
    """Render a Table1Result in the paper's row/column layout."""
    headers = ["sigma", "Method"] + [f"NWC={t:g}" for t in result.nwc_targets]
    table = Table(
        headers,
        title=(
            f"Table 1 — {result.workload}: accuracy (%) vs NWC "
            f"(clean accuracy {100 * result.clean_accuracy:.2f}%)"
        ),
    )
    for sigma, outcome in sorted(result.outcomes.items()):
        first = True
        for method, curve in outcome.curves.items():
            cells = [f"{sigma:g}" if first else "", _METHOD_LABELS[method]]
            for i in range(len(result.nwc_targets)):
                stat = curve.mean_std(i)
                cells.append(f"{100 * stat.mean:.2f} ± {100 * stat.std:.2f}")
            table.add_row(cells)
            first = False
        table.add_separator()
    return table.render_markdown() if as_markdown else table.render()
