"""Ablation studies on SWIM's design choices (beyond the paper's tables).

Each function isolates one choice DESIGN.md calls out:

- ``ablate_granularity`` — Algorithm 1's group size ``p`` (paper fixes 5%):
  smaller groups stop closer to the minimal NWC but evaluate more often.
- ``ablate_device_bits`` — bits-per-device K (paper fixes 4): more slices
  of lower-precision devices change the Eq. 16 noise composition.
- ``ablate_tie_break`` — the magnitude tie-breaker of Sec. 3.2.
- ``ablate_curvature_batches`` — how much data the single-pass curvature
  needs before the ranking stabilizes.
- ``ablate_scorers`` — the extension scorers (gradient, Fisher) between
  Magnitude and SWIM.
- ``ablate_differential`` — differential-column noise (2x devices/weight).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cim import CimAccelerator, DeviceConfig, MappingConfig
from repro.core import (
    MagnitudeScorer,
    SwimConfig,
    SwimScorer,
    WeightSpace,
    build_scorer,
    evaluate_accuracy,
    selective_write_verify,
)
from repro.utils.stats import spearman, summarize

__all__ = [
    "AblationRow",
    "ablate_granularity",
    "ablate_device_bits",
    "ablate_tie_break",
    "ablate_curvature_batches",
    "ablate_scorers",
    "ablate_differential",
]


@dataclass
class AblationRow:
    """One ablation configuration's outcome."""

    label: str
    metrics: dict = field(default_factory=dict)


def _mapping(zoo, sigma=0.1, device_bits=4, differential=False):
    return MappingConfig(
        weight_bits=zoo.spec.weight_bits,
        device=DeviceConfig(bits=device_bits, sigma=sigma),
        differential=differential,
    )


def _accuracy_at_fraction(zoo, accelerator, order, space, fraction,
                          eval_x, eval_y, run_rng):
    accelerator.program(run_rng.child("program").generator)
    accelerator.write_verify_all(run_rng.child("verify").generator)
    count = int(round(fraction * space.total_size))
    masks = space.masks_from_indices(order[:count])
    nwc = accelerator.apply_selection(masks)
    accuracy = evaluate_accuracy(zoo.model, eval_x, eval_y)
    return accuracy, nwc


def ablate_granularity(zoo, rng, granularities=(0.01, 0.05, 0.1, 0.25),
                       sigma=0.1, delta_a=0.01, eval_samples=300,
                       sense_samples=256):
    """Algorithm 1 under different group sizes p."""
    accelerator = CimAccelerator(zoo.model, mapping_config=_mapping(zoo, sigma))
    data = zoo.data
    eval_x, eval_y = data.test_x[:eval_samples], data.test_y[:eval_samples]
    rows = []
    for p in granularities:
        result = selective_write_verify(
            zoo.model, accelerator, SwimScorer(max_batches=2),
            eval_x, eval_y,
            baseline_accuracy=zoo.clean_accuracy,
            config=SwimConfig(delta_a=delta_a, granularity=p),
            rng=rng.child("p", str(p)),
            sense_x=data.train_x[:sense_samples],
            sense_y=data.train_y[:sense_samples],
        )
        rows.append(AblationRow(
            label=f"p={p:g}",
            metrics={
                "achieved_nwc": result.achieved_nwc,
                "selected_fraction": result.selected_fraction,
                "accuracy": result.achieved_accuracy,
                "evaluations": len(result.accuracy_history),
                "met_target": float(result.met_target),
            },
        ))
    accelerator.clear()
    return rows


def ablate_device_bits(zoo, rng, bit_options=(1, 2, 4), sigma=0.1,
                       fraction=0.1, mc_runs=3, eval_samples=300,
                       sense_samples=256):
    """K-bit devices: slice count changes the mapped-noise composition."""
    data = zoo.data
    space = WeightSpace.from_model(zoo.model)
    eval_x, eval_y = data.test_x[:eval_samples], data.test_y[:eval_samples]
    order = SwimScorer(max_batches=2).ranking(
        zoo.model, space, data.train_x[:sense_samples],
        data.train_y[:sense_samples],
    )
    rows = []
    for bits in bit_options:
        mapping = _mapping(zoo, sigma=sigma, device_bits=bits)
        accelerator = CimAccelerator(zoo.model, mapping_config=mapping)
        accs = []
        nwcs = []
        for run in range(mc_runs):
            accuracy, nwc = _accuracy_at_fraction(
                zoo, accelerator, order, space, fraction, eval_x, eval_y,
                rng.child("k", str(bits), run),
            )
            accs.append(accuracy)
            nwcs.append(nwc)
        accelerator.clear()
        rows.append(AblationRow(
            label=f"K={bits}",
            metrics={
                "slices_per_weight": mapping.num_slices,
                "relative_noise_std": mapping.relative_noise_std(),
                "accuracy_mean": summarize(accs).mean,
                "accuracy_std": summarize(accs).std,
                "nwc": float(np.mean(nwcs)),
            },
        ))
    return rows


def ablate_tie_break(zoo, rng, sigma=0.15, fractions=(0.05, 0.1), mc_runs=3,
                     eval_samples=300, sense_samples=256):
    """Magnitude tie-breaking on vs off at low NWC."""
    data = zoo.data
    space = WeightSpace.from_model(zoo.model)
    eval_x, eval_y = data.test_x[:eval_samples], data.test_y[:eval_samples]
    accelerator = CimAccelerator(zoo.model, mapping_config=_mapping(zoo, sigma))
    rows = []
    for use_tb in (True, False):
        order = SwimScorer(max_batches=2, use_magnitude_tie_break=use_tb).ranking(
            zoo.model, space, data.train_x[:sense_samples],
            data.train_y[:sense_samples],
        )
        metrics = {}
        for fraction in fractions:
            accs = [
                _accuracy_at_fraction(
                    zoo, accelerator, order, space, fraction, eval_x, eval_y,
                    rng.child("tb", str(use_tb), str(fraction), run),
                )[0]
                for run in range(mc_runs)
            ]
            metrics[f"accuracy@{fraction:g}"] = summarize(accs).mean
        rows.append(AblationRow(
            label="tie-break on" if use_tb else "tie-break off",
            metrics=metrics,
        ))
    accelerator.clear()
    return rows


def ablate_curvature_batches(zoo, rng, batch_counts=(1, 2, 8), sigma=0.15,
                             fraction=0.1, mc_runs=3, eval_samples=300,
                             sense_samples=512):
    """Ranking stability vs amount of data in the curvature pass."""
    data = zoo.data
    space = WeightSpace.from_model(zoo.model)
    eval_x, eval_y = data.test_x[:eval_samples], data.test_y[:eval_samples]
    accelerator = CimAccelerator(zoo.model, mapping_config=_mapping(zoo, sigma))
    sense_x = data.train_x[:sense_samples]
    sense_y = data.train_y[:sense_samples]

    reference_scores = SwimScorer(batch_size=64, max_batches=None).scores(
        zoo.model, space, sense_x, sense_y
    )
    rows = []
    for count in batch_counts:
        scorer = SwimScorer(batch_size=64, max_batches=count)
        scores = scorer.scores(zoo.model, space, sense_x, sense_y)
        order = scorer.ranking(zoo.model, space, sense_x, sense_y)
        accs = [
            _accuracy_at_fraction(
                zoo, accelerator, order, space, fraction, eval_x, eval_y,
                rng.child("cb", str(count), run),
            )[0]
            for run in range(mc_runs)
        ]
        rows.append(AblationRow(
            label=f"{count} batch(es)",
            metrics={
                "spearman_vs_full": spearman(scores, reference_scores),
                "accuracy_mean": summarize(accs).mean,
            },
        ))
    accelerator.clear()
    return rows


def ablate_scorers(zoo, rng, scorer_names=("swim", "fisher", "gradient",
                                           "magnitude", "random"),
                   sigma=0.15, fraction=0.1, mc_runs=3, eval_samples=300,
                   sense_samples=256):
    """Where do the cheap curvature surrogates land?"""
    data = zoo.data
    space = WeightSpace.from_model(zoo.model)
    eval_x, eval_y = data.test_x[:eval_samples], data.test_y[:eval_samples]
    accelerator = CimAccelerator(zoo.model, mapping_config=_mapping(zoo, sigma))
    rows = []
    for name in scorer_names:
        scorer = build_scorer(name)
        accs = []
        for run in range(mc_runs):
            order = scorer.ranking(
                zoo.model, space, data.train_x[:sense_samples],
                data.train_y[:sense_samples],
                rng=rng.child("scorer-rng", name, run),
            )
            accs.append(
                _accuracy_at_fraction(
                    zoo, accelerator, order, space, fraction, eval_x, eval_y,
                    rng.child("scorer", name, run),
                )[0]
            )
        rows.append(AblationRow(
            label=name,
            metrics={
                "accuracy_mean": summarize(accs).mean,
                "accuracy_std": summarize(accs).std,
            },
        ))
    accelerator.clear()
    return rows


def ablate_differential(zoo, rng, sigma=0.1, mc_runs=3, eval_samples=300):
    """Differential column pairs double the device count and the variance."""
    data = zoo.data
    eval_x, eval_y = data.test_x[:eval_samples], data.test_y[:eval_samples]
    rows = []
    for differential in (False, True):
        mapping = _mapping(zoo, sigma=sigma, differential=differential)
        accelerator = CimAccelerator(zoo.model, mapping_config=mapping)
        accs = []
        for run in range(mc_runs):
            run_rng = rng.child("diff", str(differential), run)
            accelerator.program(run_rng.child("program").generator)
            accelerator.write_verify_all(run_rng.child("verify").generator)
            accelerator.apply_none()
            accs.append(evaluate_accuracy(zoo.model, eval_x, eval_y))
        accelerator.clear()
        rows.append(AblationRow(
            label="differential" if differential else "single-column",
            metrics={
                "relative_noise_std": mapping.relative_noise_std(),
                "unverified_accuracy_mean": summarize(accs).mean,
            },
        ))
    return rows
