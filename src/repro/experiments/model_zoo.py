"""Deterministic train-or-load of the paper's workload models.

Models are trained with quantization-aware training (STE weight fake-quant
plus ActQuant activation quantization, per the paper's Sec. 4.2) and cached
on disk keyed by the full workload specification, so repeated benchmark
invocations skip training.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import synthetic_cifar, synthetic_digits, synthetic_tiny_imagenet
from repro.nn import (
    SGD,
    TrainConfig,
    Trainer,
    cosine_schedule,
    evaluate_accuracy,
)
from repro.nn.models import convnet, lenet, resnet18
from repro.utils.cache import ArtifactCache
from repro.utils.rng import RngStream
from repro.utils.serialization import load_state_dict, save_state_dict

__all__ = ["ZooModel", "load_workload", "build_model", "build_data"]


@dataclass
class ZooModel:
    """A trained workload ready for mapping experiments.

    Attributes
    ----------
    model:
        The trained network, in eval mode, QAT weight quantizers attached.
    data:
        The :class:`~repro.data.DataSplit` it was trained on.
    clean_accuracy:
        Test accuracy with (fake-)quantized weights, no device noise —
        the paper's "accuracy without the impact of device variation".
    spec:
        The :class:`~repro.experiments.config.WorkloadSpec`.
    """

    model: object
    data: object
    clean_accuracy: float
    spec: object


def build_data(spec, rng):
    """Generate the dataset for a workload spec."""
    if spec.dataset == "digits":
        return synthetic_digits(
            n_train=spec.n_train, n_test=spec.n_test, rng=rng,
            size=spec.image_size,
        )
    if spec.dataset == "cifar":
        return synthetic_cifar(
            n_train=spec.n_train, n_test=spec.n_test, rng=rng,
            size=spec.image_size, num_classes=spec.num_classes,
        )
    if spec.dataset == "tiny":
        return synthetic_tiny_imagenet(
            n_train=spec.n_train, n_test=spec.n_test, rng=rng,
            size=spec.image_size, num_classes=spec.num_classes,
        )
    raise KeyError(f"unknown dataset {spec.dataset!r}")


def build_model(spec, rng):
    """Construct the (untrained) network for a workload spec."""
    if spec.arch == "lenet":
        return lenet(
            rng, num_classes=spec.num_classes, act_bits=spec.act_bits,
            image_size=spec.image_size,
        )
    if spec.arch == "convnet":
        return convnet(
            rng, num_classes=spec.num_classes, width_mult=spec.width_mult,
            image_size=spec.image_size, act_bits=spec.act_bits,
        )
    if spec.arch == "resnet18":
        return resnet18(
            rng, num_classes=spec.num_classes, width_mult=spec.width_mult,
            act_bits=spec.act_bits,
        )
    raise KeyError(f"unknown arch {spec.arch!r}")


def load_workload(spec, use_cache=True, log=False):
    """Train (or load from cache) the model for a workload spec.

    Deterministic: the spec's seed drives data generation, weight init,
    and batch shuffling, so cache hits and fresh training produce the
    same artifact.

    Returns
    -------
    ZooModel
    """
    root = RngStream(spec.seed).child("zoo", spec.key)
    data = build_data(spec, root.child("data"))
    model = build_model(spec, root.child("model"))

    cache = ArtifactCache(namespace="model-zoo")
    cache_cfg = spec.cache_config()
    path = cache.path_for(cache_cfg)

    if use_cache and cache.has(cache_cfg):
        state, meta = load_state_dict(path)
        model.load_state_dict(state)
        # QAT quantizers are not part of the state dict; re-attach.
        from repro.nn.quant import attach_weight_quantizers

        attach_weight_quantizers(model, spec.weight_bits)
        model.eval()
        return ZooModel(
            model=model, data=data,
            clean_accuracy=float(meta["clean_accuracy"]), spec=spec,
        )

    optimizer = SGD(model.parameters(), lr=spec.lr, momentum=0.9,
                    weight_decay=1e-4)
    trainer = Trainer(
        optimizer,
        schedule=cosine_schedule(spec.lr, spec.epochs),
        rng=root.child("train"),
    )
    trainer.fit(
        model, data.train_x, data.train_y,
        config=TrainConfig(
            epochs=spec.epochs, batch_size=spec.batch_size,
            weight_bits=spec.weight_bits,
            log_every=1 if log else 0,
        ),
    )
    model.eval()
    clean_accuracy = evaluate_accuracy(model, data.test_x, data.test_y)
    if use_cache:
        save_state_dict(path, model.state_dict(),
                        meta={"clean_accuracy": clean_accuracy,
                              "spec": cache_cfg})
    return ZooModel(model=model, data=data, clean_accuracy=clean_accuracy,
                    spec=spec)
