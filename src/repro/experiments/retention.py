"""Retention scenario: does SWIM's advantage survive conductance drift?

Write-verify certifies precision *at programming time*; the paper stops
there.  This scenario re-reads the same Monte Carlo population at a grid
of later times (Table-1-over-time): one set of programming + verify
draws per trial, then the deployed levels drift through the technology's
read stage (power-law exponents fixed per device, so later rows really
are the same chips aged further).  Because the RNG streams are shared
across read times, differences down a column are purely drift — the
paired design of the NWC sweeps extended along the time axis.

Two technologies run by default: raw ``pcm`` (whose uncompensated drift
collapses every method at ~1 month) and ``pcm-comp``, the same cells
behind a :class:`~repro.cim.DriftCompensationStage` — the global
mean-decay rescale real PCM platforms apply at read time — which keeps
the long-time method comparison meaningful.  ``hetero_swim`` rides along
so the selection fed by the stack's drift-aware variance map is compared
against plain SWIM on every row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cim import format_duration, resolve_technology
from repro.core.metrics import DEFAULT_NWC_TARGETS
from repro.experiments.model_zoo import load_workload
from repro.plan import PlanRequest, ScenarioCell, ScenarioOrchestrator
from repro.utils.rng import RngStream
from repro.utils.tables import Table

__all__ = ["RetentionResult", "run_retention", "render_retention"]

RETENTION_METHODS = ("swim", "hetero_swim", "magnitude", "random")
RETENTION_TECHNOLOGIES = ("pcm", "pcm-comp")


@dataclass
class RetentionResult:
    """Sweep outcomes keyed by (technology, read time), plus metadata."""

    workload: str
    technologies: tuple
    clean_accuracy: float
    nwc_targets: tuple
    outcomes: dict = field(default_factory=dict)  # (tech, time) -> SweepOutcome
    profiles: dict = field(default_factory=dict)  # tech name -> DeviceTechnology

    def times(self, technology):
        """Sorted read times available for one technology."""
        return sorted(t for tech, t in self.outcomes if tech == technology)


def run_retention(scale, technologies=RETENTION_TECHNOLOGIES, times=None,
                  nwc_targets=DEFAULT_NWC_TARGETS, methods=RETENTION_METHODS,
                  workload="lenet-digits", seed=13, use_cache=True,
                  batched=True, processes=None, jobs=None, workers=None,
                  plan_cache=None,
                  plans_out=None, resume=None, report_out=None):
    """Run the Table-1-over-time drift study.

    Parameters
    ----------
    scale:
        A :class:`~repro.experiments.config.ScalePreset`
        (``mc_runs_retention`` trials, ``retention_times`` grid).
    technologies:
        Registered technology names (or instances); by default raw
        ``pcm`` — the canonical strongly drifting material — next to its
        drift-compensated variant, so the table shows what the global
        read-time rescale buys.  Drift-free profiles (``mram``) produce
        a constant table, which is itself the answer.
    times:
        Read-time grid in seconds (default: the preset's).  Must be
        >= the retention model's ``t0`` (1 s).
    jobs:
        Fan the (technology, read time) cells across N forked workers
        (or ``REPRO_JOBS``); results are bitwise-equal to serial.
    plan_cache / plans_out:
        Planner cache override, and an optional dict collecting the
        resolved ``(technology, time) -> SelectionPlan`` mapping.
    resume / report_out:
        Skip checkpointed cells (or ``REPRO_RESUME``), and an optional
        list collecting the orchestrator's :class:`~repro.robustness.
        report.RunReport`.

    Returns
    -------
    RetentionResult
    """
    times = tuple(times) if times is not None else tuple(scale.retention_times)
    zoo = load_workload(scale.workload(workload), use_cache=use_cache)
    profiles = {
        tech.name: tech
        for tech in (resolve_technology(t) for t in technologies)
    }
    result = RetentionResult(
        workload=zoo.spec.key,
        technologies=tuple(profiles),
        clean_accuracy=zoo.clean_accuracy,
        nwc_targets=tuple(nwc_targets),
        profiles=profiles,
    )
    cells = []
    for tech in profiles.values():
        # One shared stream for every read time: the same devices,
        # programmed and verified with the same draws, observed later and
        # later.  The stream is keyed by the *physical* device parameters
        # (everything but the name/description/read-path flags), so a
        # compensated variant — same cells, different read path — pairs
        # with its raw technology draw-for-draw, whatever it is called.
        physical = tech.to_dict()
        for key in ("name", "description", "drift_compensated"):
            physical.pop(key)
        device_key = "/".join(f"{k}={physical[k]!r}" for k in sorted(physical))
        root = RngStream(seed).child("retention", device_key)
        for t in times:
            cells.append(ScenarioCell(
                key=(tech.name, float(t)),
                request=PlanRequest(
                    methods=tuple(methods),
                    nwc_targets=tuple(nwc_targets),
                    technology=tech,
                    read_time=float(t),
                    weight_bits=zoo.spec.weight_bits,
                ),
                rng=root,
                mc_runs=scale.mc_runs_retention,
            ))
    orchestrator = ScenarioOrchestrator(
        zoo, eval_samples=scale.eval_samples,
        sense_samples=scale.sense_samples, cache=plan_cache,
    )
    result.outcomes.update(
        orchestrator.run(cells, batched=batched, processes=processes,
                         jobs=jobs, workers=workers, resume=resume,
                         scenario="retention")
    )
    if plans_out is not None:
        plans_out.update(orchestrator.plans)
    if report_out is not None:
        report_out.append(orchestrator.report)
    return result


def render_retention(result):
    """Table-1-over-time layout per technology: rows (time, method)."""
    parts = []
    for technology in result.technologies:
        tech = result.profiles[technology]
        retention = tech.retention_model()
        headers = ["read time", "Method"] + [
            f"NWC={t:g}" for t in result.nwc_targets
        ]
        table = Table(
            headers,
            title=(
                f"Retention — {technology} ({result.workload}, "
                f"clean {100 * result.clean_accuracy:.2f}%)"
            ),
        )
        for t in result.times(technology):
            outcome = result.outcomes[(technology, t)]
            first = True
            for method, curve in outcome.curves.items():
                cells = [format_duration(t) if first else "", method]
                for i in range(len(result.nwc_targets)):
                    stat = curve.mean_std(i)
                    cells.append(
                        f"{100 * stat.mean:.2f} ± {100 * stat.std:.2f}"
                    )
                table.add_row(cells)
                first = False
            table.add_separator()
        parts.append(table.render())
        if retention is not None:
            label = (
                "residual mean shift after compensation — none (rescaled)"
                if tech.drift_compensated
                else "mean conductance loss — " + ", ".join(
                    f"{format_duration(t)}: "
                    f"{100 * retention.mean_relative_shift(t):.1f}%"
                    for t in result.times(technology)
                )
            )
            parts.append(f"({label})")
    return "\n".join(parts)
