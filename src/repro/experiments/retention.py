"""Retention scenario: does SWIM's advantage survive conductance drift?

Write-verify certifies precision *at programming time*; the paper stops
there.  This scenario re-reads the same Monte Carlo population at a grid
of later times (Table-1-over-time): one set of programming + verify
draws per trial, then the deployed levels drift through the technology's
read stage (power-law exponents fixed per device, so later rows really
are the same chips aged further).  Because the RNG streams are shared
across read times, differences down a column are purely drift — the
paired design of the NWC sweeps extended along the time axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cim import format_duration, get_technology
from repro.core.metrics import DEFAULT_NWC_TARGETS
from repro.experiments.model_zoo import load_workload
from repro.experiments.sweeps import run_method_sweep
from repro.utils.rng import RngStream
from repro.utils.tables import Table

__all__ = ["RetentionResult", "run_retention", "render_retention"]

RETENTION_METHODS = ("swim", "magnitude", "random")


@dataclass
class RetentionResult:
    """Sweep outcomes keyed by read time, plus scenario metadata."""

    workload: str
    technology: str
    clean_accuracy: float
    nwc_targets: tuple
    outcomes: dict = field(default_factory=dict)  # read time -> SweepOutcome


def run_retention(scale, technology="pcm", times=None,
                  nwc_targets=DEFAULT_NWC_TARGETS, methods=RETENTION_METHODS,
                  workload="lenet-digits", seed=13, use_cache=True,
                  batched=True, processes=None):
    """Run the Table-1-over-time drift study.

    Parameters
    ----------
    scale:
        A :class:`~repro.experiments.config.ScalePreset`
        (``mc_runs_retention`` trials, ``retention_times`` grid).
    technology:
        Registered technology name; ``pcm`` by default — the canonical
        strongly drifting material.  Drift-free profiles (``mram``)
        produce a constant table, which is itself the answer.
    times:
        Read-time grid in seconds (default: the preset's).  Must be
        >= the retention model's ``t0`` (1 s).

    Returns
    -------
    RetentionResult
    """
    times = tuple(times) if times is not None else tuple(scale.retention_times)
    zoo = load_workload(scale.workload(workload), use_cache=use_cache)
    # One shared stream for every read time: the same devices, programmed
    # and verified with the same draws, observed later and later.
    root = RngStream(seed).child("retention", technology)
    result = RetentionResult(
        workload=zoo.spec.key,
        technology=technology,
        clean_accuracy=zoo.clean_accuracy,
        nwc_targets=tuple(nwc_targets),
    )
    for t in times:
        result.outcomes[float(t)] = run_method_sweep(
            zoo,
            sigma=None,
            technology=technology,
            read_time=float(t),
            nwc_targets=nwc_targets,
            mc_runs=scale.mc_runs_retention,
            rng=root,
            eval_samples=scale.eval_samples,
            sense_samples=scale.sense_samples,
            methods=methods,
            batched=batched,
            processes=processes,
        )
    return result


def render_retention(result):
    """Table-1-over-time layout: rows (read time, method), columns NWC."""
    tech = get_technology(result.technology)
    retention = tech.retention_model()
    headers = ["read time", "Method"] + [
        f"NWC={t:g}" for t in result.nwc_targets
    ]
    table = Table(
        headers,
        title=(
            f"Retention — {result.technology} ({result.workload}, "
            f"clean {100 * result.clean_accuracy:.2f}%)"
        ),
    )
    for t, outcome in sorted(result.outcomes.items()):
        first = True
        for method, curve in outcome.curves.items():
            cells = [format_duration(t) if first else "", method]
            for i in range(len(result.nwc_targets)):
                stat = curve.mean_std(i)
                cells.append(f"{100 * stat.mean:.2f} ± {100 * stat.std:.2f}")
            table.add_row(cells)
            first = False
        table.add_separator()
    parts = [table.render()]
    if retention is not None:
        shifts = ", ".join(
            f"{format_duration(t)}: {100 * retention.mean_relative_shift(t):.1f}%"
            for t in sorted(result.outcomes)
        )
        parts.append(f"(mean conductance loss — {shifts})")
    return "\n".join(parts)
