"""Shared accuracy-vs-NWC sweep machinery for Table 1 and Figure 2.

One Monte Carlo run programs the devices once and evaluates *every*
(method, NWC-target) pair against that same noise draw — a paired design
that reduces the variance of method comparisons, exactly what matters for
the paper's "who wins at fixed NWC" claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cim import CimAccelerator, DeviceConfig, MappingConfig
from repro.core import (
    InSituConfig,
    InSituTrainer,
    MagnitudeScorer,
    RandomScorer,
    SwimScorer,
    WeightSpace,
    evaluate_accuracy,
)
from repro.utils.stats import summarize

__all__ = ["MethodCurve", "SweepOutcome", "run_method_sweep", "WRITE_VERIFY_METHODS"]

WRITE_VERIFY_METHODS = ("swim", "magnitude", "random")


@dataclass
class MethodCurve:
    """Accuracy-vs-NWC samples for one method.

    ``accuracy_runs`` has shape ``(mc_runs, n_targets)``; ``achieved_nwc``
    is averaged over runs (it is nearly deterministic).
    """

    method: str
    nwc_targets: tuple
    accuracy_runs: np.ndarray
    achieved_nwc: np.ndarray

    def mean_std(self, target_index):
        """Paper-style mean +/- std at one NWC target."""
        return summarize(self.accuracy_runs[:, target_index])

    def means(self):
        """Mean accuracy per target."""
        return self.accuracy_runs.mean(axis=0)

    def stds(self):
        """Std of accuracy per target."""
        return self.accuracy_runs.std(axis=0)


@dataclass
class SweepOutcome:
    """All method curves for one workload at one device sigma."""

    workload: str
    sigma: float
    clean_accuracy: float
    nwc_targets: tuple
    curves: dict = field(default_factory=dict)

    def curve(self, method):
        """Look up one method's curve."""
        return self.curves[method]


def _insitu_row(zoo, accelerator, nwc_targets, run_rng, eval_x, eval_y,
                insitu_lr, eval_batch_size=256):
    """Accuracy at each NWC target for one in-situ training run."""
    trainer = InSituTrainer(
        zoo.model, accelerator, InSituConfig(lr=insitu_lr)
    )
    trainer.initialize(run_rng.child("init"))
    accuracies = np.empty(len(nwc_targets), dtype=np.float64)
    achieved = np.empty(len(nwc_targets), dtype=np.float64)

    checkpoint_iters = {}
    for i, target in enumerate(nwc_targets):
        iters = trainer.iterations_for_nwc(target)
        checkpoint_iters[i] = iters
    positive = sorted({v for v in checkpoint_iters.values() if v > 0})

    # NWC = 0: the freshly programmed, unverified network.
    baseline = evaluate_accuracy(zoo.model, eval_x, eval_y, eval_batch_size)

    history = None
    if positive:
        history = trainer.run(
            zoo.data.train_x, zoo.data.train_y, positive[-1],
            run_rng.child("train"),
            eval_x=eval_x, eval_y=eval_y, eval_at=set(positive),
            eval_batch_size=eval_batch_size,
        )
    recorded = (
        dict(zip(history.iterations, zip(history.accuracy, history.nwc)))
        if history is not None
        else {}
    )
    per_iteration = accelerator.num_weights() / accelerator.total_cycles()
    for i, target in enumerate(nwc_targets):
        iters = checkpoint_iters[i]
        if iters == 0:
            accuracies[i] = baseline
            achieved[i] = 0.0
        else:
            accuracy, nwc = recorded[iters]
            accuracies[i] = accuracy
            achieved[i] = nwc if nwc > 0 else iters * per_iteration
    return accuracies, achieved


def run_method_sweep(
    zoo,
    sigma,
    nwc_targets,
    mc_runs,
    rng,
    eval_samples=400,
    sense_samples=512,
    methods=("swim", "magnitude", "random", "insitu"),
    insitu_lr=0.03,
    device_bits=4,
    curvature_batches=2,
):
    """Run the full paired Monte Carlo sweep for one workload and sigma.

    Parameters
    ----------
    zoo:
        A :class:`~repro.experiments.model_zoo.ZooModel`.
    sigma:
        Device programming noise (fraction of full-scale) before verify.
    nwc_targets:
        NWC grid, e.g. the paper's ``(0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)``.
    mc_runs:
        Monte Carlo trials (paper: 3000).
    rng:
        Root :class:`~repro.utils.rng.RngStream` for this sweep.
    eval_samples / sense_samples:
        Test subset for accuracy, train subset for sensitivity.
    methods:
        Subset of {swim, magnitude, random, insitu}.
    insitu_lr:
        On-chip learning rate of the in-situ baseline.
    device_bits:
        K (paper: 4).
    curvature_batches:
        Batches accumulated in SWIM's curvature pass.

    Returns
    -------
    SweepOutcome
    """
    model, data, spec = zoo.model, zoo.data, zoo.spec
    mapping = MappingConfig(
        weight_bits=spec.weight_bits,
        device=DeviceConfig(bits=device_bits, sigma=sigma),
    )
    accelerator = CimAccelerator(model, mapping_config=mapping)
    space = WeightSpace.from_model(model)

    eval_x = data.test_x[:eval_samples]
    eval_y = data.test_y[:eval_samples]
    sense_x = data.train_x[:sense_samples]
    sense_y = data.train_y[:sense_samples]

    # Deterministic rankings are computed once (they do not depend on the
    # noise draw); random gets a fresh permutation per run.
    accelerator.clear()
    orders = {}
    if "swim" in methods:
        orders["swim"] = SwimScorer(
            batch_size=min(256, sense_samples), max_batches=curvature_batches
        ).ranking(model, space, sense_x, sense_y)
    if "magnitude" in methods:
        orders["magnitude"] = MagnitudeScorer().ranking(
            model, space, sense_x, sense_y
        )

    n_targets = len(nwc_targets)
    acc_store = {m: np.empty((mc_runs, n_targets)) for m in methods}
    nwc_store = {m: np.zeros((mc_runs, n_targets)) for m in methods}

    counts = [int(round(t * space.total_size)) for t in nwc_targets]

    for run in range(mc_runs):
        run_rng = rng.child("mc", run)
        accelerator.program(run_rng.child("program").generator)
        accelerator.write_verify_all(run_rng.child("verify").generator)

        run_orders = dict(orders)
        if "random" in methods:
            run_orders["random"] = RandomScorer().ranking(
                model, space, None, None, rng=run_rng.child("random-order")
            )

        for method in methods:
            if method == "insitu":
                continue
            order = run_orders[method]
            for i, count in enumerate(counts):
                masks = space.masks_from_indices(order[:count])
                nwc_store[method][run, i] = accelerator.apply_selection(masks)
                acc_store[method][run, i] = evaluate_accuracy(
                    model, eval_x, eval_y
                )

        if "insitu" in methods:
            accuracies, achieved = _insitu_row(
                zoo, accelerator, nwc_targets, run_rng.child("insitu"),
                eval_x, eval_y, insitu_lr,
            )
            acc_store["insitu"][run] = accuracies
            nwc_store["insitu"][run] = achieved

    accelerator.clear()
    outcome = SweepOutcome(
        workload=spec.key,
        sigma=sigma,
        clean_accuracy=zoo.clean_accuracy,
        nwc_targets=tuple(nwc_targets),
    )
    for method in methods:
        outcome.curves[method] = MethodCurve(
            method=method,
            nwc_targets=tuple(nwc_targets),
            accuracy_runs=acc_store[method],
            achieved_nwc=nwc_store[method].mean(axis=0),
        )
    return outcome
