"""Shared accuracy-vs-NWC sweep machinery for Table 1 and Figure 2.

One Monte Carlo run programs the devices once and evaluates *every*
(method, NWC-target) pair against that same noise draw — a paired design
that reduces the variance of method comparisons, exactly what matters for
the paper's "who wins at fixed NWC" claims.

By default the Monte Carlo trials run through the trial-batched engine
(:mod:`repro.core.mc`): each block of trials shares one masked verify
loop and one folded forward pass per (method, target) cell.  Pass
``batched=False`` for the scalar reference loop, or ``processes=N`` to
fan the scalar loop across forked workers when a workload is too large
to batch in memory.  Trial ``i`` draws its programming noise from the
same named substream in every mode, so the paired design — and the
per-trial noise draw itself — is identical across paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cim import (
    CimAccelerator,
    DeviceConfig,
    MappingConfig,
    resolve_technology,
)
from repro.core import (
    InSituConfig,
    InSituTrainer,
    MagnitudeScorer,
    MonteCarloEngine,
    RandomScorer,
    SwimScorer,
    WeightSpace,
    evaluate_accuracy,
    rank_descending,
    variance_map_from_mapping,
    variance_map_from_stack,
)
from repro.core.metrics import evaluate_accuracy_trials
from repro.utils.stats import summarize

__all__ = ["MethodCurve", "SweepOutcome", "run_method_sweep", "WRITE_VERIFY_METHODS"]

WRITE_VERIFY_METHODS = ("swim", "magnitude", "random")


@dataclass
class MethodCurve:
    """Accuracy-vs-NWC samples for one method.

    ``accuracy_runs`` has shape ``(mc_runs, n_targets)``; ``achieved_nwc``
    is averaged over runs (it is nearly deterministic).
    """

    method: str
    nwc_targets: tuple
    accuracy_runs: np.ndarray
    achieved_nwc: np.ndarray

    def mean_std(self, target_index):
        """Paper-style mean +/- std at one NWC target."""
        return summarize(self.accuracy_runs[:, target_index])

    def means(self):
        """Mean accuracy per target."""
        return self.accuracy_runs.mean(axis=0)

    def stds(self):
        """Std of accuracy per target."""
        return self.accuracy_runs.std(axis=0)


@dataclass
class SweepOutcome:
    """All method curves for one workload at one device sigma.

    ``technology`` / ``read_time`` / ``wear`` are populated by
    technology-aware sweeps (the devices and retention scenarios) and
    stay at their defaults for the paper's plain sigma sweeps.
    """

    workload: str
    sigma: float
    clean_accuracy: float
    nwc_targets: tuple
    curves: dict = field(default_factory=dict)
    technology: str = ""
    read_time: float = None
    wear: dict = None

    def curve(self, method):
        """Look up one method's curve."""
        return self.curves[method]


def _insitu_row(zoo, accelerator, nwc_targets, run_rng, eval_x, eval_y,
                insitu_lr, eval_batch_size=256):
    """Accuracy at each NWC target for one in-situ training run."""
    trainer = InSituTrainer(
        zoo.model, accelerator, InSituConfig(lr=insitu_lr)
    )
    trainer.initialize(run_rng.child("init"))
    accuracies = np.empty(len(nwc_targets), dtype=np.float64)
    achieved = np.empty(len(nwc_targets), dtype=np.float64)

    checkpoint_iters = {}
    for i, target in enumerate(nwc_targets):
        iters = trainer.iterations_for_nwc(target)
        checkpoint_iters[i] = iters
    positive = sorted({v for v in checkpoint_iters.values() if v > 0})

    # NWC = 0: the freshly programmed, unverified network.
    baseline = evaluate_accuracy(zoo.model, eval_x, eval_y, eval_batch_size)

    history = None
    if positive:
        history = trainer.run(
            zoo.data.train_x, zoo.data.train_y, positive[-1],
            run_rng.child("train"),
            eval_x=eval_x, eval_y=eval_y, eval_at=set(positive),
            eval_batch_size=eval_batch_size,
        )
    recorded = (
        dict(zip(history.iterations, zip(history.accuracy, history.nwc)))
        if history is not None
        else {}
    )
    per_iteration = accelerator.num_weights() / accelerator.total_cycles()
    for i, target in enumerate(nwc_targets):
        iters = checkpoint_iters[i]
        if iters == 0:
            accuracies[i] = baseline
            achieved[i] = 0.0
        else:
            accuracy, nwc = recorded[iters]
            accuracies[i] = accuracy
            achieved[i] = nwc if nwc > 0 else iters * per_iteration
    return accuracies, achieved


def _batched_sweep(engine, zoo, accelerator, space, orders, methods, counts,
                   nwc_targets, eval_x, eval_y, insitu_lr, acc_store,
                   nwc_store, read_time=None):
    """Trial-batched sweep body: fills the per-method stores in place.

    Each block of trials is programmed from its per-trial substreams
    (bit-identical to the scalar path), verified through one masked pulse
    loop, and every (method, target) cell is evaluated for the whole
    block in one folded forward pass.  The in-situ baseline is an
    on-chip *training* loop, inherently sequential, so it keeps the
    scalar per-trial path — its substreams match the scalar mode too.
    """
    # Deterministic rankings are block-invariant: build each target's
    # masks once instead of once per block.
    shared_masks = {
        method: [space.masks_from_indices(orders[method][:count])
                 for count in counts]
        for method in methods
        if method not in ("insitu", "random")
    }
    for block in engine.blocks():
        streams = engine.substreams(block)
        accelerator.program_trials(
            [s.child("program").generator for s in streams]
        )
        accelerator.write_verify_trials(
            rng=engine.rng.child("verify-batch", int(block[0])).generator
        )

        random_orders = None
        if "random" in methods:
            random_orders = [
                RandomScorer().ranking(
                    zoo.model, space, None, None,
                    rng=s.child("random-order"),
                )
                for s in streams
            ]

        for method in methods:
            if method == "insitu":
                continue
            for i, count in enumerate(counts):
                if method == "random":
                    masks = space.masks_from_indices_trials(
                        [order[:count] for order in random_orders]
                    )
                else:
                    masks = shared_masks[method][i]
                nwc_store[method][block, i] = accelerator.apply_selection_trials(
                    masks, read_time=read_time, read_streams=streams
                )
                acc_store[method][block, i] = evaluate_accuracy_trials(
                    zoo.model, eval_x, eval_y, len(block)
                )

        if "insitu" in methods:
            for trial, stream in zip(block, streams):
                accelerator.program(stream.child("program").generator)
                accelerator.write_verify_all(stream.child("verify").generator)
                accuracies, achieved = _insitu_row(
                    zoo, accelerator, nwc_targets, stream.child("insitu"),
                    eval_x, eval_y, insitu_lr,
                )
                acc_store["insitu"][trial] = accuracies
                nwc_store["insitu"][trial] = achieved


def _scalar_sweep_trial(run_rng, zoo, accelerator, space, orders, methods,
                        counts, nwc_targets, eval_x, eval_y, insitu_lr,
                        read_time=None):
    """One scalar Monte Carlo trial: rows for every method.

    Returns ``method -> (accuracy_row, nwc_row)``; factored out so the
    in-process loop and the process-pool fallback share one body.
    """
    accelerator.program(run_rng.child("program").generator)
    accelerator.write_verify_all(run_rng.child("verify").generator)

    run_orders = dict(orders)
    if "random" in methods:
        run_orders["random"] = RandomScorer().ranking(
            zoo.model, space, None, None, rng=run_rng.child("random-order")
        )

    rows = {}
    for method in methods:
        if method == "insitu":
            continue
        order = run_orders[method]
        accuracies = np.empty(len(counts), dtype=np.float64)
        achieved = np.empty(len(counts), dtype=np.float64)
        for i, count in enumerate(counts):
            masks = space.masks_from_indices(order[:count])
            achieved[i] = accelerator.apply_selection(
                masks, read_time=read_time, read_stream=run_rng
            )
            accuracies[i] = evaluate_accuracy(zoo.model, eval_x, eval_y)
        rows[method] = (accuracies, achieved)

    if "insitu" in methods:
        rows["insitu"] = _insitu_row(
            zoo, accelerator, nwc_targets, run_rng.child("insitu"),
            eval_x, eval_y, insitu_lr,
        )
    return rows


def run_method_sweep(
    zoo,
    sigma,
    nwc_targets,
    mc_runs,
    rng,
    eval_samples=400,
    sense_samples=512,
    methods=("swim", "magnitude", "random", "insitu"),
    insitu_lr=0.03,
    device_bits=4,
    curvature_batches=2,
    batched=True,
    processes=None,
    trial_block=None,
    trial_range=None,
    technology=None,
    read_time=None,
    orders=None,
):
    """Run the full paired Monte Carlo sweep for one workload and sigma.

    Parameters
    ----------
    zoo:
        A :class:`~repro.experiments.model_zoo.ZooModel`.
    sigma:
        Device programming noise (fraction of full-scale) before verify.
        May be None when ``technology`` is given (the profile's sigma).
    nwc_targets:
        NWC grid, e.g. the paper's ``(0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)``.
    mc_runs:
        Monte Carlo trials (paper: 3000).
    rng:
        Root :class:`~repro.utils.rng.RngStream` for this sweep.
    eval_samples / sense_samples:
        Test subset for accuracy, train subset for sensitivity.
    methods:
        Subset of {swim, hetero_swim, magnitude, random, insitu}.
        ``hetero_swim`` is the Eq. 5 ranking with the per-weight variance
        map supplied by the technology's nonideality stack at this
        sweep's ``read_time`` (falling back to the per-tensor Eq. 16
        variance when no technology is given); it shares the curvature
        pass with ``swim``, so requesting both costs one extra ranking,
        not one extra sensitivity analysis.
    insitu_lr:
        On-chip learning rate of the in-situ baseline.
    device_bits:
        K (paper: 4).  Ignored when ``technology`` supplies the cell.
    curvature_batches:
        Batches accumulated in SWIM's curvature pass.
    batched:
        Drive the write-verify methods through the trial-batched Monte
        Carlo engine (default).  ``False`` selects the scalar reference
        loop; per-trial programming noise is identical either way.
    processes:
        Opt-in process-pool fallback (scalar path fanned across forked
        workers) for workloads too large to batch in memory.
    trial_block:
        Trials per batched block (default: memory-bounded heuristic).
    trial_range:
        Optional ``(start, stop)`` window: evaluate only trials
        ``start..stop-1`` of the ``mc_runs`` protocol, with absolute
        per-trial substreams — the work-rectangle scheduler's tile
        unit.  ``start`` must sit on a trial-block boundary in batched
        mode (the shared verify stream is keyed per block).  The
        returned curves then hold *raw per-trial rows*:
        ``accuracy_runs`` has ``stop - start`` rows and
        ``achieved_nwc`` is the per-trial ``(stop - start, n_targets)``
        slice rather than the across-trial mean, so adjacent windows
        merge exactly (:func:`repro.robustness.checkpoint.
        merge_outcomes`) into the full sweep's bits.
    technology:
        Registered :class:`~repro.cim.DeviceTechnology` name (or
        instance): derives the device config and the full nonideality
        stack (drift, spatial correlation, endurance) from the profile.
    read_time:
        Seconds since programming at which the deployed weights are
        read; only meaningful when the technology's stack models drift.
        The in-situ baseline has no deployment-time read, so it is not
        supported together with ``read_time``.
    orders:
        Precomputed ``method -> flat index ranking`` (a
        :class:`~repro.plan.SelectionPlan`'s ``orders``): methods found
        here skip their in-sweep scoring entirely — in particular, no
        curvature pass runs when both ``swim`` and ``hetero_swim``
        arrive planned.  Missing methods are scored inline as before,
        so partial plans compose.

    Returns
    -------
    SweepOutcome
    """
    model, data, spec = zoo.model, zoo.data, zoo.spec
    if read_time is not None and "insitu" in methods:
        raise ValueError("the insitu baseline does not support read_time")
    stack = None
    tech_name = ""
    if technology is not None:
        tech = resolve_technology(technology)
        tech_name = tech.name
        device = tech.device_config()
        if sigma is not None:
            device = device.with_sigma(sigma)
        stack = tech.build_stack()
    else:
        device = DeviceConfig(bits=device_bits, sigma=sigma)
    mapping = MappingConfig(weight_bits=spec.weight_bits, device=device)
    accelerator = CimAccelerator(model, mapping_config=mapping, stack=stack)
    space = WeightSpace.from_model(model)

    eval_x = data.test_x[:eval_samples]
    eval_y = data.test_y[:eval_samples]
    sense_x = data.train_x[:sense_samples]
    sense_y = data.train_y[:sense_samples]

    # Deterministic rankings are computed once (they do not depend on the
    # noise draw); random gets a fresh permutation per run.  swim and
    # hetero_swim share one curvature accumulation — they differ only in
    # the variance map multiplied in before ranking.  Methods arriving
    # in ``orders`` (planned by a PlanEngine, typically shared across a
    # whole scenario grid) skip their scoring here.
    accelerator.clear()
    orders = (
        {m: np.asarray(o, dtype=np.int64) for m, o in orders.items()
         if m in methods}
        if orders is not None
        else {}
    )
    if any(m in methods and m not in orders
           for m in ("swim", "hetero_swim")):
        curvature_scorer = SwimScorer(
            batch_size=min(256, sense_samples), max_batches=curvature_batches
        )
        curvature = curvature_scorer.scores(model, space, sense_x, sense_y)
        tie = curvature_scorer.tie_break(model, space)
    if "swim" in methods and "swim" not in orders:
        orders["swim"] = rank_descending(curvature, tie)
    if "hetero_swim" in methods and "hetero_swim" not in orders:
        variance = (
            variance_map_from_stack(
                space, model, mapping, stack, read_time=read_time
            )
            if stack is not None
            else variance_map_from_mapping(space, model, mapping)
        )
        orders["hetero_swim"] = rank_descending(curvature * variance, tie)
    if "magnitude" in methods and "magnitude" not in orders:
        orders["magnitude"] = MagnitudeScorer().ranking(
            model, space, sense_x, sense_y
        )

    n_targets = len(nwc_targets)
    acc_store = {m: np.empty((mc_runs, n_targets)) for m in methods}
    nwc_store = {m: np.zeros((mc_runs, n_targets)) for m in methods}

    counts = [int(round(t * space.total_size)) for t in nwc_targets]
    engine = MonteCarloEngine(
        mc_runs, rng, batched=batched, processes=processes,
        trial_block=trial_block, trial_range=trial_range,
    )
    if trial_range is not None and batched and not engine.processes:
        block = engine.block_size()
        start, stop = engine.span
        if start % block or (stop % block and stop != mc_runs):
            raise ValueError(
                f"trial_range {trial_range!r} must align to the "
                f"{block}-trial block grid for the batched path: the "
                "shared verify stream is keyed per block, so a "
                "misaligned window would not reproduce the full run"
            )

    if batched and not engine.processes:
        _batched_sweep(
            engine, zoo, accelerator, space, orders, methods, counts,
            nwc_targets, eval_x, eval_y, insitu_lr, acc_store, nwc_store,
            read_time=read_time,
        )
    else:
        rows_per_trial = engine.map_trials(
            lambda i: _scalar_sweep_trial(
                engine.substream(i), zoo, accelerator, space, orders,
                methods, counts, nwc_targets, eval_x, eval_y, insitu_lr,
                read_time=read_time,
            )
        )
        for run, rows in zip(range(*engine.span), rows_per_trial):
            for method, (accuracies, achieved) in rows.items():
                acc_store[method][run] = accuracies
                nwc_store[method][run] = achieved

    wear = accelerator.wear_summary()
    accelerator.clear()
    outcome = SweepOutcome(
        workload=spec.key,
        sigma=device.sigma,
        clean_accuracy=zoo.clean_accuracy,
        nwc_targets=tuple(nwc_targets),
        technology=tech_name,
        read_time=read_time,
        wear=wear,
    )
    start, stop = engine.span
    for method in methods:
        if trial_range is None:
            accuracy_runs = acc_store[method]
            achieved_nwc = nwc_store[method].mean(axis=0)
        else:
            # Tile mode: return the window's raw rows (no mean) so the
            # scheduler can vstack adjacent tiles and reproduce the
            # full-run reduction bit for bit.
            accuracy_runs = acc_store[method][start:stop].copy()
            achieved_nwc = nwc_store[method][start:stop].copy()
        outcome.curves[method] = MethodCurve(
            method=method,
            nwc_targets=tuple(nwc_targets),
            accuracy_runs=accuracy_runs,
            achieved_nwc=achieved_nwc,
        )
    return outcome
