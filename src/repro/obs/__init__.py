"""Process-local observability: metrics registry, trace spans, validators.

``repro.obs`` is the cross-cutting telemetry layer.  It has no
dependencies on the rest of ``repro`` (the plan cache, supervisor, and
serve layers all import *it*), and it never contributes to
content-addressed cache keys or artifact bytes: instrumented and
uninstrumented runs produce byte-identical scientific output.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    ZeroedCounter,
    get_registry,
    render_prometheus,
)
from repro.obs.trace import (
    TRACER,
    Tracer,
    chrome_trace_path,
    current_span_id,
    disable_tracing,
    enable_tracing,
    span,
    traced,
    tracing_enabled,
    write_chrome_trace,
    write_spans_jsonl,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "ZeroedCounter",
    "get_registry",
    "render_prometheus",
    "TRACER",
    "Tracer",
    "chrome_trace_path",
    "current_span_id",
    "disable_tracing",
    "enable_tracing",
    "span",
    "traced",
    "tracing_enabled",
    "write_chrome_trace",
    "write_spans_jsonl",
]
