"""Trace spans with fork-safe buffers and JSONL / Chrome export.

Spans time regions of the pipeline (``span("plan.curvature")``) on the
monotonic clock — which on Linux is system-wide, so timestamps recorded
in forked workers are directly comparable with the parent's.  Each
process accumulates finished spans in an in-memory buffer; fork workers
ship the spans they recorded back through ``supervised_map``'s result
channel, and the parent re-attaches them under the span that was open
when the map was entered (``adopt``).

Tracing is off by default and ``span()`` is a no-op singleton when
disabled, so the instrumented hot paths cost a single attribute read.
Span records never feed cache keys or artifact bytes.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import threading
import time

__all__ = [
    "SPAN_REQUIRED_FIELDS",
    "TRACER",
    "Tracer",
    "chrome_trace_path",
    "current_span_id",
    "disable_tracing",
    "enable_tracing",
    "span",
    "traced",
    "tracing_enabled",
    "write_chrome_trace",
    "write_spans_jsonl",
]

# Every span record carries at least these keys (CI validates them).
SPAN_REQUIRED_FIELDS = ("name", "start", "dur", "pid", "parent")


class _NullSpan:
    """Returned by ``span()`` when tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_tracer", "record")

    def __init__(self, tracer, record):
        self._tracer = tracer
        self.record = record

    def set(self, **attrs):
        self.record["attrs"].update(attrs)
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self._tracer._finish(self.record, exc_type)
        return False


class Tracer:
    def __init__(self):
        self._lock = threading.Lock()
        self._spans = []
        self._local = threading.local()
        self._seq = itertools.count(1)
        self.enabled = False

    # -- lifecycle -----------------------------------------------------
    def enable(self):
        self.enabled = True

    def disable(self):
        self.enabled = False

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def reset_context(self):
        """Drop the inherited parent stack (call in freshly forked workers)."""
        self._local.stack = []

    def current_span_id(self):
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _next_id(self):
        # pid-qualified so ids minted by sibling fork workers never collide
        return f"{os.getpid():x}-{next(self._seq)}"

    # -- recording -----------------------------------------------------
    def span(self, name, **attrs):
        if not self.enabled:
            return _NULL_SPAN
        stack = self._stack()
        record = {
            "name": name,
            "id": self._next_id(),
            "parent": stack[-1] if stack else None,
            "start": time.monotonic(),
            "dur": None,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "attrs": dict(attrs),
        }
        stack.append(record["id"])
        return _Span(self, record)

    def record_span(self, name, start, dur, parent=None, **attrs):
        """Append an already-timed span without touching the context stack.

        For async contexts (the HTTP front end serves many requests
        interleaved on one thread) where the thread-local parent stack
        would mis-nest concurrent spans.  ``start`` is a
        ``time.monotonic()`` timestamp; returns the record, or None
        when tracing is disabled.
        """
        if not self.enabled:
            return None
        record = {
            "name": name,
            "id": self._next_id(),
            "parent": parent,
            "start": float(start),
            "dur": float(dur),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "attrs": dict(attrs),
        }
        with self._lock:
            self._spans.append(record)
        return record

    def _finish(self, record, exc_type):
        record["dur"] = time.monotonic() - record["start"]
        if exc_type is not None:
            record["attrs"]["error"] = exc_type.__name__
        stack = self._stack()
        if stack and stack[-1] == record["id"]:
            stack.pop()
        with self._lock:
            self._spans.append(record)

    # -- fork shipping -------------------------------------------------
    def mark(self):
        """Buffer length; pair with ``take_since`` to ship only new spans."""
        with self._lock:
            return len(self._spans)

    def take_since(self, mark):
        with self._lock:
            taken = self._spans[mark:]
            del self._spans[mark:]
            return taken

    def adopt(self, spans, parent=None):
        """Append spans shipped from another process.

        Root spans (``parent is None``) are re-parented under
        ``parent`` so a worker's spans nest beneath the span that was
        open when the work was dispatched.
        """
        if not spans:
            return
        adopted = []
        for record in spans:
            if parent is not None and record.get("parent") is None:
                record = dict(record, parent=parent)
            adopted.append(record)
        with self._lock:
            self._spans.extend(adopted)

    # -- export --------------------------------------------------------
    def spans(self):
        with self._lock:
            return list(self._spans)

    def drain(self):
        with self._lock:
            spans, self._spans = self._spans, []
            return spans


TRACER = Tracer()


def enable_tracing():
    TRACER.enable()


def disable_tracing():
    TRACER.disable()


def tracing_enabled():
    return TRACER.enabled


def span(name, **attrs):
    return TRACER.span(name, **attrs)


def current_span_id():
    return TRACER.current_span_id()


def traced(name=None, **attrs):
    """Decorator form of ``span()``."""

    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with TRACER.span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def write_spans_jsonl(path, spans):
    """One span record per line; returns the path written."""
    path = os.fspath(path)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for record in spans:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def chrome_trace_path(jsonl_path):
    jsonl_path = os.fspath(jsonl_path)
    if jsonl_path.endswith(".jsonl"):
        return jsonl_path[: -len(".jsonl")] + ".chrome.json"
    return jsonl_path + ".chrome.json"


def write_chrome_trace(path, spans):
    """Chrome ``trace_event`` JSON (load via ``chrome://tracing``)."""
    events = []
    for record in spans:
        events.append(
            {
                "name": record["name"],
                "ph": "X",
                "ts": record["start"] * 1e6,
                "dur": (record["dur"] or 0.0) * 1e6,
                "pid": record["pid"],
                "tid": record.get("tid", 0),
                "args": dict(record.get("attrs", ())),
            }
        )
    path = os.fspath(path)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return path
