"""Validators for telemetry output — used by CI and tests.

Two subcommands::

    python -m repro.obs.validate spans trace.jsonl
    python -m repro.obs.validate metrics metricsz.txt

``spans`` checks every JSONL record against the span schema (name,
start, dur, pid, parent, plus id/parent referential integrity within
the file).  ``metrics`` checks Prometheus text exposition line by line.
Both exit non-zero on the first structural problem, printing every
violation found.
"""

from __future__ import annotations

import json
import re
import sys

from repro.obs.trace import SPAN_REQUIRED_FIELDS

__all__ = ["validate_spans", "validate_exposition"]

_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\[\\\"n])*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\[\\\"n])*\")*\})?"  # labels
    r" (?:[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|Inf)|NaN)$"  # value
)
_HELP_LINE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$")
_TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$"
)


def validate_spans(lines):
    """Yield ``(line_number, problem)`` for every invalid span record."""
    seen_ids = set()
    parents = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            yield number, f"not JSON: {exc}"
            continue
        if not isinstance(record, dict):
            yield number, "record is not an object"
            continue
        missing = [f for f in SPAN_REQUIRED_FIELDS if f not in record]
        if missing:
            yield number, f"missing fields: {missing}"
            continue
        if not isinstance(record["name"], str) or not record["name"]:
            yield number, "name must be a non-empty string"
        for field in ("start", "dur"):
            if not isinstance(record[field], (int, float)) or record[field] < 0:
                yield number, f"{field} must be a non-negative number"
        if not isinstance(record["pid"], int) or record["pid"] <= 0:
            yield number, "pid must be a positive integer"
        parent = record["parent"]
        if parent is not None and not isinstance(parent, str):
            yield number, "parent must be null or a span id string"
        span_id = record.get("id")
        if span_id is not None:
            if span_id in seen_ids:
                yield number, f"duplicate span id {span_id!r}"
            seen_ids.add(span_id)
        if parent is not None:
            parents.append((number, parent))
    for number, parent in parents:
        if parent not in seen_ids:
            yield number, f"parent {parent!r} not found in file"


def validate_exposition(text):
    """Yield ``(line_number, problem)`` for malformed exposition lines."""
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            yield number, "blank line inside exposition"
            continue
        if line.startswith("# HELP "):
            if not _HELP_LINE.match(line):
                yield number, "malformed HELP line"
        elif line.startswith("# TYPE "):
            if not _TYPE_LINE.match(line):
                yield number, "malformed TYPE line"
        elif line.startswith("#"):
            continue  # comments are legal
        elif not _SAMPLE_LINE.match(line):
            yield number, "malformed sample line"


def _main(argv):
    if len(argv) != 2 or argv[0] not in ("spans", "metrics"):
        print("usage: python -m repro.obs.validate {spans|metrics} <path>", file=sys.stderr)
        return 64
    mode, path = argv
    with open(path, "r", encoding="utf-8") as handle:
        if mode == "spans":
            problems = list(validate_spans(handle))
            checked = "span records"
        else:
            problems = list(validate_exposition(handle.read()))
            checked = "exposition lines"
    for number, problem in problems:
        print(f"{path}:{number}: {problem}", file=sys.stderr)
    if problems:
        print(f"FAIL: {len(problems)} problem(s) in {path}", file=sys.stderr)
        return 1
    print(f"OK: {path} ({checked} valid)")
    return 0


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
