"""Thread-safe, process-local metrics registry.

One registry holds labeled metric *families* (``Counter``, ``Gauge``,
``Histogram``); each combination of label values is a *child* with its
own lock, so increments are exact under concurrency.  ``snapshot()`` is
the single counter surface: every human- or machine-readable view in
the repo (``PlanArtifactCache.stats()``, ``RunReport.render()``,
``/statsz``, ``/metricsz``) is derived from it.

Determinism matters more than prometheus-client parity here: histogram
bucket bounds are fixed at family creation, snapshots are sorted by
family name and label values, and rendering uses ``repr``-stable float
formatting, so two runs that perform the same work expose the same
text.
"""

from __future__ import annotations

import bisect
import math
import re
import threading

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ZeroedCounter",
    "get_registry",
    "render_prometheus",
]

# Seconds.  Spans 0.5 ms .. 10 s, which covers both in-process plan
# stages and cold HTTP resolutions at every scale tier.
DEFAULT_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == math.inf:
            return "+Inf"
        if value == -math.inf:
            return "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    raise TypeError(f"unsupported sample value: {value!r}")


def _escape_label_value(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _escape_help(text):
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value):
        with self._lock:
            self._value = value

    def inc(self, amount=1):
        with self._lock:
            self._value += amount

    def dec(self, amount=1):
        with self._lock:
            self._value -= amount

    @property
    def value(self):
        with self._lock:
            return self._value


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds):
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value):
        value = float(value)
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self):
        """``(cumulative_bucket_counts, sum, count)`` — one consistent read."""
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            count = self._count
        cumulative = []
        running = 0
        for bucket in counts:
            running += bucket
            cumulative.append(running)
        return tuple(cumulative), total_sum, count

    def quantile(self, q):
        """Approximate quantile from bucket bounds (upper-bound estimate).

        Returns ``None`` when no observations have been recorded.
        """
        cumulative, _, count = self.snapshot()
        if count == 0:
            return None
        rank = q * count
        bounds = self._bounds + (math.inf,)
        for bound, seen in zip(bounds, cumulative):
            if seen >= rank:
                return bound
        return math.inf

    @property
    def count(self):
        with self._lock:
            return self._count

    @property
    def sum(self):
        with self._lock:
            return self._sum


class ZeroedCounter:
    """A zero-based view over a counter child.

    Writes pass through to the shared child (so process-cumulative
    surfaces like ``/metricsz`` keep counting across engine rebuilds)
    while ``value`` reads relative to the child's count at view
    construction — a freshly built ``PlanService`` reports zero even
    when its workload label has served traffic from a retired engine.
    """

    __slots__ = ("_child", "_base")

    def __init__(self, child):
        self._child = child
        self._base = child.value

    def inc(self, amount=1):
        self._child.inc(amount)

    @property
    def value(self):
        return self._child.value - self._base


class _Family:
    kind = None
    _child_factory = None

    def __init__(self, name, help, labels):
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self._lock = threading.Lock()
        self._children = {}

    def _make_child(self):
        return self._child_factory()

    def labels(self, **label_values):
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}"
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def _default_child(self):
        if self.label_names:
            raise ValueError(f"{self.name}: labeled family requires .labels()")
        return self.labels()

    def children(self):
        with self._lock:
            return sorted(self._children.items())

    def _describe(self):
        return {"type": self.kind, "help": self.help, "labels": self.label_names}


class Counter(_Family):
    kind = "counter"
    _child_factory = _CounterChild

    def inc(self, amount=1):
        self._default_child().inc(amount)

    @property
    def value(self):
        return self._default_child().value


class Gauge(_Family):
    kind = "gauge"
    _child_factory = _GaugeChild

    def set(self, value):
        self._default_child().set(value)

    def inc(self, amount=1):
        self._default_child().inc(amount)

    def dec(self, amount=1):
        self._default_child().dec(amount)

    @property
    def value(self):
        return self._default_child().value


class Histogram(_Family):
    kind = "histogram"

    def __init__(self, name, help, labels, buckets=DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"{name}: bucket bounds must be sorted and unique")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"{name}: bucket bounds must be finite")
        self.buckets = bounds

    def _make_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value):
        self._default_child().observe(value)

    def snapshot(self):
        return self._default_child().snapshot()

    def quantile(self, q):
        return self._default_child().quantile(q)

    def _describe(self):
        described = super()._describe()
        described["buckets"] = self.buckets
        return described


class MetricsRegistry:
    """A process-local collection of metric families.

    ``counter``/``gauge``/``histogram`` are idempotent: re-declaring a
    family with the same name, kind, labels (and buckets) returns the
    existing one, so independently constructed components can share a
    registry without coordination.  Conflicting re-declarations raise.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families = {}

    def _declare(self, factory, kind, name, help, labels, **extra):
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        labels = tuple(labels)
        for label in labels:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise ValueError(f"{name}: invalid label name {label!r}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.label_names != labels:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.label_names}"
                    )
                if extra.get("buckets") is not None and tuple(
                    float(b) for b in extra["buckets"]
                ) != existing.buckets:
                    raise ValueError(f"metric {name!r} bucket bounds conflict")
                return existing
            family = factory(name, help, labels, **extra)
            self._families[name] = family
            return family

    def counter(self, name, help="", labels=()):
        return self._declare(Counter, "counter", name, help, labels)

    def gauge(self, name, help="", labels=()):
        return self._declare(Gauge, "gauge", name, help, labels)

    def histogram(self, name, help="", labels=(), buckets=DEFAULT_LATENCY_BUCKETS):
        return self._declare(
            Histogram, "histogram", name, help, labels, buckets=buckets
        )

    def families(self):
        with self._lock:
            return sorted(self._families.items())

    def snapshot(self):
        """Deterministic nested view: family name -> description + samples.

        Counter/gauge samples map label-value tuples to numbers;
        histogram samples map them to ``{"buckets": cumulative,
        "sum": float, "count": int}``.
        """
        out = {}
        for name, family in self.families():
            entry = family._describe()
            samples = {}
            for key, child in family.children():
                if family.kind == "histogram":
                    cumulative, total_sum, count = child.snapshot()
                    samples[key] = {
                        "buckets": cumulative,
                        "sum": total_sum,
                        "count": count,
                    }
                else:
                    samples[key] = child.value
            entry["samples"] = samples
            out[name] = entry
        return out

    def flat(self, prefix=""):
        """Flatten counters/gauges under ``prefix`` into a plain dict.

        The naming rule that keeps legacy ``stats()`` dicts stable:
        strip ``prefix`` and a trailing ``_total``; an unlabeled family
        contributes its stripped name, a single-label family
        contributes one key per label *value* (``hits_total{tier=
        "memory"}`` -> ``memory``).  Key collisions raise — they mean
        two families flatten to the same legacy name.
        """
        out = {}

        def put(key, value):
            if key in out:
                raise ValueError(f"flat() key collision: {key!r}")
            out[key] = value

        for name, entry in self.snapshot().items():
            if not name.startswith(prefix) or entry["type"] == "histogram":
                continue
            short = name[len(prefix) :]
            if short.endswith("_total"):
                short = short[: -len("_total")]
            samples = entry["samples"]
            if not entry["labels"]:
                put(short, samples.get((), 0))
            elif len(entry["labels"]) == 1:
                for key, value in samples.items():
                    put(key[0], value)
            else:
                for key, value in samples.items():
                    put("_".join((short,) + key), value)
        return out

    def render(self):
        return render_prometheus(self)


def render_prometheus(*registries):
    """Merge registries into Prometheus text exposition format.

    Registries are deduplicated by identity so callers can pass
    possibly-shared registries (service + cache) without emitting
    duplicate families.  Family names across distinct registries must
    not collide.
    """
    unique = list(dict.fromkeys(id(r) for r in registries))
    by_id = {id(r): r for r in registries}
    merged = {}
    for reg_id in unique:
        for name, entry in by_id[reg_id].snapshot().items():
            if name in merged:
                raise ValueError(f"duplicate metric family across registries: {name}")
            merged[name] = entry

    lines = []
    for name in sorted(merged):
        entry = merged[name]
        if entry["help"]:
            lines.append(f"# HELP {name} {_escape_help(entry['help'])}")
        lines.append(f"# TYPE {name} {entry['type']}")
        label_names = entry["labels"]

        def label_str(key, extra=()):
            pairs = [
                f'{n}="{_escape_label_value(v)}"'
                for n, v in list(zip(label_names, key)) + list(extra)
            ]
            return "{" + ",".join(pairs) + "}" if pairs else ""

        for key, value in entry["samples"].items():
            if entry["type"] == "histogram":
                bounds = entry["buckets"]
                for bound, seen in zip(
                    tuple(bounds) + (math.inf,), value["buckets"]
                ):
                    le = "+Inf" if bound == math.inf else _format_value(bound)
                    lines.append(
                        f"{name}_bucket{label_str(key, (('le', le),))} {seen}"
                    )
                lines.append(f"{name}_sum{label_str(key)} {_format_value(value['sum'])}")
                lines.append(f"{name}_count{label_str(key)} {value['count']}")
            else:
                lines.append(f"{name}{label_str(key)} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


_REGISTRY = MetricsRegistry()


def get_registry():
    """The module-global registry (scheduler/supervisor-side metrics)."""
    return _REGISTRY
