"""Procedural synthetic datasets (offline stand-ins for the paper's data)."""

from repro.data.cifar import class_recipes, render_class_sample, synthetic_cifar
from repro.data.dataset import DataSplit, normalize_images, subsample
from repro.data.digits import (
    DIGIT_SEGMENTS,
    DigitDifficulty,
    SEGMENTS,
    render_digit,
    synthetic_digits,
)
from repro.data.tinyimagenet import synthetic_tiny_imagenet, tiny_class_recipes

__all__ = [
    "DIGIT_SEGMENTS",
    "DataSplit",
    "DigitDifficulty",
    "SEGMENTS",
    "class_recipes",
    "normalize_images",
    "render_class_sample",
    "render_digit",
    "subsample",
    "synthetic_cifar",
    "synthetic_digits",
    "synthetic_tiny_imagenet",
    "tiny_class_recipes",
]
