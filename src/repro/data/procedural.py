"""Drawing primitives for the synthetic datasets.

The offline environment has no dataset downloads, so MNIST / CIFAR-10 /
Tiny ImageNet are replaced by procedurally generated classification tasks
(see DESIGN.md for why this preserves the experiments).  This module holds
the shared raster primitives: anti-aliased line segments, filled shapes,
Gabor textures, blur, and random affine jitter.

All functions operate on float64 arrays in ``[0, 1]`` and are deterministic
given an :class:`~repro.utils.rng.RngStream`.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "blank_canvas",
    "draw_segment",
    "shape_mask",
    "gabor_texture",
    "gaussian_blur",
    "affine_jitter",
    "add_pixel_noise",
    "SHAPES",
]

SHAPES = ("circle", "square", "triangle", "cross", "ring", "stripes")


def blank_canvas(size, channels=None):
    """A zero canvas: ``(size, size)`` or ``(channels, size, size)``."""
    if channels is None:
        return np.zeros((size, size), dtype=np.float64)
    return np.zeros((channels, size, size), dtype=np.float64)


def _grid(size):
    ys, xs = np.mgrid[0:size, 0:size]
    return xs.astype(np.float64), ys.astype(np.float64)


def draw_segment(canvas, x0, y0, x1, y1, thickness=1.5, value=1.0):
    """Draw an anti-aliased line segment onto a 2-D canvas (in place).

    Intensity falls off linearly within one pixel of the stroke boundary,
    giving smooth strokes that survive affine resampling.
    """
    size = canvas.shape[-1]
    xs, ys = _grid(size)
    dx, dy = x1 - x0, y1 - y0
    length_sq = dx * dx + dy * dy
    if length_sq == 0:
        dist = np.hypot(xs - x0, ys - y0)
    else:
        t = ((xs - x0) * dx + (ys - y0) * dy) / length_sq
        t = np.clip(t, 0.0, 1.0)
        dist = np.hypot(xs - (x0 + t * dx), ys - (y0 + t * dy))
    half = thickness / 2.0
    intensity = np.clip(half + 1.0 - dist, 0.0, 1.0)
    np.maximum(canvas, value * intensity, out=canvas)
    return canvas


def shape_mask(kind, size, cx, cy, radius, angle=0.0):
    """Boolean mask of a filled shape.

    Parameters
    ----------
    kind:
        One of :data:`SHAPES`.
    size:
        Canvas side length.
    cx, cy:
        Shape centre in pixels.
    radius:
        Characteristic half-size in pixels.
    angle:
        Rotation in radians (square/triangle/cross/stripes).
    """
    xs, ys = _grid(size)
    # Rotate coordinates about the centre.
    ca, sa = np.cos(-angle), np.sin(-angle)
    rx = ca * (xs - cx) - sa * (ys - cy)
    ry = sa * (xs - cx) + ca * (ys - cy)
    if kind == "circle":
        return rx * rx + ry * ry <= radius * radius
    if kind == "square":
        return (np.abs(rx) <= radius) & (np.abs(ry) <= radius)
    if kind == "triangle":
        # Upward triangle: inside three half-planes.
        h = radius * 1.5
        return (ry <= h / 2) & (ry >= -h / 2 + 1.5 * np.abs(rx))
    if kind == "cross":
        arm = radius / 2.5
        return ((np.abs(rx) <= arm) & (np.abs(ry) <= radius)) | (
            (np.abs(ry) <= arm) & (np.abs(rx) <= radius)
        )
    if kind == "ring":
        rr = rx * rx + ry * ry
        return (rr <= radius * radius) & (rr >= (0.55 * radius) ** 2)
    if kind == "stripes":
        band = np.abs(np.mod(rx, radius) - radius / 2.0) <= radius / 4.0
        inside = (np.abs(rx) <= 2 * radius) & (np.abs(ry) <= 2 * radius)
        return band & inside
    raise ValueError(f"unknown shape kind {kind!r}")


def gabor_texture(size, frequency, theta, phase=0.0):
    """Oriented sinusoidal texture in ``[0, 1]``."""
    xs, ys = _grid(size)
    wave = np.cos(
        2.0 * np.pi * frequency * (xs * np.cos(theta) + ys * np.sin(theta)) + phase
    )
    return 0.5 * (wave + 1.0)


def gaussian_blur(image, sigma):
    """Gaussian blur; channel-wise for (C, H, W) inputs."""
    if sigma <= 0:
        return image
    if image.ndim == 2:
        return ndimage.gaussian_filter(image, sigma)
    return np.stack([ndimage.gaussian_filter(ch, sigma) for ch in image])


def affine_jitter(image, rng, max_rotate=0.15, max_shift=2.0, scale_range=(0.9, 1.1)):
    """Random rotation + isotropic scale + shift, resampled bilinearly.

    Works on 2-D or (C, H, W) images; the same transform is applied to all
    channels.
    """
    angle = rng.uniform(-max_rotate, max_rotate)
    scale = rng.uniform(*scale_range)
    shift_x = rng.uniform(-max_shift, max_shift)
    shift_y = rng.uniform(-max_shift, max_shift)
    size = image.shape[-1]
    centre = (size - 1) / 2.0
    ca, sa = np.cos(angle), np.sin(angle)
    # Inverse map: output pixel -> input pixel.
    matrix = np.array([[ca, -sa], [sa, ca]]) / scale
    offset = (
        np.array([centre - shift_y, centre - shift_x])
        - matrix @ np.array([centre, centre])
    )

    def transform(channel):
        return ndimage.affine_transform(
            channel, matrix, offset=offset, order=1, mode="constant", cval=0.0
        )

    if image.ndim == 2:
        return transform(image)
    return np.stack([transform(ch) for ch in image])


def add_pixel_noise(image, rng, sigma):
    """Additive Gaussian pixel noise, clipped back to [0, 1]."""
    if sigma <= 0:
        return image
    noisy = image + rng.normal(0.0, sigma, size=image.shape)
    return np.clip(noisy, 0.0, 1.0)
