"""SyntheticTinyImageNet: a harder stand-in for Tiny ImageNet.

Tiny ImageNet's role in the paper (Fig. 2c) is "a more challenging task
than CIFAR-10" on the same ResNet-18: lower clean accuracy and larger
degradation under device variation.  This generator preserves those
properties by (a) using more classes, (b) composing *two* shapes per image
with partial occlusion, (c) widening the intra-class jitter, and (d) using
64x64 images like the original.

Class count defaults to 20 (not 200) so CPU-scale experiments remain
tractable; the class-recipe family extends to 200 if requested.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import DataSplit, normalize_images
from repro.data.procedural import (
    SHAPES,
    add_pixel_noise,
    affine_jitter,
    gabor_texture,
    gaussian_blur,
    shape_mask,
)

__all__ = ["synthetic_tiny_imagenet", "tiny_class_recipes"]

_BASE_COLORS = [
    (0.85, 0.3, 0.25),
    (0.25, 0.75, 0.35),
    (0.25, 0.35, 0.85),
    (0.85, 0.8, 0.3),
    (0.7, 0.3, 0.75),
]


def tiny_class_recipes(num_classes=20):
    """Recipe per class: primary/secondary shape, color pair, texture."""
    recipes = []
    for label in range(num_classes):
        primary = SHAPES[label % len(SHAPES)]
        secondary = SHAPES[(label // len(SHAPES) + 1 + label) % len(SHAPES)]
        recipes.append(
            {
                "primary": primary,
                "secondary": secondary,
                "color_a": _BASE_COLORS[label % len(_BASE_COLORS)],
                "color_b": _BASE_COLORS[(label + 2) % len(_BASE_COLORS)],
                "texture_theta": (label % 6) * np.pi / 6.0,
                "texture_freq": 0.05 + 0.03 * (label % 4),
            }
        )
    return recipes


def _render(recipe, rng, size):
    gen = rng.generator
    texture = gabor_texture(
        size,
        frequency=recipe["texture_freq"] * gen.uniform(0.8, 1.2),
        theta=recipe["texture_theta"] + gen.uniform(-0.3, 0.3),
        phase=gen.uniform(0, 2 * np.pi),
    )
    image = np.stack([texture * 0.3 + 0.1] * 3)
    image *= gen.uniform(0.7, 1.3, size=(3, 1, 1))

    # Two shapes, the secondary partially occluding the primary.
    for kind, color, spread in (
        (recipe["primary"], recipe["color_a"], 0.30),
        (recipe["secondary"], recipe["color_b"], 0.18),
    ):
        cx = size / 2 + gen.uniform(-size / 4, size / 4)
        cy = size / 2 + gen.uniform(-size / 4, size / 4)
        radius = size * gen.uniform(spread * 0.7, spread)
        angle = gen.uniform(0, 2 * np.pi)
        mask = shape_mask(kind, size, cx, cy, radius, angle)
        tint = np.clip(np.array(color) + gen.uniform(-0.15, 0.15, size=3), 0, 1)
        for channel in range(3):
            image[channel][mask] = tint[channel] * gen.uniform(0.8, 1.0)

    image = affine_jitter(
        image, gen, max_rotate=0.25, max_shift=3.0, scale_range=(0.85, 1.15)
    )
    image = gaussian_blur(image, gen.uniform(0.3, 0.8))
    image = add_pixel_noise(image, gen, sigma=0.09)
    return image


def synthetic_tiny_imagenet(n_train=4000, n_test=1000, rng=None, size=64, num_classes=20):
    """Generate the SyntheticTinyImageNet train/test split."""
    if rng is None:
        raise ValueError("synthetic_tiny_imagenet requires an RngStream")
    recipes = tiny_class_recipes(num_classes)

    def make(count, stream_name):
        labels = np.arange(count) % num_classes
        images = np.empty((count, 3, size, size), dtype=np.float64)
        for i, label in enumerate(labels):
            sample_rng = rng.child(stream_name, i)
            images[i] = _render(recipes[int(label)], sample_rng, size)
        order = rng.child(stream_name, "shuffle").permutation(count)
        return normalize_images(images[order]), labels[order].astype(np.int64)

    train_x, train_y = make(n_train, "train")
    test_x, test_y = make(n_test, "test")
    return DataSplit(
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        num_classes=num_classes,
        name="synthetic-tiny-imagenet",
    )
