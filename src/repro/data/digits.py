"""SyntheticDigits: a procedural stand-in for MNIST (28x28 grayscale).

Each digit class is rendered from its seven-segment skeleton with random
stroke thickness, affine jitter (rotation, shift, scale), blur, and pixel
noise.  The task is easy enough that LeNet reaches high accuracy (as MNIST
is for the paper), yet the learned weights degrade smoothly under the CiM
variation model — which is what Table 1 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import DataSplit, normalize_images
from repro.data.procedural import (
    add_pixel_noise,
    affine_jitter,
    blank_canvas,
    draw_segment,
    gaussian_blur,
)

__all__ = [
    "DigitDifficulty",
    "synthetic_digits",
    "render_digit",
    "SEGMENTS",
    "DIGIT_SEGMENTS",
]


@dataclass(frozen=True)
class DigitDifficulty:
    """Rendering-noise knobs controlling task hardness.

    The defaults target LeNet test accuracy in the high-90s — mirroring
    MNIST's 98-99% — *without* saturating the network's confidence: the
    cross-entropy curvature seeds ``p(1-p)`` must keep mass for the
    sensitivity analysis to be meaningful (a 100%-confident model has an
    all-zero loss Hessian, and Fig. 1/SWIM degenerate).
    """

    wobble: float = 0.05
    thickness_range: tuple = (1.3, 3.1)
    distractor_prob: float = 0.35
    max_rotate: float = 0.25
    max_shift: float = 2.5
    scale_range: tuple = (0.8, 1.12)
    blur_range: tuple = (0.35, 0.85)
    contrast_range: tuple = (0.65, 1.0)
    pixel_noise: float = 0.15

# Seven-segment geometry on a unit box: (x0, y0) -> (x1, y1).
SEGMENTS = {
    "top": ((0.2, 0.15), (0.8, 0.15)),
    "top_left": ((0.2, 0.15), (0.2, 0.5)),
    "top_right": ((0.8, 0.15), (0.8, 0.5)),
    "middle": ((0.2, 0.5), (0.8, 0.5)),
    "bottom_left": ((0.2, 0.5), (0.2, 0.85)),
    "bottom_right": ((0.8, 0.5), (0.8, 0.85)),
    "bottom": ((0.2, 0.85), (0.8, 0.85)),
}

# Standard seven-segment encoding of the ten digits.
DIGIT_SEGMENTS = {
    0: ("top", "top_left", "top_right", "bottom_left", "bottom_right", "bottom"),
    1: ("top_right", "bottom_right"),
    2: ("top", "top_right", "middle", "bottom_left", "bottom"),
    3: ("top", "top_right", "middle", "bottom_right", "bottom"),
    4: ("top_left", "top_right", "middle", "bottom_right"),
    5: ("top", "top_left", "middle", "bottom_right", "bottom"),
    6: ("top", "top_left", "middle", "bottom_left", "bottom_right", "bottom"),
    7: ("top", "top_right", "bottom_right"),
    8: (
        "top",
        "top_left",
        "top_right",
        "middle",
        "bottom_left",
        "bottom_right",
        "bottom",
    ),
    9: ("top", "top_left", "top_right", "middle", "bottom_right", "bottom"),
}


def render_digit(digit, rng, size=28, difficulty=None):
    """Render one noisy digit image in [0, 1] of shape ``(size, size)``."""
    if digit not in DIGIT_SEGMENTS:
        raise ValueError(f"digit must be 0-9, got {digit}")
    difficulty = difficulty if difficulty is not None else DigitDifficulty()
    canvas = blank_canvas(size)
    gen = rng.generator
    thickness = gen.uniform(*difficulty.thickness_range)
    for segment in DIGIT_SEGMENTS[digit]:
        (x0, y0), (x1, y1) = SEGMENTS[segment]
        # Endpoint wobble makes strokes non-identical across samples.
        w = difficulty.wobble
        wobble = gen.uniform(-w, w, size=4)
        draw_segment(
            canvas,
            (x0 + wobble[0]) * size,
            (y0 + wobble[1]) * size,
            (x1 + wobble[2]) * size,
            (y1 + wobble[3]) * size,
            thickness=thickness,
        )
    if gen.random() < difficulty.distractor_prob:
        # A faint random stroke that is not part of any digit.
        pts = gen.uniform(0.1, 0.9, size=4) * size
        draw_segment(
            canvas, pts[0], pts[1], pts[2], pts[3],
            thickness=gen.uniform(0.8, 1.5),
            value=gen.uniform(0.3, 0.7),
        )
    canvas = affine_jitter(
        canvas, gen,
        max_rotate=difficulty.max_rotate,
        max_shift=difficulty.max_shift,
        scale_range=difficulty.scale_range,
    )
    canvas = gaussian_blur(canvas, gen.uniform(*difficulty.blur_range))
    canvas = canvas * gen.uniform(*difficulty.contrast_range)
    canvas = add_pixel_noise(canvas, gen, sigma=difficulty.pixel_noise)
    return canvas


def synthetic_digits(n_train=4000, n_test=1000, rng=None, size=28,
                     difficulty=None, train_label_noise=0.03):
    """Generate the SyntheticDigits train/test split.

    Parameters
    ----------
    n_train, n_test:
        Sample counts (split evenly across the 10 classes).
    rng:
        :class:`~repro.utils.rng.RngStream`; required for determinism.
    size:
        Image side length.
    difficulty:
        Optional :class:`DigitDifficulty` overriding the rendering noise.
    train_label_noise:
        Fraction of *training* labels replaced by random classes.  A
        separable synthetic task otherwise drives cross-entropy confidence
        to saturation, where the loss Hessian — and with it every
        sensitivity signal the paper studies — vanishes; a few percent of
        label noise keeps the trained optimum realistic.  Test labels are
        never corrupted.

    Returns
    -------
    DataSplit
        Normalized images (N, 1, size, size) float32 in [-1, 1].
    """
    if rng is None:
        raise ValueError("synthetic_digits requires an RngStream")
    if not 0.0 <= train_label_noise < 1.0:
        raise ValueError("train_label_noise must be in [0, 1)")

    def make(count, stream_name):
        labels = np.arange(count) % 10
        images = np.empty((count, 1, size, size), dtype=np.float64)
        for i, digit in enumerate(labels):
            sample_rng = rng.child(stream_name, i)
            images[i, 0] = render_digit(
                int(digit), sample_rng, size=size, difficulty=difficulty
            )
        order = rng.child(stream_name, "shuffle").permutation(count)
        return normalize_images(images[order]), labels[order].astype(np.int64)

    train_x, train_y = make(n_train, "train")
    test_x, test_y = make(n_test, "test")
    if train_label_noise > 0:
        noise_rng = rng.child("label-noise").generator
        flip = noise_rng.random(n_train) < train_label_noise
        train_y = train_y.copy()
        train_y[flip] = noise_rng.integers(0, 10, size=int(flip.sum()))
    return DataSplit(
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        num_classes=10,
        name="synthetic-digits",
    )
