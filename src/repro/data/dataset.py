"""Dataset containers shared by all synthetic generators."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DataSplit", "normalize_images", "subsample"]


@dataclass(frozen=True)
class DataSplit:
    """Train/test arrays plus task metadata.

    Attributes
    ----------
    train_x, train_y, test_x, test_y:
        NCHW float32 images and int64 labels.
    num_classes:
        Number of classes.
    name:
        Human-readable dataset name.
    """

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int
    name: str

    @property
    def image_shape(self):
        """Per-sample (C, H, W) shape."""
        return self.train_x.shape[1:]

    def __repr__(self):
        return (
            f"DataSplit({self.name}, train={self.train_x.shape[0]}, "
            f"test={self.test_x.shape[0]}, classes={self.num_classes}, "
            f"image={self.image_shape})"
        )


def normalize_images(images):
    """Map [0, 1] images to zero-centred float32 in [-1, 1]."""
    return ((np.asarray(images) - 0.5) / 0.5).astype(np.float32)


def subsample(split, n_train=None, n_test=None, rng=None):
    """Return a smaller :class:`DataSplit` (stratified-ish by shuffling).

    Useful for smoke-scale experiments and the accuracy-evaluation batches
    of Algorithm 1, which the paper runs on (a subset of) training data.
    """
    train_idx = np.arange(split.train_x.shape[0])
    test_idx = np.arange(split.test_x.shape[0])
    if rng is not None:
        train_idx = rng.permutation(train_idx)
        test_idx = rng.permutation(test_idx)
    if n_train is not None:
        train_idx = train_idx[:n_train]
    if n_test is not None:
        test_idx = test_idx[:n_test]
    return DataSplit(
        train_x=split.train_x[train_idx],
        train_y=split.train_y[train_idx],
        test_x=split.test_x[test_idx],
        test_y=split.test_y[test_idx],
        num_classes=split.num_classes,
        name=split.name,
    )
