"""SyntheticCIFAR: a procedural stand-in for CIFAR-10 (3x32x32, 10 classes).

Each class is a *recipe*: a foreground shape, a color palette, and a
background texture orientation/frequency.  Recipes overlap deliberately
(shapes are shared between some classes, palettes between others) so the
task needs a convolutional feature hierarchy rather than a single cue —
giving the paper's ConvNet and ResNet-18 something non-trivial to learn,
while remaining learnable to high accuracy in a few epochs.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import DataSplit, normalize_images
from repro.data.procedural import (
    add_pixel_noise,
    affine_jitter,
    gabor_texture,
    gaussian_blur,
    shape_mask,
)

__all__ = ["synthetic_cifar", "render_class_sample", "class_recipes"]

_PALETTES = {
    "red": (0.8, 0.2, 0.2),
    "green": (0.2, 0.7, 0.3),
    "blue": (0.2, 0.3, 0.8),
    "yellow": (0.8, 0.75, 0.2),
    "magenta": (0.75, 0.25, 0.7),
    "cyan": (0.25, 0.7, 0.75),
}


def class_recipes(num_classes=10):
    """The (shape, palette, texture) recipe for each class label.

    Recipes are constructed so that no single attribute identifies a class:
    consecutive classes share shapes, and palettes repeat with different
    textures.
    """
    shapes = ("circle", "square", "triangle", "cross", "ring")
    palettes = list(_PALETTES)
    recipes = []
    for label in range(num_classes):
        recipes.append(
            {
                "shape": shapes[label % len(shapes)],
                "palette": palettes[(label // 2) % len(palettes)],
                "texture_theta": (label % 4) * np.pi / 4.0,
                "texture_freq": 0.08 + 0.04 * (label % 3),
            }
        )
    return recipes


def render_class_sample(recipe, rng, size=32):
    """Render one sample of a class recipe; returns (3, size, size) in [0,1]."""
    gen = rng.generator
    base_color = np.array(_PALETTES[recipe["palette"]])
    # Background: oriented texture with per-sample phase, dimmed.
    texture = gabor_texture(
        size,
        frequency=recipe["texture_freq"] * gen.uniform(0.85, 1.15),
        theta=recipe["texture_theta"] + gen.uniform(-0.2, 0.2),
        phase=gen.uniform(0, 2 * np.pi),
    )
    background = np.stack([texture * 0.35 + 0.15] * 3)
    background *= gen.uniform(0.8, 1.2, size=(3, 1, 1))

    # Foreground shape with jittered geometry and palette color.
    cx = size / 2 + gen.uniform(-size / 6, size / 6)
    cy = size / 2 + gen.uniform(-size / 6, size / 6)
    radius = size * gen.uniform(0.2, 0.32)
    angle = gen.uniform(0, 2 * np.pi)
    mask = shape_mask(recipe["shape"], size, cx, cy, radius, angle)
    color = np.clip(base_color + gen.uniform(-0.1, 0.1, size=3), 0.0, 1.0)

    image = background.copy()
    for channel in range(3):
        image[channel][mask] = color[channel] * gen.uniform(0.85, 1.0)

    image = affine_jitter(
        image, gen, max_rotate=0.1, max_shift=1.5, scale_range=(0.95, 1.05)
    )
    image = gaussian_blur(image, gen.uniform(0.2, 0.5))
    image = add_pixel_noise(image, gen, sigma=0.06)
    return image


def synthetic_cifar(n_train=4000, n_test=1000, rng=None, size=32, num_classes=10):
    """Generate the SyntheticCIFAR train/test split (see module docstring)."""
    if rng is None:
        raise ValueError("synthetic_cifar requires an RngStream")
    recipes = class_recipes(num_classes)

    def make(count, stream_name):
        labels = np.arange(count) % num_classes
        images = np.empty((count, 3, size, size), dtype=np.float64)
        for i, label in enumerate(labels):
            sample_rng = rng.child(stream_name, i)
            images[i] = render_class_sample(recipes[int(label)], sample_rng, size=size)
        order = rng.child(stream_name, "shuffle").permutation(count)
        return normalize_images(images[order]), labels[order].astype(np.int64)

    train_x, train_y = make(n_train, "train")
    test_x, test_y = make(n_test, "test")
    return DataSplit(
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        num_classes=num_classes,
        name="synthetic-cifar",
    )
