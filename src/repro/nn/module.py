"""Module base class and the :class:`Sequential` container.

The framework is layer-based rather than tape-based: every module knows how
to run three passes over a cached forward activation,

``forward(x)``
    compute outputs and cache whatever the backward passes need;
``backward(grad_out)``
    standard reverse-mode gradient pass (Eq. 12/13 of the paper) which
    accumulates ``Parameter.grad`` and returns the gradient w.r.t. input;
``backward_second(curv_out)``
    the paper's single-pass diagonal second-derivative recursion
    (Eq. 8/10), which accumulates ``Parameter.curvature`` and returns the
    curvature w.r.t. input.

``backward_second`` must be called after ``backward`` for the same forward
pass: activations with non-zero second derivative (tanh, sigmoid) need the
first-order gradient term of Eq. 9, which ``backward`` caches for them.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Module", "Sequential"]

_BUFFER_PREFIX = "buffer::"


class Module:
    """Base class for all layers, blocks, and models."""

    def __init__(self):
        self._parameters = OrderedDict()
        self._modules = OrderedDict()
        self._buffer_names = []
        self.training = True

    # ---------------------------------------------------------------- setup

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())
            self._parameters[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name, module):
        """Register a child module under ``name`` (for list containers)."""
        if not isinstance(module, Module):
            raise TypeError(f"expected Module, got {type(module)!r}")
        self._modules[str(name)] = module
        return module

    def register_buffer_name(self, name):
        """Declare an attribute as persistent state (saved in state_dict).

        Buffers are non-trainable state a model needs at inference time:
        batch-norm running statistics, activation-quantizer ranges.  The
        attribute must already exist on the module.
        """
        if not hasattr(self, name):
            raise AttributeError(f"no attribute {name!r} to register")
        self._buffer_names.append(str(name))

    def named_buffers(self, prefix=""):
        """Yield ``(qualified_name, value)`` for all registered buffers."""
        for name in self._buffer_names:
            yield (f"{prefix}{name}", getattr(self, name))
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    # ------------------------------------------------------------ traversal

    def named_parameters(self, prefix=""):
        """Yield ``(qualified_name, Parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self):
        """Yield all parameters, depth first."""
        for _, param in self.named_parameters():
            yield param

    def trainable_parameters(self):
        """Yield parameters with ``trainable=True``."""
        return (p for p in self.parameters() if p.trainable)

    def modules(self):
        """Yield this module and all descendants, depth first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix=""):
        """Yield ``(qualified_name, module)`` pairs, depth first.

        The root module itself is yielded with its prefix (empty for the
        top-level call), matching the naming used by
        :meth:`named_parameters`.
        """
        yield (prefix.rstrip("."), self)
        for name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self, trainable_only=False):
        """Total scalar parameter count."""
        params = self.trainable_parameters() if trainable_only else self.parameters()
        return int(sum(p.size for p in params))

    # ----------------------------------------------------------------- mode

    def train(self, mode=True):
        """Set training mode recursively; returns self."""
        for module in self.modules():
            module.training = bool(mode)
        return self

    def eval(self):
        """Set inference mode recursively; returns self."""
        return self.train(False)

    # ------------------------------------------------------------- buffers

    def zero_grad(self):
        """Zero all gradient accumulators."""
        for param in self.parameters():
            param.zero_grad()

    def zero_curvature(self):
        """Zero all curvature accumulators."""
        for param in self.parameters():
            param.zero_curvature()

    def state_dict(self, prefix=""):
        """Return ``name -> array copy`` of all parameters and buffers."""
        state = {name: p.data.copy() for name, p in self.named_parameters(prefix)}
        for name, value in self.named_buffers(prefix):
            state[f"{_BUFFER_PREFIX}{name}"] = np.asarray(value).copy()
        return state

    def load_state_dict(self, state):
        """Load parameters and buffers saved by :meth:`state_dict`."""
        params = {k: v for k, v in state.items() if not k.startswith(_BUFFER_PREFIX)}
        buffers = {
            k[len(_BUFFER_PREFIX):]: v
            for k, v in state.items()
            if k.startswith(_BUFFER_PREFIX)
        }
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(params))
        unexpected = sorted(set(params) - set(own))
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for name, param in own.items():
            param.copy_(np.asarray(params[name], dtype=param.dtype))
        own_buffers = dict(self.named_modules())
        for qual_name, value in buffers.items():
            mod_path, _, attr = qual_name.rpartition(".")
            module = own_buffers.get(mod_path)
            if module is None or attr not in module._buffer_names:
                raise KeyError(f"unexpected buffer {qual_name!r}")
            current = getattr(module, attr)
            if np.isscalar(current) or np.asarray(current).ndim == 0:
                setattr(module, attr, float(value))
            else:
                setattr(module, attr, np.asarray(value, dtype=np.asarray(current).dtype))

    # ---------------------------------------------------------------- passes

    def forward(self, x):
        """Compute outputs from inputs; must be overridden."""
        raise NotImplementedError

    def backward(self, grad_out):
        """Backpropagate gradients; must be overridden by layers."""
        raise NotImplementedError

    def backward_second(self, curv_out):
        """Backpropagate diagonal second derivatives (paper Sec. 3.3)."""
        raise NotImplementedError

    def __call__(self, x):
        return self.forward(x)

    def __repr__(self):
        child_repr = ", ".join(
            f"{name}={type(mod).__name__}" for name, mod in self._modules.items()
        )
        return f"{type(self).__name__}({child_repr})"


class Sequential(Module):
    """Chain of modules applied in order; passes reverse through the chain."""

    def __init__(self, *layers):
        super().__init__()
        self._layers = []
        for index, layer in enumerate(layers):
            self.register_module(str(index), layer)
            self._layers.append(layer)

    def append(self, layer):
        """Append one more layer to the chain."""
        self.register_module(str(len(self._layers)), layer)
        self._layers.append(layer)
        return self

    def __len__(self):
        return len(self._layers)

    def __getitem__(self, index):
        return self._layers[index]

    def __iter__(self):
        return iter(self._layers)

    def forward(self, x):
        for layer in self._layers:
            x = layer(x)
        return x

    def backward(self, grad_out):
        for layer in reversed(self._layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def backward_second(self, curv_out):
        for layer in reversed(self._layers):
            curv_out = layer.backward_second(curv_out)
        return curv_out
