"""2-D convolution via im2col, with gradient and curvature passes.

The paper notes (Sec. 3.3) that convolution "can be cast in the same form
as FC layers" for the second-derivative recursion.  im2col makes this
literal: with ``cols`` the unfolded input patches and ``W`` the flattened
filter bank, the forward pass is ``O = W @ cols``.  The backward passes are
then the Linear-layer rules applied to the column matrix, with ``col2im``
scatter-adding per-patch input derivatives back to pixels:

- weight gradient:   ``dW = dO @ cols.T``
- weight curvature:  ``hW = hO @ (cols^2).T``          (Eq. 8)
- input gradient:    ``col2im(W.T @ dO)``              (Eq. 13)
- input curvature:   ``col2im((W^2).T @ hO)``          (Eq. 10)

A weight is shared across all spatial positions, so both its gradient and
its curvature sum over positions — the curvature sum matching the paper's
one-weight-at-a-time independence approximation.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers.base import WeightedLayer
from repro.nn.parameter import Parameter

__all__ = ["Conv2d"]


def _pair(value):
    if isinstance(value, (tuple, list)):
        a, b = value
        return int(a), int(b)
    return int(value), int(value)


class Conv2d(WeightedLayer):
    """Convolution over NCHW inputs (no dilation/groups; stride + padding)."""

    def __init__(
        self,
        in_channels,
        out_channels,
        kernel_size,
        stride=1,
        padding=0,
        bias=True,
        rng=None,
        dtype=np.float32,
    ):
        super().__init__()
        if rng is None:
            raise ValueError("Conv2d requires an RngStream for initialization")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = _pair(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        kh, kw = self.kernel_size
        weight = init.kaiming_normal(
            (self.out_channels, self.in_channels, kh, kw), rng, dtype=dtype
        )
        self.weight = Parameter(weight, name="weight")
        self.has_bias = bool(bias)
        if self.has_bias:
            self.bias = Parameter(init.zeros((self.out_channels,), dtype), name="bias")
        self._cache = None

    def _weight_matrix(self, w):
        kh, kw = self.kernel_size
        if w.ndim == 5:  # (T, F, C, kh, kw) trial stack
            return w.reshape(w.shape[0], self.out_channels, -1)
        return w.reshape(self.out_channels, self.in_channels * kh * kw)

    def forward(self, x):
        x = np.asarray(x)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n = x.shape[0]
        cols, out_h, out_w = F.im2col(
            x, self.kernel_size, stride=self.stride, padding=self.padding
        )
        w = self.effective_weight()
        w_mat = self._weight_matrix(w)
        n_trials = self.override_trials()
        if n_trials is not None:
            # Trial-batched inference on a trial-major folded batch: the
            # column matrix is (Ckk, T*N'*oh*ow) with samples trial-major,
            # so a reshape exposes the trial axis for one batched matmul.
            per = self._fold_size(n, n_trials)
            cols_t = cols.reshape(
                cols.shape[0], n_trials, per * out_h * out_w
            ).transpose(1, 0, 2)
            out = np.matmul(w_mat, cols_t)  # (T, F, N'*oh*ow), stacked BLAS
            out = out.reshape(n_trials, self.out_channels, per, out_h, out_w)
            out = out.transpose(0, 2, 1, 3, 4).reshape(
                n, self.out_channels, out_h, out_w
            )
            if self.has_bias:
                out = out + self.bias.data.reshape(1, -1, 1, 1)
            self._cache = None  # inference-only: no backward through this
            return np.ascontiguousarray(out)
        out = w_mat @ cols  # (F, N*oh*ow)
        out = out.reshape(self.out_channels, n, out_h, out_w).transpose(1, 0, 2, 3)
        if self.has_bias:
            out = out + self.bias.data.reshape(1, -1, 1, 1)
        self._cache = {
            "x_shape": x.shape,
            "cols": cols,
            "w_mat": w_mat,
            "out_hw": (out_h, out_w),
        }
        return np.ascontiguousarray(out)

    def forward_multi(self, x, weights):
        """Apply a ``(T, F, C, kh, kw)`` filter stack to one *shared* input.

        The receptive fields of ``x`` are unfolded once and multiplied by
        every trial's filter bank in a single batched matmul, so T weight
        variants cost one im2col instead of T.  Returns a trial-major
        folded output ``(T*N, F, oh, ow)``.  Inference-only.
        """
        x = np.asarray(x)
        weights = np.asarray(weights)
        n, n_trials = x.shape[0], weights.shape[0]
        cols, out_h, out_w = F.im2col(
            x, self.kernel_size, stride=self.stride, padding=self.padding
        )
        w_mat = self._weight_matrix(weights)
        out = w_mat @ cols  # (T, F, N*oh*ow) by broadcasting over trials
        out = out.reshape(n_trials, self.out_channels, n, out_h, out_w)
        out = out.transpose(0, 2, 1, 3, 4).reshape(
            n_trials * n, self.out_channels, out_h, out_w
        )
        if self.has_bias:
            out = out + self.bias.data.reshape(1, -1, 1, 1)
        self._cache = None
        return np.ascontiguousarray(out)

    def _grad_matrix(self, grad_out):
        n = grad_out.shape[0]
        out_h, out_w = self._cache["out_hw"]
        return grad_out.transpose(1, 0, 2, 3).reshape(
            self.out_channels, n * out_h * out_w
        )

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols = self._cache["cols"]
        w_mat = self._cache["w_mat"]
        g_mat = self._grad_matrix(grad_out)
        grad_w = (g_mat @ cols.T).reshape(self.weight.data.shape)
        self.weight.accumulate_grad(grad_w)
        if self.has_bias:
            self.bias.accumulate_grad(g_mat.sum(axis=1))
        grad_cols = w_mat.T @ g_mat
        return F.col2im(
            grad_cols,
            self._cache["x_shape"],
            self.kernel_size,
            stride=self.stride,
            padding=self.padding,
        )

    def backward_second(self, curv_out):
        if self._cache is None:
            raise RuntimeError("backward_second called before forward")
        cols = self._cache["cols"]
        w_mat = self._cache["w_mat"]
        h_mat = self._grad_matrix(curv_out)
        curv_w = (h_mat @ np.square(cols).T).reshape(self.weight.data.shape)
        self.weight.accumulate_curvature(curv_w)
        if self.has_bias:
            self.bias.accumulate_curvature(h_mat.sum(axis=1))
        curv_cols = np.square(w_mat).T @ h_mat
        return F.col2im(
            curv_cols,
            self._cache["x_shape"],
            self.kernel_size,
            stride=self.stride,
            padding=self.padding,
        )

    def __repr__(self):
        return (
            f"Conv2d(in={self.in_channels}, out={self.out_channels}, "
            f"kernel={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, bias={self.has_bias})"
        )
