"""Fully connected layer with gradient and diagonal-curvature passes.

This layer is the reference implementation of the paper's Sec. 3.3 math.
With ``O = W P + b`` (paper Eq. 7):

- gradient w.r.t. weights (Eq. 12):   ``dF/dW_ji = dF/dO_j * P_i``
- gradient w.r.t. inputs  (Eq. 13):   ``dF/dP_i  = sum_j W_ji dF/dO_j``
- curvature w.r.t. weights (Eq. 8):   ``d2F/dW_ji^2 = d2F/dO_j^2 * P_i^2``
- curvature w.r.t. inputs  (Eq. 10):  ``d2F/dP_i^2 = sum_j W_ji^2 d2F/dO_j^2``

The curvature recursion drops the Hessian cross terms, following the
paper's (and Optimal Brain Damage's) diagonal approximation; the bias
curvature is ``d2F/db_j^2 = d2F/dO_j^2`` since the output is linear in b
with coefficient 1.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.layers.base import WeightedLayer
from repro.nn.parameter import Parameter

__all__ = ["Linear"]


class Linear(WeightedLayer):
    """Affine map ``y = x @ W.T + b`` over inputs of shape ``(N, in)``."""

    def __init__(self, in_features, out_features, bias=True, rng=None, dtype=np.float32):
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        if rng is None:
            raise ValueError("Linear requires an RngStream for initialization")
        weight = init.kaiming_uniform(
            (self.out_features, self.in_features), rng, dtype=dtype
        )
        self.weight = Parameter(weight, name="weight")
        self.has_bias = bool(bias)
        if self.has_bias:
            self.bias = Parameter(init.zeros((self.out_features,), dtype), name="bias")
        self._cache = None

    def forward(self, x):
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input (N, {self.in_features}), got {x.shape}"
            )
        w = self.effective_weight()
        n_trials = self.override_trials()
        if n_trials is not None:
            # Trial-batched inference: per-trial weights applied to a
            # trial-major folded batch (see WeightedLayer docstring).
            xt = self._split_trials(x, n_trials)
            # (T, N', in) @ (T, in, out) — stacked BLAS matmuls.
            out = np.matmul(xt, w.transpose(0, 2, 1)).reshape(x.shape[0], -1)
            if self.has_bias:
                out = out + self.bias.data
            self._cache = None  # inference-only: no backward through this
            return out
        out = x @ w.T
        if self.has_bias:
            out = out + self.bias.data
        self._cache = {"x": x, "w": w}
        return out

    def forward_multi(self, x, weights):
        """Apply a ``(T, out, in)`` weight stack to one *shared* input.

        Returns a trial-major folded output of shape ``(T*N, out)`` —
        the input is not tiled, so evaluating T weight variants of this
        layer costs one einsum instead of T matmuls.  Inference-only.
        """
        x = np.asarray(x)
        weights = np.asarray(weights)
        out = np.matmul(x, weights.transpose(0, 2, 1))  # (T, N, out)
        if self.has_bias:
            out = out + self.bias.data
        self._cache = None
        return out.reshape(weights.shape[0] * x.shape[0], -1)

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError(
                "backward called before forward (or after a trial-batched "
                "forward, which is inference-only)"
            )
        x = self._cache["x"]
        w = self._cache["w"]
        self.weight.accumulate_grad(grad_out.T @ x)
        if self.has_bias:
            self.bias.accumulate_grad(grad_out.sum(axis=0))
        return grad_out @ w

    def backward_second(self, curv_out):
        if self._cache is None:
            raise RuntimeError("backward_second called before forward")
        x = self._cache["x"]
        w = self._cache["w"]
        # Eq. 8: curvature of each weight sums (over the batch) the output
        # curvature times the squared input it multiplies.
        self.weight.accumulate_curvature(curv_out.T @ np.square(x))
        if self.has_bias:
            self.bias.accumulate_curvature(curv_out.sum(axis=0))
        # Eq. 10: propagate through squared weights.
        return curv_out @ np.square(w)

    def __repr__(self):
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.has_bias})"
        )
