"""Shared behaviour for layers that own a weight tensor.

Two hooks on :class:`WeightedLayer` make the CiM experiments possible
without touching the layer math:

``weight_override``
    When set, the forward/backward passes use this array instead of
    ``weight.data``.  The CiM accelerator uses it to run inference with the
    *programmed* (noisy) weights while keeping the ideal weights intact —
    i.e., it models the device conductances actually burned into the
    crossbar.

``weight_quantizer``
    When set, ``weight.data`` is passed through this callable in forward
    (fake quantization).  Gradients flow straight through to the float
    weights (straight-through estimator), which is the standard
    quantization-aware-training recipe the paper follows ([4]).

The override takes precedence over the quantizer: programmed conductances
are already quantized by construction.
"""

from __future__ import annotations

from repro.nn.module import Module

__all__ = ["WeightedLayer"]


class WeightedLayer(Module):
    """Base class for Linear/Conv2d: weight override + fake quantization."""

    def __init__(self):
        super().__init__()
        self.weight_override = None
        self.weight_quantizer = None

    def effective_weight(self):
        """The weight array the forward pass should use."""
        if self.weight_override is not None:
            return self.weight_override
        if self.weight_quantizer is not None:
            return self.weight_quantizer(self.weight.data)
        return self.weight.data

    def set_weight_override(self, values):
        """Run subsequent passes with ``values`` in place of the weights."""
        if values is not None and values.shape != self.weight.data.shape:
            raise ValueError(
                f"override shape {values.shape} != weight shape "
                f"{self.weight.data.shape}"
            )
        self.weight_override = values

    def clear_weight_override(self):
        """Restore the ideal weights."""
        self.weight_override = None
