"""Shared behaviour for layers that own a weight tensor.

Two hooks on :class:`WeightedLayer` make the CiM experiments possible
without touching the layer math:

``weight_override``
    When set, the forward/backward passes use this array instead of
    ``weight.data``.  The CiM accelerator uses it to run inference with the
    *programmed* (noisy) weights while keeping the ideal weights intact —
    i.e., it models the device conductances actually burned into the
    crossbar.

``weight_quantizer``
    When set, ``weight.data`` is passed through this callable in forward
    (fake quantization).  Gradients flow straight through to the float
    weights (straight-through estimator), which is the standard
    quantization-aware-training recipe the paper follows ([4]).

The override takes precedence over the quantizer: programmed conductances
are already quantized by construction.

``weight_override`` additionally accepts a *trial-batched* stack of shape
``(n_trials,) + weight.shape``: the forward pass then expects a trial-major
folded batch of ``n_trials * N`` samples and applies trial ``t``'s weights
to samples ``t*N .. (t+1)*N``.  This is how the Monte Carlo engine
(:mod:`repro.core.mc`) evaluates every variation draw of an experiment in
one vectorized pass.  Batched overrides are inference-only: the backward
passes refuse to run on a trial-batched forward.
"""

from __future__ import annotations

from repro.nn.module import Module

__all__ = ["WeightedLayer"]


class WeightedLayer(Module):
    """Base class for Linear/Conv2d: weight override + fake quantization."""

    def __init__(self):
        super().__init__()
        self.weight_override = None
        self.weight_quantizer = None

    def effective_weight(self):
        """The weight array the forward pass should use."""
        if self.weight_override is not None:
            return self.weight_override
        if self.weight_quantizer is not None:
            return self.weight_quantizer(self.weight.data)
        return self.weight.data

    def set_weight_override(self, values):
        """Run subsequent passes with ``values`` in place of the weights.

        ``values`` may be the weight shape, or a trial-batched stack
        ``(n_trials,) + weight.shape`` (see the module docstring).
        """
        shape = self.weight.data.shape
        if values is not None and values.shape != shape and values.shape[1:] != shape:
            raise ValueError(
                f"override shape {values.shape} != weight shape {shape} "
                f"(nor a (n_trials,)+{shape} stack)"
            )
        self.weight_override = values

    def override_trials(self):
        """Trial count of a batched override, or ``None`` when not batched."""
        override = self.weight_override
        if override is None or override.ndim == self.weight.data.ndim:
            return None
        return override.shape[0]

    def clear_weight_override(self):
        """Restore the ideal weights."""
        self.weight_override = None

    @staticmethod
    def _fold_size(total, n_trials):
        """Samples per trial of a trial-major folded batch (validated)."""
        if total % n_trials:
            raise ValueError(
                f"folded batch of {total} samples does not divide "
                f"into {n_trials} trials"
            )
        return total // n_trials

    @classmethod
    def _split_trials(cls, x, n_trials):
        """Reshape a trial-major folded batch to ``(T, N, ...)``."""
        per = cls._fold_size(x.shape[0], n_trials)
        return x.reshape((n_trials, per) + x.shape[1:])
