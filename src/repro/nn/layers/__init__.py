"""Layer library: every layer implements forward / backward / backward_second."""

from repro.nn.layers.activation import Identity, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers.base import WeightedLayer
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm1d, BatchNorm2d
from repro.nn.layers.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.layers.reshape import Flatten

__all__ = [
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "LeakyReLU",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "WeightedLayer",
]
