"""Pooling layers with gradient and curvature passes.

Max pooling routes both derivatives to the argmax input — the paper states
"the backpropagation process of max pooling layers cancels derivatives of
the deactivated inputs" (Sec. 3.3).  Average pooling is linear with
coefficient ``1/area``, so gradients scale by ``1/area`` and diagonal
curvature by ``1/area^2``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module

__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d"]


def _pair(value):
    if isinstance(value, (tuple, list)):
        a, b = value
        return int(a), int(b)
    return int(value), int(value)


class MaxPool2d(Module):
    """Max pooling over NCHW inputs."""

    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = int(stride) if stride is not None else self.kernel_size[0]
        self._cache = None

    def forward(self, x):
        n, c, h, w = x.shape
        kh, kw = self.kernel_size
        out_h = F.conv_output_size(h, kh, self.stride, 0)
        out_w = F.conv_output_size(w, kw, self.stride, 0)
        # View each channel independently: reshape to (N*C, 1, H, W) and
        # unfold so columns are pooling windows.
        flat = x.reshape(n * c, 1, h, w)
        cols, _, _ = F.im2col(flat, self.kernel_size, stride=self.stride)
        # cols: (kh*kw, N*C*out_h*out_w)
        argmax = np.argmax(cols, axis=0)
        out = cols[argmax, np.arange(cols.shape[1])]
        out = out.reshape(n * c, out_h, out_w).reshape(n, c, out_h, out_w)
        self._cache = {
            "x_shape": x.shape,
            "argmax": argmax,
            "cols_shape": cols.shape,
            "out_hw": (out_h, out_w),
        }
        return out

    def _scatter(self, values):
        """Scatter per-window values back through the argmax selections."""
        n, c, h, w = self._cache["x_shape"]
        cols = np.zeros(self._cache["cols_shape"], dtype=values.dtype)
        flat_vals = values.reshape(-1)
        cols[self._cache["argmax"], np.arange(cols.shape[1])] = flat_vals
        out = F.col2im(
            cols, (n * c, 1, h, w), self.kernel_size, stride=self.stride
        )
        return out.reshape(n, c, h, w)

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        return self._scatter(grad_out)

    def backward_second(self, curv_out):
        if self._cache is None:
            raise RuntimeError("backward_second called before forward")
        return self._scatter(curv_out)


class AvgPool2d(Module):
    """Average pooling over NCHW inputs."""

    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = int(stride) if stride is not None else self.kernel_size[0]
        self._cache = None

    def forward(self, x):
        n, c, h, w = x.shape
        kh, kw = self.kernel_size
        out_h = F.conv_output_size(h, kh, self.stride, 0)
        out_w = F.conv_output_size(w, kw, self.stride, 0)
        flat = x.reshape(n * c, 1, h, w)
        cols, _, _ = F.im2col(flat, self.kernel_size, stride=self.stride)
        out = cols.mean(axis=0).reshape(n, c, out_h, out_w)
        self._cache = {"x_shape": x.shape, "cols_shape": cols.shape}
        return out

    def _spread(self, values, power):
        n, c, h, w = self._cache["x_shape"]
        kh, kw = self.kernel_size
        area = kh * kw
        coeff = (1.0 / area) ** power
        cols = np.broadcast_to(
            values.reshape(1, -1) * coeff, self._cache["cols_shape"]
        ).astype(values.dtype)
        out = F.col2im(
            np.ascontiguousarray(cols),
            (n * c, 1, h, w),
            self.kernel_size,
            stride=self.stride,
        )
        return out.reshape(n, c, h, w)

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        return self._spread(grad_out, power=1)

    def backward_second(self, curv_out):
        if self._cache is None:
            raise RuntimeError("backward_second called before forward")
        return self._spread(curv_out, power=2)


class GlobalAvgPool2d(Module):
    """Average over all spatial positions: (N, C, H, W) -> (N, C)."""

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x):
        self._cache = {"x_shape": x.shape}
        return x.mean(axis=(2, 3))

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._cache["x_shape"]
        coeff = 1.0 / (h * w)
        return np.broadcast_to(
            grad_out.reshape(n, c, 1, 1) * coeff, (n, c, h, w)
        ).copy()

    def backward_second(self, curv_out):
        if self._cache is None:
            raise RuntimeError("backward_second called before forward")
        n, c, h, w = self._cache["x_shape"]
        coeff = 1.0 / (h * w) ** 2
        return np.broadcast_to(
            curv_out.reshape(n, c, 1, 1) * coeff, (n, c, h, w)
        ).copy()
