"""Inverted dropout.

In training mode each activation is kept with probability ``1 - p`` and
scaled by ``1/(1-p)``.  The layer is linear given its mask, so gradients
multiply by the mask scale and diagonal curvature by its square.  In
inference mode (where all CiM mapping experiments run) it is the identity.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import RngStream

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout with drop probability ``p``."""

    def __init__(self, p=0.5, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"p must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = rng if rng is not None else RngStream(0).child("dropout")
        self._cache = None

    def forward(self, x):
        if not self.training or self.p == 0.0:
            self._cache = {"scale": None}
            return x
        keep = 1.0 - self.p
        mask = self._rng.generator.random(x.shape) < keep
        scale = mask.astype(x.dtype) / keep
        self._cache = {"scale": scale}
        return x * scale

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        scale = self._cache["scale"]
        if scale is None:
            return grad_out
        return grad_out * scale

    def backward_second(self, curv_out):
        if self._cache is None:
            raise RuntimeError("backward_second called before forward")
        scale = self._cache["scale"]
        if scale is None:
            return curv_out
        return curv_out * np.square(scale)
