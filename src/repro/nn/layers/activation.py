"""Element-wise activations with first- and second-derivative passes.

For an activation ``P = g(I)`` the exact chain rule for the diagonal
curvature is (paper Eq. 9)::

    d2F/dI^2 = g'(I)^2 * d2F/dP^2 + g''(I) * dF/dP

ReLU — the case the paper specializes to in Eq. 10 — has ``g'' = 0`` and
``g'^2 = g' = step(I)``, so the curvature is simply masked, exactly like
the gradient.  Smooth activations (tanh, sigmoid) keep the ``g''`` term,
which requires the first-order gradient ``dF/dP``; the backward pass caches
it, which is why ``backward_second`` must run after ``backward``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["ReLU", "LeakyReLU", "Tanh", "Sigmoid", "Identity"]


class _Activation(Module):
    """Common caching logic for element-wise activations."""

    def __init__(self):
        super().__init__()
        self._cache = None

    def _derivatives(self, cache):
        """Return ``(g_prime, g_double_prime)`` arrays for the cached input."""
        raise NotImplementedError

    def forward(self, x):
        raise NotImplementedError

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        g_prime, _ = self._derivatives(self._cache)
        self._cache["grad_out"] = grad_out
        return grad_out * g_prime

    def backward_second(self, curv_out):
        if self._cache is None:
            raise RuntimeError("backward_second called before forward")
        g_prime, g_double = self._derivatives(self._cache)
        curv_in = curv_out * np.square(g_prime)
        if g_double is not None:
            grad_out = self._cache.get("grad_out")
            if grad_out is None:
                raise RuntimeError(
                    "backward_second for a smooth activation requires "
                    "backward to run first (needs dF/dP for the g'' term)"
                )
            curv_in = curv_in + g_double * grad_out
        return curv_in


class ReLU(_Activation):
    """Rectified linear unit."""

    def forward(self, x):
        mask = x > 0
        self._cache = {"mask": mask}
        return np.where(mask, x, 0.0)

    def _derivatives(self, cache):
        return cache["mask"].astype(np.float32), None


class LeakyReLU(_Activation):
    """Leaky ReLU with negative slope ``alpha``."""

    def __init__(self, alpha=0.01):
        super().__init__()
        self.alpha = float(alpha)

    def forward(self, x):
        mask = x > 0
        self._cache = {"mask": mask}
        return np.where(mask, x, self.alpha * x)

    def _derivatives(self, cache):
        g_prime = np.where(cache["mask"], 1.0, self.alpha).astype(np.float32)
        return g_prime, None


class Tanh(_Activation):
    """Hyperbolic tangent (smooth: keeps the g'' curvature term)."""

    def forward(self, x):
        out = np.tanh(x)
        self._cache = {"out": out}
        return out

    def _derivatives(self, cache):
        out = cache["out"]
        g_prime = 1.0 - np.square(out)
        g_double = -2.0 * out * g_prime
        return g_prime, g_double


class Sigmoid(_Activation):
    """Logistic sigmoid (smooth: keeps the g'' curvature term)."""

    def forward(self, x):
        out = 1.0 / (1.0 + np.exp(-x))
        self._cache = {"out": out}
        return out

    def _derivatives(self, cache):
        out = cache["out"]
        g_prime = out * (1.0 - out)
        g_double = g_prime * (1.0 - 2.0 * out)
        return g_prime, g_double


class Identity(Module):
    """No-op layer (useful as a placeholder in model definitions)."""

    def forward(self, x):
        return x

    def backward(self, grad_out):
        return grad_out

    def backward_second(self, curv_out):
        return curv_out
