"""Batch normalization with gradient and curvature passes.

The gradient pass implements the full batch-norm backward (statistics
depend on the batch).  For the curvature pass we use the frozen-statistics
(affine) form: at weight-mapping time the network runs in inference mode,
where batch norm *is* exactly an affine map ``out = gamma * (x - mu)/std +
beta``; in that regime the rules below are exact:

- input curvature:  ``h_x     = h_out * (gamma / std)^2``
- gamma curvature:  ``h_gamma = sum h_out * x_hat^2``
- beta curvature:   ``h_beta  = sum h_out``

In training mode the same frozen-statistics rule is applied with the batch
statistics; the (tiny) curvature contribution of the statistics' dependence
on x is dropped, consistent with the paper's diagonal approximation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["BatchNorm2d", "BatchNorm1d"]


class _BatchNorm(Module):
    """Shared logic for 1-D and 2-D batch norm."""

    def __init__(self, num_features, eps=1e-5, momentum=0.1, dtype=np.float32):
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma = Parameter(np.ones(self.num_features, dtype=dtype), name="gamma")
        self.beta = Parameter(np.zeros(self.num_features, dtype=dtype), name="beta")
        self.running_mean = np.zeros(self.num_features, dtype=dtype)
        self.running_var = np.ones(self.num_features, dtype=dtype)
        self.register_buffer_name("running_mean")
        self.register_buffer_name("running_var")
        self._cache = None

    def _reduce_axes(self):
        raise NotImplementedError

    def _shape_param(self, p):
        raise NotImplementedError

    def forward(self, x):
        axes = self._reduce_axes()
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(self.running_mean.dtype)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            ).astype(self.running_var.dtype)
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.eps)
        x_hat = (x - self._shape_param(mean)) / self._shape_param(std)
        out = self._shape_param(self.gamma.data) * x_hat + self._shape_param(
            self.beta.data
        )
        self._cache = {
            "x_hat": x_hat,
            "std": std,
            "m": int(np.prod([x.shape[a] for a in axes])),
            "train_stats": self.training,
        }
        return out

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        axes = self._reduce_axes()
        x_hat = self._cache["x_hat"]
        std = self._shape_param(self._cache["std"])
        gamma = self._shape_param(self.gamma.data)

        self.gamma.accumulate_grad((grad_out * x_hat).sum(axis=axes))
        self.beta.accumulate_grad(grad_out.sum(axis=axes))

        if not self._cache["train_stats"]:
            # Inference: statistics are constants; pure affine backward.
            return grad_out * gamma / std

        m = self._cache["m"]
        sum_g = grad_out.sum(axis=axes)
        sum_gx = (grad_out * x_hat).sum(axis=axes)
        return (
            gamma
            / std
            / m
            * (
                m * grad_out
                - self._shape_param(sum_g)
                - x_hat * self._shape_param(sum_gx)
            )
        )

    def backward_second(self, curv_out):
        if self._cache is None:
            raise RuntimeError("backward_second called before forward")
        axes = self._reduce_axes()
        x_hat = self._cache["x_hat"]
        std = self._shape_param(self._cache["std"])
        gamma = self._shape_param(self.gamma.data)
        self.gamma.accumulate_curvature((curv_out * np.square(x_hat)).sum(axis=axes))
        self.beta.accumulate_curvature(curv_out.sum(axis=axes))
        return curv_out * np.square(gamma / std)


class BatchNorm2d(_BatchNorm):
    """Batch norm over NCHW inputs (per-channel statistics)."""

    def _reduce_axes(self):
        return (0, 2, 3)

    def _shape_param(self, p):
        return np.asarray(p).reshape(1, -1, 1, 1)


class BatchNorm1d(_BatchNorm):
    """Batch norm over (N, F) inputs (per-feature statistics)."""

    def _reduce_axes(self):
        return (0,)

    def _shape_param(self, p):
        return np.asarray(p).reshape(1, -1)
