"""Shape-only layers (no parameters, derivatives pass through reshaped)."""

from __future__ import annotations

from repro.nn.module import Module

__all__ = ["Flatten"]


class Flatten(Module):
    """Flatten (N, ...) to (N, features)."""

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x):
        self._cache = {"shape": x.shape}
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._cache["shape"])

    def backward_second(self, curv_out):
        if self._cache is None:
            raise RuntimeError("backward_second called before forward")
        return curv_out.reshape(self._cache["shape"])
