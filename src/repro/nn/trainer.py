"""Mini-batch training loop for the off-chip (pre-mapping) training stage.

The paper trains every model to convergence on GPU with quantization-aware
training before mapping (Sec. 4.2).  :class:`Trainer` reproduces that
stage: shuffled mini-batches, an optimizer + LR schedule, optional STE
weight fake-quantization, and accuracy tracking on a held-out split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import CrossEntropyLoss
from repro.nn.quant import attach_weight_quantizers

__all__ = ["TrainConfig", "TrainHistory", "Trainer", "evaluate_accuracy", "iterate_batches"]


def iterate_batches(x, y, batch_size, rng=None):
    """Yield ``(xb, yb)`` mini-batches; shuffles when ``rng`` is given."""
    n = x.shape[0]
    order = np.arange(n) if rng is None else rng.permutation(n)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        yield x[idx], y[idx]


def evaluate_accuracy(model, x, y, batch_size=256):
    """Top-1 accuracy of ``model`` on ``(x, y)`` in inference mode."""
    was_training = model.training
    model.eval()
    correct = 0
    for xb, yb in iterate_batches(x, y, batch_size):
        logits = model(xb)
        correct += int((np.argmax(logits, axis=1) == yb).sum())
    if was_training:
        model.train()
    return correct / x.shape[0]


@dataclass
class TrainConfig:
    """Hyper-parameters for :class:`Trainer`."""

    epochs: int = 10
    batch_size: int = 64
    weight_bits: int | None = None  # enable STE weight fake-quant when set
    log_every: int = 0  # print every N epochs; 0 = silent


@dataclass
class TrainHistory:
    """Per-epoch curves recorded during training."""

    train_loss: list = field(default_factory=list)
    train_accuracy: list = field(default_factory=list)
    test_accuracy: list = field(default_factory=list)
    learning_rate: list = field(default_factory=list)

    @property
    def final_test_accuracy(self):
        """Accuracy after the last epoch (0.0 when never evaluated)."""
        return self.test_accuracy[-1] if self.test_accuracy else 0.0


class Trainer:
    """Train a model with a given optimizer and LR schedule.

    Parameters
    ----------
    optimizer:
        Any :mod:`repro.nn.optim` optimizer over the model parameters.
    schedule:
        Callable ``epoch -> learning rate`` (see :mod:`repro.nn.optim`).
    loss:
        Loss object (default :class:`CrossEntropyLoss`).
    rng:
        :class:`~repro.utils.rng.RngStream` used for batch shuffling.
    """

    def __init__(self, optimizer, schedule=None, loss=None, rng=None):
        self.optimizer = optimizer
        self.schedule = schedule
        self.loss = loss if loss is not None else CrossEntropyLoss()
        self._shuffle_rng = rng

    def fit(self, model, train_x, train_y, test_x=None, test_y=None, config=None):
        """Run the training loop; returns a :class:`TrainHistory`."""
        config = config or TrainConfig()
        if config.weight_bits is not None:
            attach_weight_quantizers(model, config.weight_bits)
        history = TrainHistory()
        model.train()
        for epoch in range(config.epochs):
            if self.schedule is not None:
                self.optimizer.lr = float(self.schedule(epoch))
            history.learning_rate.append(self.optimizer.lr)
            epoch_loss = 0.0
            epoch_correct = 0
            shuffle = (
                self._shuffle_rng.child("epoch", epoch).generator
                if self._shuffle_rng is not None
                else np.random.default_rng(epoch)
            )
            n_batches = 0
            for xb, yb in iterate_batches(
                train_x, train_y, config.batch_size, rng=shuffle
            ):
                logits = model(xb)
                loss_value = self.loss(logits, yb)
                model.zero_grad()
                model.backward(self.loss.backward())
                self.optimizer.step()
                epoch_loss += loss_value
                epoch_correct += int((np.argmax(logits, axis=1) == yb).sum())
                n_batches += 1
            history.train_loss.append(epoch_loss / max(n_batches, 1))
            history.train_accuracy.append(epoch_correct / train_x.shape[0])
            if test_x is not None:
                acc = evaluate_accuracy(model, test_x, test_y, config.batch_size)
                history.test_accuracy.append(acc)
                model.train()
            if config.log_every and (epoch + 1) % config.log_every == 0:
                test_part = (
                    f", test acc {history.test_accuracy[-1]:.4f}"
                    if history.test_accuracy
                    else ""
                )
                print(
                    f"epoch {epoch + 1}/{config.epochs}: "
                    f"loss {history.train_loss[-1]:.4f}, "
                    f"train acc {history.train_accuracy[-1]:.4f}{test_part}"
                )
        model.eval()
        return history
