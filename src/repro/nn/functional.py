"""Array-level building blocks: im2col/col2im, softmax, one-hot.

``im2col`` turns convolution into one big matrix multiply, which is both the
fastest way to run convolutions in NumPy and — more importantly here — makes
the paper's observation that "convolution layers can be cast in the same
form as FC layers" (Sec. 3.3) literal in the code: the gradient uses the
column matrix, and the diagonal-curvature pass uses the *squared* column
matrix, exactly as Eq. 8 does for fully connected layers.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pad2d",
    "unpad2d",
    "im2col",
    "col2im",
    "conv_output_size",
    "softmax",
    "log_softmax",
    "one_hot",
]


def conv_output_size(size, kernel, stride, padding):
    """Spatial output size of a convolution/pooling along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def pad2d(x, padding):
    """Zero-pad NCHW input spatially by ``padding`` on each side."""
    if padding == 0:
        return x
    return np.pad(
        x,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )


def unpad2d(x, padding):
    """Inverse of :func:`pad2d`."""
    if padding == 0:
        return x
    return x[:, :, padding:-padding, padding:-padding]


def _window_indices(channels, height, width, kernel, stride):
    """Row/col gather indices for im2col on a padded (C, H, W) volume."""
    kh, kw = kernel
    out_h = (height - kh) // stride + 1
    out_w = (width - kw) // stride + 1

    # Index arrays of shape (C*kh*kw, out_h*out_w).
    c_idx = np.repeat(np.arange(channels), kh * kw).reshape(-1, 1)
    kh_idx = np.tile(np.repeat(np.arange(kh), kw), channels).reshape(-1, 1)
    kw_idx = np.tile(np.arange(kw), channels * kh).reshape(-1, 1)

    oh_idx = stride * np.repeat(np.arange(out_h), out_w).reshape(1, -1)
    ow_idx = stride * np.tile(np.arange(out_w), out_h).reshape(1, -1)

    rows = kh_idx + oh_idx
    cols = kw_idx + ow_idx
    return c_idx, rows, cols, out_h, out_w


def im2col(x, kernel, stride=1, padding=0):
    """Unfold NCHW input into a column matrix.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(kh, kw)`` window size.
    stride, padding:
        Convolution geometry.

    Returns
    -------
    tuple
        ``(cols, out_h, out_w)`` where ``cols`` has shape
        ``(C*kh*kw, N*out_h*out_w)``; column ``n*out_h*out_w + p`` holds the
        receptive field of output pixel ``p`` of sample ``n``.
    """
    x = pad2d(x, padding)
    n, c, h, w = x.shape
    c_idx, rows, cols_idx, out_h, out_w = _window_indices(c, h, w, kernel, stride)
    patches = x[:, c_idx, rows, cols_idx]  # (N, C*kh*kw, out_h*out_w)
    cols = patches.transpose(1, 0, 2).reshape(patches.shape[1], -1)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(cols, x_shape, kernel, stride=1, padding=0):
    """Fold a column matrix back to NCHW, summing overlapping windows.

    This is the adjoint of :func:`im2col` (not its inverse): each input
    pixel accumulates contributions from every window that covered it,
    which is exactly what both the gradient and the diagonal-curvature
    backward passes require.
    """
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    c_idx, rows, cols_idx, out_h, out_w = _window_indices(c, hp, wp, kernel, stride)
    patches = cols.reshape(cols.shape[0], n, out_h * out_w).transpose(1, 0, 2)
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    # Scatter-add each window position back onto the padded image.
    np.add.at(out, (slice(None), c_idx, rows, cols_idx), patches)
    return unpad2d(out, padding)


def softmax(logits, axis=-1):
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits, axis=-1):
    """Numerically stable log-softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels, num_classes, dtype=None, like=None):
    """One-hot encode integer labels of shape (N,) into (N, num_classes).

    The dtype is taken from ``dtype`` when given, else derived from
    ``like`` (typically the logits array), else float64.  Deriving from
    the logits keeps float32 models float32 through the loss/backward
    path instead of silently upcasting everything downstream.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
        raise ValueError("labels out of range")
    if dtype is None:
        dtype = np.asarray(like).dtype if like is not None else np.float64
    out = np.zeros((labels.size, num_classes), dtype=dtype)
    out[np.arange(labels.size), labels] = 1
    return out
