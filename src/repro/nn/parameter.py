"""Learnable parameters with gradient and diagonal-curvature buffers.

A :class:`Parameter` owns three same-shaped arrays:

``data``
    The current value.
``grad``
    First-derivative accumulator, filled by ``Module.backward`` (Eq. 12/13
    of the paper).
``curvature``
    Diagonal-second-derivative accumulator, filled by
    ``Module.backward_second`` (Eq. 8/10 of the paper).  This is the
    quantity SWIM uses as the weight-sensitivity metric.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable tensor with ``grad`` and ``curvature`` accumulators."""

    def __init__(self, data, name="param", trainable=True):
        self.data = np.asarray(data)
        self.name = str(name)
        self.trainable = bool(trainable)
        self.grad = np.zeros_like(self.data)
        self.curvature = np.zeros_like(self.data)

    @property
    def shape(self):
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def size(self):
        """Number of scalar elements."""
        return self.data.size

    @property
    def dtype(self):
        """Dtype of the underlying array."""
        return self.data.dtype

    def zero_grad(self):
        """Reset the gradient accumulator to zero."""
        self.grad = np.zeros_like(self.data)

    def zero_curvature(self):
        """Reset the curvature accumulator to zero."""
        self.curvature = np.zeros_like(self.data)

    def accumulate_grad(self, delta):
        """Add ``delta`` into the gradient accumulator."""
        self.grad = self.grad + delta

    def accumulate_curvature(self, delta):
        """Add ``delta`` into the curvature accumulator."""
        self.curvature = self.curvature + delta

    def copy_(self, values):
        """In-place overwrite of ``data`` (shape-checked)."""
        values = np.asarray(values, dtype=self.data.dtype)
        if values.shape != self.data.shape:
            raise ValueError(
                f"shape mismatch for {self.name}: "
                f"{values.shape} vs {self.data.shape}"
            )
        self.data = values.copy()

    def __repr__(self):
        return f"Parameter({self.name}, shape={self.data.shape}, dtype={self.dtype})"
