"""Loss functions with first- and second-derivative seeds.

The paper's curvature recursion starts from ``d2F/dO_j^2``, the diagonal
second derivative of the loss w.r.t. the network output (Sec. 3.3):

- L2 loss: ``d2F/dO_j^2 = 2`` (per sample; ``2/N`` under a batch mean).
- Cross-entropy with softmax: ``p_j (1 - p_j)`` with
  ``p_j = exp(O_j) / sum_k exp(O_k)``.

Note: the paper's Eq. 11 prints the probability as ``O_j / sum exp(O_j)``;
the correct softmax probability uses ``exp(O_j)`` in the numerator.  We
implement the correct expression (validated against finite differences in
``tests/test_losses.py``).

Losses reduce with a batch mean, so both derivative seeds carry a ``1/N``
factor: the loss is a *sum* of per-sample terms scaled by ``1/N``, and both
d/dO and d2/dO2 are linear in that scaling.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss:
    """Softmax cross-entropy over logits of shape (N, C), integer targets."""

    def __init__(self):
        self._cache = None

    def forward(self, logits, targets):
        """Return the scalar mean loss and cache derivative state."""
        logits = np.asarray(logits)
        targets = np.asarray(targets, dtype=np.int64)
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, C), got {logits.shape}")
        if targets.shape != (logits.shape[0],):
            raise ValueError(
                f"targets must be ({logits.shape[0]},), got {targets.shape}"
            )
        log_probs = F.log_softmax(logits, axis=1)
        n = logits.shape[0]
        loss = -float(log_probs[np.arange(n), targets].mean())
        self._cache = {
            "probs": np.exp(log_probs),
            "targets": targets,
            "n": n,
            "num_classes": logits.shape[1],
        }
        return loss

    def __call__(self, logits, targets):
        return self.forward(logits, targets)

    def backward(self):
        """Gradient of the mean loss w.r.t. logits: ``(p - y) / N``."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs = self._cache["probs"]
        targets = self._cache["targets"]
        n = self._cache["n"]
        # one_hot derives its dtype from the probabilities (hence the
        # logits), so float32 models stay float32 through backward.
        y = F.one_hot(targets, self._cache["num_classes"], like=probs)
        return (probs - y) / n

    def second(self):
        """Diagonal curvature w.r.t. logits: ``p (1 - p) / N`` (Eq. 11)."""
        if self._cache is None:
            raise RuntimeError("second called before forward")
        probs = self._cache["probs"]
        return probs * (1.0 - probs) / self._cache["n"]


class MSELoss:
    """Mean over the batch of the sum of squared errors per sample."""

    def __init__(self):
        self._cache = None

    def forward(self, outputs, targets):
        """Return ``mean_n sum_c (o - y)^2`` and cache derivative state."""
        outputs = np.asarray(outputs)
        targets = np.asarray(targets)
        if outputs.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: outputs {outputs.shape} vs targets "
                f"{targets.shape}"
            )
        diff = outputs - targets
        n = outputs.shape[0]
        self._cache = {"diff": diff, "n": n}
        return float(np.square(diff).sum() / n)

    def __call__(self, outputs, targets):
        return self.forward(outputs, targets)

    def backward(self):
        """Gradient: ``2 (o - y) / N``."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._cache["diff"] / self._cache["n"]

    def second(self):
        """Diagonal curvature: the constant ``2 / N`` (paper Sec. 3.3)."""
        if self._cache is None:
            raise RuntimeError("second called before forward")
        diff = self._cache["diff"]
        return np.full_like(diff, 2.0 / self._cache["n"])
