"""Uniform quantization for weights and activations.

The paper quantizes weights and activations to 4 bits (LeNet) or 6 bits
(ConvNet, ResNet-18) before mapping (Sec. 4.2-4.4), with the desired weight
code defined by Eq. 14 as an M-bit *magnitude* plus sign (negative weights
map "in a similar manner", i.e. onto a differential device column).

Conventions implemented here:

- **Symmetric per-tensor scheme.**  A weight tensor with scale
  ``s = max|w| / qmax`` maps value ``w`` to integer code
  ``round(w / s)`` clipped to ``[-qmax, qmax]`` with ``qmax = 2^M - 1``
  (M magnitude bits, Eq. 14).
- **Straight-through estimator (STE).**  During quantization-aware
  training the forward pass sees quantized values while gradients flow to
  the float master copy unchanged (clipped outside the representable
  range for activations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers.base import WeightedLayer
from repro.nn.module import Module

__all__ = [
    "QuantConfig",
    "quantize_symmetric",
    "dequantize",
    "fake_quantize",
    "ActQuant",
    "attach_weight_quantizers",
    "detach_weight_quantizers",
]


@dataclass(frozen=True)
class QuantConfig:
    """Bit widths used when preparing a model for CiM mapping.

    Attributes
    ----------
    weight_bits:
        Magnitude bits M of Eq. 14 (sign is differential, not a bit).
    act_bits:
        Activation bits; ``None`` disables activation quantization.
    """

    weight_bits: int = 4
    act_bits: int | None = 4

    def __post_init__(self):
        if self.weight_bits < 1:
            raise ValueError("weight_bits must be >= 1")
        if self.act_bits is not None and self.act_bits < 1:
            raise ValueError("act_bits must be >= 1 or None")

    @property
    def qmax(self):
        """Largest magnitude code, ``2^M - 1``."""
        return (1 << self.weight_bits) - 1


def quantize_symmetric(values, bits, scale=None):
    """Quantize to signed integer codes in ``[-qmax, qmax]``.

    Parameters
    ----------
    values:
        Float array.
    bits:
        Magnitude bit count M; ``qmax = 2^M - 1``.
    scale:
        Optional fixed scale; defaults to ``max|values| / qmax``.

    Returns
    -------
    tuple
        ``(codes, scale)`` with ``codes`` an int64 array satisfying
        ``values ~= codes * scale``.
    """
    values = np.asarray(values, dtype=np.float64)
    qmax = (1 << int(bits)) - 1
    if scale is None:
        peak = float(np.max(np.abs(values), initial=0.0))
        scale = peak / qmax if peak > 0 else 1.0
    codes = np.clip(np.rint(values / scale), -qmax, qmax).astype(np.int64)
    return codes, float(scale)


def dequantize(codes, scale):
    """Map integer codes back to float values."""
    return np.asarray(codes, dtype=np.float64) * float(scale)


def fake_quantize(values, bits, scale=None):
    """Quantize-dequantize round trip (same dtype as input)."""
    values = np.asarray(values)
    codes, s = quantize_symmetric(values, bits, scale=scale)
    return dequantize(codes, s).astype(values.dtype)


class _WeightFakeQuant:
    """Callable attached to ``WeightedLayer.weight_quantizer``."""

    def __init__(self, bits):
        self.bits = int(bits)

    def __call__(self, weights):
        return fake_quantize(weights, self.bits)

    def __repr__(self):
        return f"_WeightFakeQuant(bits={self.bits})"


def attach_weight_quantizers(model, bits):
    """Enable STE weight fake-quantization on every weighted layer.

    Returns the number of layers affected.
    """
    count = 0
    for module in model.modules():
        if isinstance(module, WeightedLayer):
            module.weight_quantizer = _WeightFakeQuant(bits)
            count += 1
    return count


def detach_weight_quantizers(model):
    """Remove weight fake-quantization from every weighted layer."""
    count = 0
    for module in model.modules():
        if isinstance(module, WeightedLayer):
            if module.weight_quantizer is not None:
                count += 1
            module.weight_quantizer = None
    return count


class ActQuant(Module):
    """Activation fake-quantization layer with running-range calibration.

    In training mode the layer tracks the maximum absolute activation with
    an exponential moving average and quantizes with the straight-through
    estimator (gradient clipped outside the representable range).  In
    inference mode the frozen range is used.  Placed after each activation
    in the quantized model definitions, mirroring the paper's "weights and
    activation are quantized" setting.
    """

    def __init__(self, bits, momentum=0.1):
        super().__init__()
        self.bits = int(bits)
        self.momentum = float(momentum)
        self.running_peak = 0.0
        self.register_buffer_name("running_peak")
        self._cache = None

    def forward(self, x):
        if self.training:
            peak = float(np.max(np.abs(x), initial=0.0))
            if self.running_peak == 0.0:
                self.running_peak = peak
            else:
                self.running_peak = (
                    (1 - self.momentum) * self.running_peak + self.momentum * peak
                )
        peak = self.running_peak
        if peak <= 0.0:
            self._cache = {"mask": np.ones_like(x, dtype=bool)}
            return x
        qmax = (1 << self.bits) - 1
        scale = peak / qmax
        clipped = np.clip(x, -peak, peak)
        out = np.rint(clipped / scale) * scale
        self._cache = {"mask": np.abs(x) <= peak}
        return out.astype(x.dtype)

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._cache["mask"]

    def backward_second(self, curv_out):
        if self._cache is None:
            raise RuntimeError("backward_second called before forward")
        return curv_out * self._cache["mask"]

    def __repr__(self):
        return f"ActQuant(bits={self.bits}, peak={self.running_peak:.4g})"
