"""A from-scratch NumPy deep-learning framework.

This package is the substrate the SWIM reproduction runs on (the original
paper used PyTorch, which is unavailable in this environment).  Every layer
implements three passes:

- ``forward(x)`` — compute outputs, cache intermediates;
- ``backward(grad)`` — reverse-mode gradients (paper Eqs. 12-13);
- ``backward_second(curv)`` — the paper's single-pass diagonal
  second-derivative recursion (Eqs. 8-10), the core of SWIM.
"""

from repro.nn import functional, init
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
    WeightedLayer,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.module import Module, Sequential
from repro.nn.optim import SGD, Adam, constant_schedule, cosine_schedule, step_schedule
from repro.nn.parameter import Parameter
from repro.nn.quant import (
    ActQuant,
    QuantConfig,
    attach_weight_quantizers,
    dequantize,
    detach_weight_quantizers,
    fake_quantize,
    quantize_symmetric,
)
from repro.nn.trainer import (
    TrainConfig,
    TrainHistory,
    Trainer,
    evaluate_accuracy,
    iterate_batches,
)

__all__ = [
    "ActQuant",
    "Adam",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "CrossEntropyLoss",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "LeakyReLU",
    "Linear",
    "MSELoss",
    "MaxPool2d",
    "Module",
    "Parameter",
    "QuantConfig",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "TrainConfig",
    "TrainHistory",
    "Trainer",
    "WeightedLayer",
    "attach_weight_quantizers",
    "constant_schedule",
    "cosine_schedule",
    "dequantize",
    "detach_weight_quantizers",
    "evaluate_accuracy",
    "fake_quantize",
    "functional",
    "init",
    "iterate_batches",
    "quantize_symmetric",
    "step_schedule",
]
