"""Optimizers and learning-rate schedules for the training substrate.

The models mapped to the CiM simulator are trained off-chip first (paper
Sec. 4.2: "all models ... trained to converge on GPU before mapping").  SGD
with momentum and Adam cover everything the model zoo needs; schedules are
simple callables ``epoch -> lr`` so the trainer stays decoupled.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam", "cosine_schedule", "step_schedule", "constant_schedule"]


class Optimizer:
    """Base: holds parameters and a current learning rate."""

    def __init__(self, params, lr):
        self.params = [p for p in params if p.trainable]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = float(lr)

    def zero_grad(self):
        """Zero gradient accumulators of all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self):
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with momentum, Nesterov, and decoupled weight decay."""

    def __init__(self, params, lr=0.1, momentum=0.9, weight_decay=0.0, nesterov=False):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self):
        for p, vel in zip(self.params, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            vel *= self.momentum
            vel += grad
            update = grad + self.momentum * vel if self.nesterov else vel
            p.data = p.data - self.lr * update.astype(p.data.dtype)


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(self, params, lr=1e-3, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self):
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * np.square(grad)
            m_hat = m / bc1
            v_hat = v / bc2
            p.data = p.data - (self.lr * m_hat / (np.sqrt(v_hat) + self.eps)).astype(
                p.data.dtype
            )


def cosine_schedule(base_lr, total_epochs, min_lr=0.0):
    """Cosine decay from ``base_lr`` to ``min_lr`` over ``total_epochs``."""

    def schedule(epoch):
        frac = min(max(epoch, 0), total_epochs) / max(total_epochs, 1)
        return min_lr + 0.5 * (base_lr - min_lr) * (1 + np.cos(np.pi * frac))

    return schedule


def step_schedule(base_lr, milestones, gamma=0.1):
    """Multiply the LR by ``gamma`` at each epoch in ``milestones``."""
    milestones = sorted(int(m) for m in milestones)

    def schedule(epoch):
        factor = sum(1 for m in milestones if epoch >= m)
        return base_lr * (gamma ** factor)

    return schedule


def constant_schedule(base_lr):
    """A constant learning rate."""

    def schedule(epoch):
        return base_lr

    return schedule
