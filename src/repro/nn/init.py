"""Weight initializers (seeded, deterministic).

All initializers take an :class:`~repro.utils.rng.RngStream` so model
construction is reproducible given a seed.  The fan computations follow the
conventions of He et al. (Kaiming) and Glorot (Xavier).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "compute_fans",
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "zeros",
    "ones",
]


def compute_fans(shape):
    """Return ``(fan_in, fan_out)`` for a weight tensor shape.

    Linear weights are ``(out, in)``; conv weights are
    ``(out_channels, in_channels, kh, kw)``.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    elif len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(shape, rng, gain=np.sqrt(2.0), dtype=np.float32):
    """He-normal init: std = gain / sqrt(fan_in)."""
    fan_in, _ = compute_fans(shape)
    std = gain / np.sqrt(max(fan_in, 1))
    return rng.generator.normal(0.0, std, size=shape).astype(dtype)


def kaiming_uniform(shape, rng, gain=np.sqrt(2.0), dtype=np.float32):
    """He-uniform init: bound = gain * sqrt(3 / fan_in)."""
    fan_in, _ = compute_fans(shape)
    bound = gain * np.sqrt(3.0 / max(fan_in, 1))
    return rng.generator.uniform(-bound, bound, size=shape).astype(dtype)


def xavier_uniform(shape, rng, gain=1.0, dtype=np.float32):
    """Glorot-uniform init: bound = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = compute_fans(shape)
    bound = gain * np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.generator.uniform(-bound, bound, size=shape).astype(dtype)


def zeros(shape, dtype=np.float32):
    """All-zero tensor (biases, BatchNorm beta)."""
    return np.zeros(shape, dtype=dtype)


def ones(shape, dtype=np.float32):
    """All-one tensor (BatchNorm gamma)."""
    return np.ones(shape, dtype=dtype)
