"""Model zoo: the paper's three workloads plus test helpers."""

from repro.nn.models.convnet import convnet
from repro.nn.models.lenet import lenet
from repro.nn.models.mlp import mlp
from repro.nn.models.resnet import BasicBlock, resnet, resnet18

__all__ = ["BasicBlock", "convnet", "lenet", "mlp", "resnet", "resnet18"]
