"""LeNet for 28x28 grayscale inputs — the paper's MNIST workload (Table 1).

Topology (LeNet-5 style): two conv+pool stages followed by three fully
connected layers.  Channel/feature widths are configurable so tests can use
tiny instances; the defaults match the classic definition.  Optional
``ActQuant`` layers after each ReLU implement the paper's "weights and
activations are quantized to 4 bits" setting.
"""

from __future__ import annotations

from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.module import Sequential
from repro.nn.quant import ActQuant

__all__ = ["lenet"]


def lenet(
    rng,
    num_classes=10,
    in_channels=1,
    conv_channels=(6, 16),
    fc_features=(120, 84),
    act_bits=None,
    image_size=28,
):
    """Build a LeNet as a :class:`~repro.nn.module.Sequential`.

    Parameters
    ----------
    rng:
        :class:`~repro.utils.rng.RngStream` for weight initialization.
    num_classes:
        Output classes.
    in_channels:
        Input image channels.
    conv_channels:
        Channels of the two convolution stages.
    fc_features:
        Widths of the two hidden fully connected layers.
    act_bits:
        When set, insert :class:`ActQuant` after every ReLU.
    image_size:
        Input spatial size (square).

    Returns
    -------
    Sequential
        The model; expects inputs of shape ``(N, in_channels, S, S)``.
    """
    c1, c2 = conv_channels
    f1, f2 = fc_features
    # conv1 keeps the spatial size (padding 2 with kernel 5); two 2x2 pools
    # and an unpadded conv shrink S -> S/2 -> (S/2 - 4) -> (S/2 - 4)/2.
    feat = (image_size // 2 - 4) // 2
    if feat <= 0:
        raise ValueError(f"image_size {image_size} too small for LeNet")

    def maybe_quant(layers):
        if act_bits is not None:
            layers.append(ActQuant(act_bits))
        return layers

    layers = []
    layers.append(Conv2d(in_channels, c1, 5, padding=2, rng=rng.child("conv1")))
    layers.append(ReLU())
    maybe_quant(layers)
    layers.append(MaxPool2d(2))
    layers.append(Conv2d(c1, c2, 5, rng=rng.child("conv2")))
    layers.append(ReLU())
    maybe_quant(layers)
    layers.append(MaxPool2d(2))
    layers.append(Flatten())
    layers.append(Linear(c2 * feat * feat, f1, rng=rng.child("fc1")))
    layers.append(ReLU())
    maybe_quant(layers)
    layers.append(Linear(f1, f2, rng=rng.child("fc2")))
    layers.append(ReLU())
    maybe_quant(layers)
    layers.append(Linear(f2, num_classes, rng=rng.child("fc3")))
    return Sequential(*layers)
