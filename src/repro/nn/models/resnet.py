"""ResNet-18 (CIFAR-style stem) — the paper's Fig. 2b/2c workload.

The residual block implements the skip-connection rule the paper states for
the curvature pass: "the second derivatives of different branches are
summed up" (Sec. 3.3).  ``backward`` and ``backward_second`` therefore send
the incoming derivative through both the residual body and the shortcut
and add the two input derivatives.

``width_mult`` scales channel widths so the CPU-only experiments stay
tractable (full width = the paper's 11.2M-weight model); ``stage_blocks``
allows shallower variants (e.g. ResNet-10) for tests.
"""

from __future__ import annotations

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.nn.quant import ActQuant

__all__ = ["BasicBlock", "resnet18", "resnet"]


class BasicBlock(Module):
    """Two 3x3 conv-BN pairs with a (possibly projecting) shortcut."""

    def __init__(self, in_channels, out_channels, stride, rng, act_bits=None):
        super().__init__()
        body = [
            Conv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                   bias=False, rng=rng.child("conv1")),
            BatchNorm2d(out_channels),
            ReLU(),
        ]
        if act_bits is not None:
            body.append(ActQuant(act_bits))
        body += [
            Conv2d(out_channels, out_channels, 3, padding=1, bias=False,
                   rng=rng.child("conv2")),
            BatchNorm2d(out_channels),
        ]
        self.body = Sequential(*body)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False,
                       rng=rng.child("proj")),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()
        self.relu_out = ReLU()
        if act_bits is not None:
            self.act_quant = ActQuant(act_bits)
        else:
            self.act_quant = Identity()

    def forward(self, x):
        main = self.body(x)
        skip = self.shortcut(x)
        return self.act_quant(self.relu_out(main + skip))

    def backward(self, grad_out):
        grad_out = self.act_quant.backward(grad_out)
        grad_out = self.relu_out.backward(grad_out)
        grad_main = self.body.backward(grad_out)
        grad_skip = self.shortcut.backward(grad_out)
        return grad_main + grad_skip

    def backward_second(self, curv_out):
        curv_out = self.act_quant.backward_second(curv_out)
        curv_out = self.relu_out.backward_second(curv_out)
        curv_main = self.body.backward_second(curv_out)
        curv_skip = self.shortcut.backward_second(curv_out)
        # Paper Sec. 3.3: branch second derivatives are summed.
        return curv_main + curv_skip


def _scaled(width, mult, minimum=8):
    return max(int(round(width * mult)), minimum)


def resnet(
    rng,
    num_classes=10,
    in_channels=3,
    stage_blocks=(2, 2, 2, 2),
    width_mult=1.0,
    act_bits=None,
):
    """Build a CIFAR-style ResNet.

    Parameters
    ----------
    rng:
        :class:`~repro.utils.rng.RngStream` for weight initialization.
    stage_blocks:
        Blocks per stage; ``(2, 2, 2, 2)`` is ResNet-18.
    width_mult:
        Multiplies stage channel widths (1.0 = the paper's model).
    act_bits:
        When set, insert :class:`ActQuant` after every ReLU.
    """
    widths = [_scaled(c, width_mult) for c in (64, 128, 256, 512)]
    layers = [
        Conv2d(in_channels, widths[0], 3, padding=1, bias=False,
               rng=rng.child("stem")),
        BatchNorm2d(widths[0]),
        ReLU(),
    ]
    if act_bits is not None:
        layers.append(ActQuant(act_bits))
    prev = widths[0]
    for stage, (width, blocks) in enumerate(zip(widths, stage_blocks)):
        for block in range(blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            layers.append(
                BasicBlock(prev, width, stride,
                           rng.child(f"s{stage}b{block}"), act_bits=act_bits)
            )
            prev = width
    layers += [
        GlobalAvgPool2d(),
        Linear(prev, num_classes, rng=rng.child("fc")),
    ]
    return Sequential(*layers)


def resnet18(rng, num_classes=10, in_channels=3, width_mult=1.0, act_bits=None):
    """ResNet-18: four stages of two BasicBlocks each."""
    return resnet(
        rng,
        num_classes=num_classes,
        in_channels=in_channels,
        stage_blocks=(2, 2, 2, 2),
        width_mult=width_mult,
        act_bits=act_bits,
    )
