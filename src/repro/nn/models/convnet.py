"""ConvNet for CIFAR-sized inputs — the paper's Fig. 2a workload.

The paper's ConvNet cites DNN+NeuroSim [6], whose CIFAR-10 network is a
VGG-8-style stack: three blocks of (conv, conv, pool) with channel widths
(128, 256, 512) followed by a 1024-wide fully connected layer.  A
``width_mult`` knob scales all channel widths so the CPU-only experiments
stay tractable; the full-width instance has ~6.4M weights, matching the
paper's reported parameter count.
"""

from __future__ import annotations

from repro.nn.layers import BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.module import Sequential
from repro.nn.quant import ActQuant

__all__ = ["convnet"]


def _scaled(width, mult, minimum=8):
    return max(int(round(width * mult)), minimum)


def convnet(
    rng,
    num_classes=10,
    in_channels=3,
    width_mult=1.0,
    image_size=32,
    act_bits=None,
    batch_norm=True,
    fc_features=1024,
):
    """Build the NeuroSim-style CIFAR ConvNet (VGG-8 layout).

    Parameters
    ----------
    rng:
        :class:`~repro.utils.rng.RngStream` for weight initialization.
    width_mult:
        Multiplies every channel width (1.0 = paper scale, ~6.4M weights).
    act_bits:
        When set, insert :class:`ActQuant` after every ReLU.
    batch_norm:
        Insert BatchNorm2d after each convolution (stabilizes training of
        the from-scratch substrate; disabled reproduces the bare stack).
    """
    widths = [_scaled(c, width_mult) for c in (128, 256, 512)]
    fc_width = _scaled(fc_features, width_mult, minimum=32)
    if image_size % 8 != 0:
        raise ValueError(f"image_size must be divisible by 8, got {image_size}")
    feat = image_size // 8

    layers = []
    prev = in_channels
    for block_index, width in enumerate(widths):
        for conv_index in range(2):
            name = f"b{block_index}c{conv_index}"
            layers.append(
                Conv2d(prev, width, 3, padding=1, bias=not batch_norm,
                       rng=rng.child(name))
            )
            if batch_norm:
                layers.append(BatchNorm2d(width))
            layers.append(ReLU())
            if act_bits is not None:
                layers.append(ActQuant(act_bits))
            prev = width
        layers.append(MaxPool2d(2))
    layers.append(Flatten())
    layers.append(Linear(prev * feat * feat, fc_width, rng=rng.child("fc1")))
    layers.append(ReLU())
    if act_bits is not None:
        layers.append(ActQuant(act_bits))
    layers.append(Linear(fc_width, num_classes, rng=rng.child("fc2")))
    return Sequential(*layers)
