"""Small multilayer perceptrons for tests, toys, and finite-difference checks."""

from __future__ import annotations

from repro.nn.layers import Flatten, Linear, ReLU, Sigmoid, Tanh
from repro.nn.module import Sequential

__all__ = ["mlp"]

_ACTIVATIONS = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid}


def mlp(rng, layer_sizes, activation="relu", flatten_input=False):
    """Build an MLP with the given layer sizes.

    Parameters
    ----------
    rng:
        :class:`~repro.utils.rng.RngStream` for weight initialization.
    layer_sizes:
        E.g. ``(784, 128, 10)`` builds two Linear layers with one
        activation between them.
    activation:
        One of ``relu``, ``tanh``, ``sigmoid``.
    flatten_input:
        Prepend a Flatten layer (for image inputs).
    """
    if len(layer_sizes) < 2:
        raise ValueError("need at least input and output sizes")
    if activation not in _ACTIVATIONS:
        raise ValueError(f"unknown activation {activation!r}")
    act_cls = _ACTIVATIONS[activation]
    layers = [Flatten()] if flatten_input else []
    for index, (fan_in, fan_out) in enumerate(zip(layer_sizes, layer_sizes[1:])):
        layers.append(Linear(fan_in, fan_out, rng=rng.child(f"fc{index}")))
        if index < len(layer_sizes) - 2:
            layers.append(act_cls())
    return Sequential(*layers)
