"""Statistical helpers used by the Monte Carlo experiment harness.

These are deliberately small, dependency-light implementations of the
aggregate statistics reported in the paper: mean +/- std over Monte Carlo
runs (Table 1, Fig. 2 shading), Pearson correlation (Fig. 1b quotes a
coefficient of 0.83), and bootstrap confidence intervals used by the
integration tests to make stochastic assertions robust.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MeanStd",
    "summarize",
    "pearson",
    "spearman",
    "bootstrap_mean_ci",
    "running_mean_converged",
]


@dataclass(frozen=True)
class MeanStd:
    """A mean +/- std pair with sample count, formatted like the paper."""

    mean: float
    std: float
    n: int

    def __str__(self):
        return f"{self.mean:.2f} ± {self.std:.2f}"

    def as_tuple(self):
        """Return ``(mean, std)``."""
        return (self.mean, self.std)


def summarize(values):
    """Summarize a sequence of Monte Carlo results as :class:`MeanStd`.

    Uses the population std (ddof=0) as the paper's tables do not state a
    correction and run counts are large.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return MeanStd(mean=float(arr.mean()), std=float(arr.std()), n=int(arr.size))


def pearson(x, y):
    """Pearson correlation coefficient between two 1-D sequences.

    Returns 0.0 when either input is constant (correlation undefined),
    which is the conservative choice for sensitivity-metric comparisons.
    """
    ax = np.asarray(x, dtype=np.float64).ravel()
    ay = np.asarray(y, dtype=np.float64).ravel()
    if ax.shape != ay.shape:
        raise ValueError(f"shape mismatch: {ax.shape} vs {ay.shape}")
    if ax.size < 2:
        raise ValueError("need at least two points")
    sx = ax.std()
    sy = ay.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(((ax - ax.mean()) * (ay - ay.mean())).mean() / (sx * sy))


def _rankdata(values):
    """Average-tie ranks (1-based), like scipy.stats.rankdata."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    order = np.argsort(arr, kind="stable")
    ranks = np.empty(arr.size, dtype=np.float64)
    sorted_vals = arr[order]
    i = 0
    while i < arr.size:
        j = i
        while j + 1 < arr.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def spearman(x, y):
    """Spearman rank correlation (Pearson on average-tie ranks)."""
    return pearson(_rankdata(x), _rankdata(y))


def bootstrap_mean_ci(values, confidence=0.95, n_resamples=2000, seed=0):
    """Bootstrap confidence interval for the mean of ``values``.

    Returns ``(low, high)``.  Used by statistical integration tests so that
    assertions like "SWIM beats Random at NWC=0.1" tolerate Monte Carlo
    noise without being vacuous.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sequence")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(low), float(high)


def running_mean_converged(values, rel_tol=0.01, window=10):
    """Check whether the running mean of a Monte Carlo sequence has settled.

    True when the last ``window`` running-mean values all lie within
    ``rel_tol`` (relative) of the final mean.  Mirrors the paper's remark
    that results are reported "with verified convergence".
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size < window + 1:
        return False
    cums = np.cumsum(arr) / np.arange(1, arr.size + 1)
    final = cums[-1]
    scale = max(abs(final), 1e-12)
    tail = cums[-window:]
    return bool(np.all(np.abs(tail - final) <= rel_tol * scale))
