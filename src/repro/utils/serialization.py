"""Save/load of model parameters and experiment results as ``.npz`` files.

Trained models are the most expensive artifact in the repository (ResNet-18
training dominates experiment time), so the model zoo caches parameters on
disk keyed by a content hash of the training configuration.  Results are
stored the same way so a benchmark re-run can skip completed sweeps.
"""

from __future__ import annotations

import json
import os

import numpy as np

__all__ = [
    "save_state_dict",
    "load_state_dict",
    "save_results",
    "load_results",
]

_META_KEY = "__meta_json__"


def save_state_dict(path, state, meta=None):
    """Save a ``name -> ndarray`` mapping (plus JSON metadata) to ``path``.

    Parameters
    ----------
    path:
        Destination file; parent directories are created.
    state:
        Mapping from parameter name to numpy array.
    meta:
        Optional JSON-serializable metadata dictionary.
    """
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload = {str(k): np.asarray(v) for k, v in state.items()}
    if _META_KEY in payload:
        raise ValueError(f"state may not use reserved key {_META_KEY!r}")
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)


def load_state_dict(path):
    """Load a state dict saved by :func:`save_state_dict`.

    Returns
    -------
    tuple
        ``(state, meta)`` where ``state`` maps names to arrays and ``meta``
        is the metadata dictionary (empty if none was saved).
    """
    with np.load(path, allow_pickle=False) as archive:
        state = {}
        meta = {}
        for key in archive.files:
            if key == _META_KEY:
                meta = json.loads(bytes(archive[key].tobytes()).decode("utf-8"))
            else:
                state[key] = archive[key]
    return state, meta


def save_results(path, arrays, meta=None):
    """Alias of :func:`save_state_dict` for experiment result arrays."""
    save_state_dict(path, arrays, meta=meta)


def load_results(path):
    """Alias of :func:`load_state_dict` for experiment result arrays."""
    return load_state_dict(path)
