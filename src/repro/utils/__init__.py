"""Shared infrastructure: deterministic RNG streams, statistics, rendering.

Nothing in this package knows about neural networks or CiM devices; it is
pure plumbing shared by the substrates and the experiment drivers.
"""

from repro.utils.ascii_plot import line_plot, scatter_plot
from repro.utils.cache import ArtifactCache, config_key, default_cache_dir
from repro.utils.rng import RngStream, derive_seed
from repro.utils.serialization import (
    load_results,
    load_state_dict,
    save_results,
    save_state_dict,
)
from repro.utils.stats import (
    MeanStd,
    bootstrap_mean_ci,
    pearson,
    running_mean_converged,
    spearman,
    summarize,
)
from repro.utils.tables import Table, format_markdown, format_table

__all__ = [
    "ArtifactCache",
    "MeanStd",
    "RngStream",
    "Table",
    "bootstrap_mean_ci",
    "config_key",
    "default_cache_dir",
    "derive_seed",
    "format_markdown",
    "format_table",
    "line_plot",
    "load_results",
    "load_state_dict",
    "pearson",
    "running_mean_converged",
    "save_results",
    "save_state_dict",
    "scatter_plot",
    "spearman",
    "summarize",
]
