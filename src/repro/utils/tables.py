"""Paper-style table rendering.

The experiment drivers print their results in the same row/column layout as
the paper's Table 1 so that a reader can compare side by side.  Tables are
rendered as plain text (terminal) and GitHub-flavoured markdown (reports).
"""

from __future__ import annotations

__all__ = ["Table", "format_table", "format_markdown"]


class Table:
    """A small column-aligned table builder.

    Example
    -------
    >>> t = Table(["method", "NWC=0.1", "NWC=0.5"])
    >>> t.add_row(["SWIM", "98.49 ± 0.08", "98.57 ± 0.08"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers, title=None):
        self.headers = [str(h) for h in headers]
        self.title = title
        self.rows = []

    def add_row(self, cells):
        """Append one row; cells are stringified."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self.headers)}"
            )
        self.rows.append(row)

    def add_separator(self):
        """Append a horizontal separator row."""
        self.rows.append(None)

    def render(self):
        """Render as aligned plain text."""
        return format_table(self.headers, self.rows, title=self.title)

    def render_markdown(self):
        """Render as GitHub-flavoured markdown."""
        return format_markdown(self.headers, self.rows, title=self.title)

    def to_csv(self):
        """Render as CSV text (separator rows are skipped)."""
        lines = [",".join(self.headers)]
        for row in self.rows:
            if row is None:
                continue
            lines.append(",".join(cell.replace(",", ";") for cell in row))
        return "\n".join(lines) + "\n"


def _column_widths(headers, rows):
    widths = [len(h) for h in headers]
    for row in rows:
        if row is None:
            continue
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    return widths


def format_table(headers, rows, title=None):
    """Format headers + rows as an aligned text table.

    ``rows`` may contain ``None`` entries which render as separators.
    """
    widths = _column_widths(headers, rows)
    sep = "-+-".join("-" * w for w in widths)

    def fmt_row(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append(sep)
    for row in rows:
        lines.append(sep if row is None else fmt_row(row))
    return "\n".join(lines)


def format_markdown(headers, rows, title=None):
    """Format headers + rows as a markdown table (separators skipped)."""
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        if row is None:
            continue
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
