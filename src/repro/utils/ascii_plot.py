"""Terminal line/scatter plots for the figure reproductions.

The execution environment has no matplotlib, so the Fig. 1 and Fig. 2
reproductions render their curves as ASCII plots.  The goal is to make the
*shape* of each figure (who is on top, where curves cross, how wide the
std band is) visible directly in the benchmark output.
"""

from __future__ import annotations

import numpy as np

__all__ = ["line_plot", "scatter_plot"]

_MARKERS = "ox+*#@%&"


def _prepare_axes(xs_all, ys_all, width, height):
    x_min = min(float(np.min(x)) for x in xs_all)
    x_max = max(float(np.max(x)) for x in xs_all)
    y_min = min(float(np.min(y)) for y in ys_all)
    y_max = max(float(np.max(y)) for y in ys_all)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    # Pad y range slightly so extreme points are not clipped to the frame.
    pad = 0.02 * (y_max - y_min)
    return x_min, x_max, y_min - pad, y_max + pad


def line_plot(
    series,
    width=72,
    height=20,
    title=None,
    xlabel=None,
    ylabel=None,
    draw_lines=True,
):
    """Render named (x, y) series as an ASCII plot.

    Parameters
    ----------
    series:
        Mapping of ``name -> (x_values, y_values)``.
    width, height:
        Plot body size in characters.
    title, xlabel, ylabel:
        Optional labels.
    draw_lines:
        When True, interpolate a dotted polyline between points.

    Returns
    -------
    str
        The rendered plot, ready to print.
    """
    if not series:
        raise ValueError("no series to plot")
    names = list(series)
    xs_all = [np.asarray(series[n][0], dtype=np.float64) for n in names]
    ys_all = [np.asarray(series[n][1], dtype=np.float64) for n in names]
    x_min, x_max, y_min, y_max = _prepare_axes(xs_all, ys_all, width, height)

    grid = [[" "] * width for _ in range(height)]

    def to_col(x):
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y):
        frac = (y - y_min) / (y_max - y_min)
        return (height - 1) - int(round(frac * (height - 1)))

    for idx, name in enumerate(names):
        marker = _MARKERS[idx % len(_MARKERS)]
        xv, yv = xs_all[idx], ys_all[idx]
        order = np.argsort(xv)
        xv, yv = xv[order], yv[order]
        # Dense interpolation so the polyline is visually continuous.
        if draw_lines and xv.size >= 2:
            t = np.linspace(x_min, x_max, width * 2)
            t = t[(t >= xv.min()) & (t <= xv.max())]
            yi = np.interp(t, xv, yv)
            for x, y in zip(t, yi):
                grid[to_row(y)][to_col(x)] = "."
        for x, y in zip(xv, yv):
            grid[to_row(y)][to_col(x)] = marker

    lines = []
    if title:
        lines.append(title.center(width + 10))
    for r, row in enumerate(grid):
        y_here = y_max - (y_max - y_min) * r / (height - 1)
        label = f"{y_here:8.2f} |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    x_axis = f"{x_min:<10.2f}" + " " * max(0, width - 20) + f"{x_max:>10.2f}"
    lines.append(" " * 9 + x_axis)
    if xlabel:
        lines.append(" " * 9 + xlabel.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(names)
    )
    lines.append("  legend: " + legend)
    if ylabel:
        lines.insert(1 if title else 0, f"  [y: {ylabel}]")
    return "\n".join(lines)


def scatter_plot(x, y, width=72, height=20, title=None, xlabel=None, ylabel=None):
    """Render a single scatter series (used for Fig. 1a/1b)."""
    return line_plot(
        {"data": (np.asarray(x), np.asarray(y))},
        width=width,
        height=height,
        title=title,
        xlabel=xlabel,
        ylabel=ylabel,
        draw_lines=False,
    )
