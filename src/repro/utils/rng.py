"""Deterministic, hierarchical random-number streams.

Every stochastic component in this repository (dataset synthesis, weight
initialization, device programming noise, Monte Carlo trials) draws from a
named stream derived from a root seed.  Naming streams — instead of sharing
one global generator — guarantees that, for example, adding one more Monte
Carlo trial does not perturb the noise seen by the trials that ran before
it, which keeps experiment results reproducible as the code evolves.

Example
-------
>>> root = RngStream(seed=7)
>>> mc0 = root.child("mc", 0)
>>> mc1 = root.child("mc", 1)
>>> a = mc0.generator.normal(size=3)
>>> b = mc1.generator.normal(size=3)
>>> bool(abs(a - b).max() > 0)   # independent streams
True
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStream", "derive_seed"]

_HASH_BYTES = 8


def derive_seed(root_seed, *path):
    """Derive a 64-bit child seed from ``root_seed`` and a name path.

    The derivation is a SHA-256 hash of the root seed and the stringified
    path components, so it is stable across Python versions and platforms
    (unlike ``hash()``).

    Parameters
    ----------
    root_seed:
        Integer root seed.
    path:
        Arbitrary hashable path components (strings, ints).

    Returns
    -------
    int
        A non-negative 64-bit integer seed.
    """
    text = repr(int(root_seed)) + "/" + "/".join(repr(p) for p in path)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:_HASH_BYTES], "little")


class RngStream:
    """A named random stream with cheap, collision-resistant children.

    Attributes
    ----------
    seed:
        The 64-bit seed of this stream.
    generator:
        The underlying :class:`numpy.random.Generator` (lazily created).
    """

    def __init__(self, seed=0, _path=()):
        self.seed = int(seed)
        self._path = tuple(_path)
        self._generator = None

    @property
    def generator(self):
        """The numpy Generator backing this stream (created on first use)."""
        if self._generator is None:
            self._generator = np.random.default_rng(self.seed)
        return self._generator

    def child(self, *path):
        """Return an independent child stream named by ``path``.

        Calling ``child`` with the same path always returns a stream with
        the same seed, regardless of how many draws have been made from
        this or any other stream.
        """
        if not path:
            raise ValueError("child() requires at least one path component")
        return RngStream(derive_seed(self.seed, *path), self._path + path)

    def normal(self, *args, **kwargs):
        """Convenience proxy for ``generator.normal``."""
        return self.generator.normal(*args, **kwargs)

    def uniform(self, *args, **kwargs):
        """Convenience proxy for ``generator.uniform``."""
        return self.generator.uniform(*args, **kwargs)

    def integers(self, *args, **kwargs):
        """Convenience proxy for ``generator.integers``."""
        return self.generator.integers(*args, **kwargs)

    def permutation(self, *args, **kwargs):
        """Convenience proxy for ``generator.permutation``."""
        return self.generator.permutation(*args, **kwargs)

    def choice(self, *args, **kwargs):
        """Convenience proxy for ``generator.choice``."""
        return self.generator.choice(*args, **kwargs)

    def __repr__(self):
        path = "/".join(str(p) for p in self._path) or "<root>"
        return f"RngStream(seed={self.seed}, path={path!r})"
