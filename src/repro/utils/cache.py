"""Content-addressed on-disk cache for expensive artifacts.

Used by :mod:`repro.experiments.model_zoo` to avoid retraining models across
benchmark invocations.  Keys are derived from a JSON description of the
producing configuration, so any configuration change invalidates the entry.
"""

from __future__ import annotations

import hashlib
import json
import os

__all__ = ["ArtifactCache", "default_cache_dir", "config_key"]


def default_cache_dir():
    """Return the cache directory (override with ``REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def config_key(config):
    """Hash a JSON-serializable configuration into a short stable key."""
    text = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class ArtifactCache:
    """Filesystem cache mapping configuration dicts to ``.npz`` paths."""

    def __init__(self, root=None, namespace="default"):
        self.root = os.path.join(root or default_cache_dir(), namespace)

    def path_for(self, config, suffix=".npz"):
        """Return the (possibly not yet existing) path for ``config``."""
        os.makedirs(self.root, exist_ok=True)
        return os.path.join(self.root, config_key(config) + suffix)

    def has(self, config, suffix=".npz"):
        """True if an artifact for ``config`` exists."""
        return os.path.exists(self.path_for(config, suffix))

    def get_or_create(self, config, producer, loader, saver, suffix=".npz"):
        """Load the cached artifact or produce, save, and return it.

        Parameters
        ----------
        config:
            JSON-serializable configuration identifying the artifact.
        producer:
            Zero-argument callable building the artifact.
        loader:
            Callable ``path -> artifact``.
        saver:
            Callable ``(path, artifact) -> None``.
        """
        path = self.path_for(config, suffix)
        if os.path.exists(path):
            return loader(path)
        artifact = producer()
        saver(path, artifact)
        return artifact
