"""Scenario orchestration: plan a grid once, evaluate its cells in parallel.

A scenario (devices / retention / spatial / table1) is a grid of
independent Monte Carlo evaluation cells that differ only in physics
parameters (technology, read time, correlation length, sigma).  The
orchestrator expresses the grid as :class:`~repro.plan.engine.
PlanRequest`\\ s, resolves them through one :class:`~repro.plan.engine.
PlanEngine` (so shared stages — above all the curvature pass — run
once), and then maps the evaluation cells over a process pool
(``jobs=N`` / ``REPRO_JOBS``).

Determinism
-----------
Every cell derives *all* of its randomness from its own named
:class:`~repro.utils.rng.RngStream` (the per-trial substream discipline
of the Monte Carlo engine), and the planned orders are computed before
any cell runs — so no mutable state is shared between cells, and the
parallel map is bitwise-equal to the serial loop.  The pool crosses the
model via ``fork`` (models carry closures that do not pickle), exactly
like the Monte Carlo engine's trial pool; on platforms without fork the
orchestrator falls back to the serial loop with a warning.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from dataclasses import dataclass, field

from repro.core.mc import resolve_processes
from repro.plan.engine import PlanEngine, PlanRequest

__all__ = ["ScenarioCell", "ScenarioOrchestrator", "resolve_jobs"]

# Fork-inherited payload, mirroring the Monte Carlo engine's pool: set
# immediately before the pool is created so workers receive it through
# fork without pickling.
_FORK_CELL = None


def _fork_cell(index):
    return _FORK_CELL(index)


def resolve_jobs(jobs=None):
    """Resolve a scenario worker count: explicit arg, else ``REPRO_JOBS``."""
    if jobs is None:
        jobs = int(os.environ.get("REPRO_JOBS", "0")) or None
    if jobs is not None and jobs < 1:
        raise ValueError("jobs must be >= 1")
    return jobs


@dataclass
class ScenarioCell:
    """One grid point: a plan request plus its Monte Carlo envelope.

    Attributes
    ----------
    key:
        Scenario-specific cell identity (technology name, (technology,
        read time) pair, correlation length, sigma) — the key of the
        scenario's outcome dict.
    request:
        The :class:`~repro.plan.engine.PlanRequest` describing the
        cell's physics and method set.
    rng:
        Root :class:`~repro.utils.rng.RngStream` of the cell's Monte
        Carlo sweep.  Scenarios that pair draws across cells (retention
        read times, spatial correlation lengths) pass the *same* stream
        to every paired cell.
    mc_runs:
        Monte Carlo trials of the cell.
    sweep_kwargs:
        Extra keyword arguments forwarded to
        :func:`~repro.experiments.sweeps.run_method_sweep` (e.g.
        ``insitu_lr`` for Table 1).
    """

    key: object
    request: PlanRequest
    rng: object
    mc_runs: int
    sweep_kwargs: dict = field(default_factory=dict)


class ScenarioOrchestrator:
    """Plans and executes a scenario's cell grid.

    Parameters
    ----------
    zoo:
        The :class:`~repro.experiments.model_zoo.ZooModel` every cell
        evaluates.
    eval_samples / sense_samples:
        Evaluation and sensitivity subset sizes (the scale preset's).
    cache:
        Optional :class:`~repro.plan.cache.PlanArtifactCache` for the
        engine (default: the shared on-disk cache).
    engine:
        Optional pre-built :class:`~repro.plan.engine.PlanEngine`
        (overrides ``cache``); the orchestrator otherwise builds one on
        the zoo's training subset, mirroring the sweep machinery's
        sense-set slicing.

    Attributes
    ----------
    plans:
        ``cell key -> SelectionPlan`` of the most recent :meth:`run`
        (or :meth:`plan_cells`) — the offline-reusable artifact.
    """

    def __init__(self, zoo, eval_samples=400, sense_samples=512, cache=None,
                 engine=None):
        self.zoo = zoo
        self.eval_samples = int(eval_samples)
        self.sense_samples = int(sense_samples)
        if engine is None:
            engine = PlanEngine(
                zoo.model,
                zoo.data.train_x[:sense_samples],
                zoo.data.train_y[:sense_samples],
                workload=zoo.spec.key,
                cache=cache,
                curvature_batch_size=min(256, int(sense_samples)),
            )
        self.engine = engine
        self.plans = {}

    def plan_cells(self, cells):
        """Resolve every cell's plan (shared stages run once).

        Returns — and stores on :attr:`plans` — the
        ``cell key -> SelectionPlan`` mapping.
        """
        self.plans = {
            cell.key: plan
            for cell, plan in zip(
                cells, self.engine.plan_batch([c.request for c in cells])
            )
        }
        return self.plans

    def run(self, cells, batched=True, processes=None, jobs=None):
        """Execute every cell's Monte Carlo sweep with planned orders.

        Parameters
        ----------
        cells:
            :class:`ScenarioCell` grid, in output order.
        batched / processes:
            Monte Carlo path selection inside each cell, as in
            :func:`~repro.experiments.sweeps.run_method_sweep`.
        jobs:
            Fan the *cells* across N forked workers (or ``REPRO_JOBS``).
            Mutually exclusive with ``processes`` (which parallelizes
            trials *within* a cell): pool workers are daemonic and
            cannot fork their own pools, so combining the two raises
            instead of crashing mid-scenario.  Prefer ``jobs`` when the
            grid has enough cells to fill the machine.  Results are
            bitwise-equal to the serial loop.

        Returns
        -------
        dict
            ``cell key -> SweepOutcome`` in cell order.
        """
        from repro.experiments.sweeps import run_method_sweep

        jobs = resolve_jobs(jobs)
        if jobs and jobs > 1 and resolve_processes(processes):
            raise ValueError(
                "jobs= (parallel scenario cells) cannot be combined with "
                "the per-cell trial pool (processes=/REPRO_MC_PROCESSES): "
                "forked pool workers are daemonic and cannot spawn their "
                "own pools; pick one parallelism axis"
            )
        cells = list(cells)
        plans = self.plan_cells(cells)

        def execute(index):
            cell = cells[index]
            request = cell.request
            return run_method_sweep(
                self.zoo,
                sigma=request.sigma,
                technology=request.technology,
                read_time=request.read_time,
                nwc_targets=request.nwc_targets,
                mc_runs=cell.mc_runs,
                rng=cell.rng,
                eval_samples=self.eval_samples,
                sense_samples=self.sense_samples,
                methods=request.methods,
                device_bits=request.device_bits,
                curvature_batches=request.curvature_batches,
                batched=batched,
                processes=processes,
                orders=plans[cell.key].orders,
                **cell.sweep_kwargs,
            )

        outcomes = None
        if jobs and jobs > 1 and len(cells) > 1:
            if "fork" not in multiprocessing.get_all_start_methods():
                warnings.warn(
                    "parallel scenario cells need the fork start method; "
                    "falling back to the serial cell loop",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                global _FORK_CELL
                _FORK_CELL = execute
                try:
                    ctx = multiprocessing.get_context("fork")
                    with ctx.Pool(min(jobs, len(cells))) as pool:
                        outcomes = pool.map(
                            _fork_cell, range(len(cells)), chunksize=1
                        )
                finally:
                    _FORK_CELL = None
        if outcomes is None:
            outcomes = [execute(i) for i in range(len(cells))]
        return {cell.key: outcome for cell, outcome in zip(cells, outcomes)}
