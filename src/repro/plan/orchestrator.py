"""Scenario orchestration: plan a grid once, schedule its work rectangle.

A scenario (devices / retention / spatial / table1) is a grid of
independent Monte Carlo evaluation cells that differ only in physics
parameters (technology, read time, correlation length, sigma).  The
orchestrator expresses the grid as :class:`~repro.plan.engine.
PlanRequest`\\ s, resolves them through one :class:`~repro.plan.engine.
PlanEngine` (so shared stages — above all the curvature pass — run
once), and then executes the grid as a **work rectangle** (cells x
trial blocks; :mod:`repro.robustness.scheduler`): every cell's trial
axis splits into block-aligned tiles, and the flat tile list is packed
onto one supervised fork pool sized by ``workers=`` / ``--workers`` /
``REPRO_WORKERS`` (``0`` = auto-size to the core count).  The
deprecated ``jobs``/``processes`` pair still works — combined into
``jobs * processes`` workers instead of the old exit-64 conflict.

Fault tolerance
---------------
Tiles run under :func:`~repro.robustness.supervisor.supervised_map`
(the single supervision path): a worker that crashes (OOM kill,
segfault) or overruns its wall-clock budget (``REPRO_CELL_TIMEOUT``)
is retried with bounded exponential backoff (``REPRO_CELL_RETRIES``),
then re-executed serially in the parent, and only then declared failed.
A failed tile fails its cell but not the grid — the cell's key is
simply absent from the returned outcome dict (its surviving tiles stay
cached for the next attempt), and the per-cell story (ok / cached /
resumed / recovered / degraded / failed) is recorded in
:attr:`ScenarioOrchestrator.report`, a :class:`~repro.robustness.
report.RunReport` the CLI renders and exits on.

Incremental evaluation / checkpoint / resume
--------------------------------------------
Every tile's partial outcome persists the moment it lands, as a
content-addressed ``eval`` artifact in the engine's :class:`~repro.
plan.cache.PlanArtifactCache` — keyed on model/sense/eval digests, the
request physics, the cell's RNG seed, and the tile's trial window;
never on supervision or worker-count knobs.  Every run (no flag
needed) probes these artifacts first, so a rerun after a one-cell
config change recomputes only that cell's tiles and is still
byte-identical to a cold serial run; the hit/recompute counts are on
the report (``tiles_cached`` / ``tiles_computed``).  Completed cells
additionally checkpoint as ``cell`` artifacts the moment their last
tile lands, which is what ``resume=True`` / ``REPRO_RESUME=1`` loads
to skip whole cells after a mid-grid kill.

Determinism
-----------
Every cell derives *all* of its randomness from its own named
:class:`~repro.utils.rng.RngStream` (the per-trial substream discipline
of the Monte Carlo engine), planned orders are computed before any tile
runs, and tile boundaries are worker-count independent and aligned to
the engine's trial-block grid — so serial, ``--workers N``, retried,
degraded, cached, and resumed runs are all bitwise-equal.  Workers
receive the model via ``fork`` (models carry closures that do not
pickle); on platforms without fork the tiles run serially in the
parent with a warning.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field

from repro.core.mc import default_trial_block, no_trial_pool
from repro.obs.trace import span
from repro.plan.cache import data_digest
from repro.plan.engine import PlanEngine, PlanRequest
from repro.robustness.errors import CacheWriteError, ScenarioConfigError
from repro.robustness.faults import active_schedule
from repro.robustness.report import CellRecord, RunReport
from repro.robustness.checkpoint import (
    decode_outcome,
    encode_outcome,
    merge_outcomes,
)
from repro.robustness.scheduler import (
    Tile,
    resolve_tile_trials,
    resolve_worker_count,
    resolve_workers,
    scheduler_metrics,
    tile_ranges,
)
from repro.robustness.supervisor import (
    TaskReport,
    _describe,
    has_fork,
    run_with_retry,
    supervised_map,
)

__all__ = [
    "ScenarioCell",
    "ScenarioOrchestrator",
    "resolve_jobs",
    "resolve_resume",
]


def resolve_jobs(jobs=None):
    """Resolve the deprecated cell-level worker knob (``REPRO_JOBS``).

    ``0`` means "auto-size to the core count"; unset means serial.
    Kept as a back-compat alias — new code should size the rectangle
    with :func:`~repro.robustness.scheduler.resolve_workers`.
    """
    return resolve_worker_count(jobs, "REPRO_JOBS", "jobs")


def resolve_resume(resume=None):
    """Resolve the resume flag: explicit arg, else ``REPRO_RESUME``."""
    if resume is None:
        raw = os.environ.get("REPRO_RESUME", "").strip().lower()
        resume = raw in ("1", "true", "yes", "on")
    return bool(resume)


@dataclass
class ScenarioCell:
    """One grid point: a plan request plus its Monte Carlo envelope.

    Attributes
    ----------
    key:
        Scenario-specific cell identity (technology name, (technology,
        read time) pair, correlation length, sigma) — the key of the
        scenario's outcome dict.
    request:
        The :class:`~repro.plan.engine.PlanRequest` describing the
        cell's physics and method set.
    rng:
        Root :class:`~repro.utils.rng.RngStream` of the cell's Monte
        Carlo sweep.  Scenarios that pair draws across cells (retention
        read times, spatial correlation lengths) pass the *same* stream
        to every paired cell.
    mc_runs:
        Monte Carlo trials of the cell.
    sweep_kwargs:
        Extra keyword arguments forwarded to
        :func:`~repro.experiments.sweeps.run_method_sweep` (e.g.
        ``insitu_lr`` for Table 1).
    """

    key: object
    request: PlanRequest
    rng: object
    mc_runs: int
    sweep_kwargs: dict = field(default_factory=dict)


class ScenarioOrchestrator:
    """Plans and executes a scenario's cell grid.

    Parameters
    ----------
    zoo:
        The :class:`~repro.experiments.model_zoo.ZooModel` every cell
        evaluates.
    eval_samples / sense_samples:
        Evaluation and sensitivity subset sizes (the scale preset's).
    cache:
        Optional :class:`~repro.plan.cache.PlanArtifactCache` for the
        engine (default: the shared on-disk cache).
    engine:
        Optional pre-built :class:`~repro.plan.engine.PlanEngine`
        (overrides ``cache``); the orchestrator otherwise builds one on
        the zoo's training subset, mirroring the sweep machinery's
        sense-set slicing.

    Attributes
    ----------
    plans:
        ``cell key -> SelectionPlan`` of the most recent :meth:`run`
        (or :meth:`plan_cells`) — the offline-reusable artifact.
    report:
        :class:`~repro.robustness.report.RunReport` of the most recent
        :meth:`run` — one record per cell plus the cache's self-healing
        counters.
    """

    def __init__(self, zoo, eval_samples=400, sense_samples=512, cache=None,
                 engine=None):
        self.zoo = zoo
        self.eval_samples = int(eval_samples)
        self.sense_samples = int(sense_samples)
        if engine is None:
            engine = PlanEngine(
                zoo.model,
                zoo.data.train_x[:sense_samples],
                zoo.data.train_y[:sense_samples],
                workload=zoo.spec.key,
                cache=cache,
                curvature_batch_size=min(256, int(sense_samples)),
            )
        self.engine = engine
        self.plans = {}
        self.report = RunReport()
        self._eval_digest = None

    @property
    def cache(self):
        """The engine's artifact cache (checkpoints live here too)."""
        return self.engine.cache

    def plan_cells(self, cells):
        """Resolve every cell's plan (shared stages run once).

        Returns — and stores on :attr:`plans` — the
        ``cell key -> SelectionPlan`` mapping.
        """
        cells = list(cells)
        with span("scenario.plan", cells=len(cells)):
            self.plans = {
                cell.key: plan
                for cell, plan in zip(
                    cells, self.engine.plan_batch([c.request for c in cells])
                )
            }
        return self.plans

    # ----------------------------------------------------------- checkpoints

    def _cell_config(self, cell, batched):
        """Content address of one cell's outcome: everything that
        determines the result, nothing that does not.

        Model and data enter as digests, the request as its canonical
        physics dict (technology instances through their ``to_dict``
        form), randomness as the cell's root stream seed.  Neither
        ``jobs`` nor timeouts/retries appear — supervision must not
        change what a cell computes, only whether it completes.
        """
        request = cell.request
        technology = request.technology
        if technology is not None:
            from repro.cim import resolve_technology

            technology = resolve_technology(technology).to_dict()
        if self._eval_digest is None:
            data = self.zoo.data
            self._eval_digest = data_digest(data.test_x, data.test_y)
        return {
            "model": self.engine._model_digest,
            "sense": self.engine._sense_digest,
            "eval": self._eval_digest,
            "workload": self.zoo.spec.key,
            "request": {
                "methods": list(request.methods),
                "nwc_targets": [float(t) for t in request.nwc_targets],
                "technology": technology,
                "sigma": request.sigma,
                "read_time": request.read_time,
                "weight_bits": int(request.weight_bits),
                "device_bits": int(request.device_bits),
                "curvature_batches": int(request.curvature_batches),
                "wear_inflation": float(request.wear_inflation),
                "wear_consumed": request.wear_consumed,
            },
            "rng_seed": int(cell.rng.seed),
            "mc_runs": int(cell.mc_runs),
            "sweep_kwargs": {
                key: cell.sweep_kwargs[key] for key in sorted(cell.sweep_kwargs)
            },
            "eval_samples": self.eval_samples,
            "sense_samples": self.sense_samples,
            "batched": bool(batched),
        }

    # -------------------------------------------------------------- execution

    def run(self, cells, batched=True, processes=None, jobs=None,
            workers=None, resume=None, timeout=None, retries=None,
            scenario="", tile_trials=None):
        """Schedule the grid's work rectangle and merge its tiles.

        Parameters
        ----------
        cells:
            :class:`ScenarioCell` grid, in output order.
        batched:
            Monte Carlo path selection inside each tile, as in
            :func:`~repro.experiments.sweeps.run_method_sweep`.
        workers:
            Total worker processes for the (cells x trial-blocks)
            rectangle (or ``REPRO_WORKERS``); ``0`` auto-sizes to the
            detected core count.  Unset and with neither deprecated
            knob given, tiles run serially in the parent.  Results are
            bitwise-equal at any worker count.
        jobs / processes:
            Deprecated aliases (``REPRO_JOBS`` /
            ``REPRO_MC_PROCESSES``): formerly the two conflicting
            parallelism axes, now combined by
            :func:`~repro.robustness.scheduler.resolve_workers` into
            ``jobs * processes`` rectangle workers.  ``processes`` no
            longer selects the scalar per-trial path inside cells —
            the rectangle owns trial parallelism.
        resume:
            Load whole already-checkpointed cells from the artifact
            cache (default: ``REPRO_RESUME``).  Independent of — and
            faster than — the always-on per-tile evaluation cache:
            resume skips even the tile probe and the merge.
        timeout / retries:
            Supervision overrides forwarded to :func:`~repro.
            robustness.supervisor.supervised_map` (default:
            ``REPRO_CELL_TIMEOUT`` / ``REPRO_CELL_RETRIES``).
        scenario:
            Label stored on :attr:`report`.
        tile_trials:
            Optional tile height override (or ``REPRO_TILE_TRIALS``);
            rounded up to a whole trial block.  Default: the
            :data:`~repro.robustness.scheduler.DEFAULT_TILES_PER_CELL`
            heuristic.

        Returns
        -------
        dict
            ``cell key -> SweepOutcome`` in cell order.  Permanently
            failed cells are absent; consult :attr:`report` (or its
            :attr:`~repro.robustness.report.RunReport.failed` list)
            before treating the grid as complete.
        """
        from repro.experiments.sweeps import run_method_sweep

        workers = resolve_workers(
            workers=workers, jobs=jobs, processes=processes
        )
        resume = resolve_resume(resume)
        tile_trials = resolve_tile_trials(tile_trials)
        cells = list(cells)
        plans = self.plan_cells(cells)
        report = RunReport(scenario=scenario)
        self.report = report
        schedule = active_schedule()

        configs = [self._cell_config(cell, batched) for cell in cells]
        outcomes = {}  # index -> SweepOutcome
        records = {}  # index -> CellRecord
        pending = []  # cell indexes not resumed from a checkpoint
        for index, cell in enumerate(cells):
            arrays = self.cache.get("cell", configs[index]) if resume else None
            if arrays is not None:
                outcomes[index] = decode_outcome(arrays)
                records[index] = CellRecord(
                    key=cell.key, status="resumed", attempts=0, tiles=0
                )
            else:
                pending.append(index)

        # --- decompose pending cells into the work rectangle's tiles.
        # Boundaries depend only on each cell's trial count and the
        # engine block grid — never on the worker count — so tile cache
        # keys are stable across serial and parallel invocations.
        block = default_trial_block()
        tiles = []  # tile id -> Tile
        cell_tiles = {index: [] for index in pending}
        for index in pending:
            for start, stop in tile_ranges(
                cells[index].mc_runs, block, tile_trials
            ):
                cell_tiles[index].append(len(tiles))
                tiles.append(Tile(cell=index, start=start, stop=stop))
        tile_configs = {
            t: {**configs[tile.cell], "trials": [tile.start, tile.stop]}
            for t, tile in enumerate(tiles)
        }

        # --- probe the evaluation cache: warm tiles never recompute.
        tile_values = {}  # tile id -> partial SweepOutcome
        cached_tiles = set()
        todo = []
        for t in range(len(tiles)):
            arrays = self.cache.get("eval", tile_configs[t])
            if arrays is not None:
                tile_values[t] = decode_outcome(arrays)
                cached_tiles.add(t)
            else:
                todo.append(t)
        report.tiles_total = len(tiles)
        report.tiles_cached = len(cached_tiles)
        remaining = {
            index: sum(1 for t in cell_tiles[index] if t not in cached_tiles)
            for index in pending
        }

        def finish_cell(index):
            # Every tile landed: merge them into the cell's full
            # outcome and write the cell checkpoint (the resume fast
            # path) the moment the cell completes — not at end of run —
            # so a mid-grid kill leaves resumable cells behind.
            outcome = merge_outcomes(
                [tile_values[t] for t in cell_tiles[index]]
            )
            outcomes[index] = outcome
            try:
                self.cache.put("cell", configs[index], encode_outcome(outcome))
            except CacheWriteError as exc:
                report.checkpoint_errors += 1
                warnings.warn(
                    f"could not checkpoint cell {cells[index].key!r}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )

        def execute(t):
            tile = tiles[t]
            if schedule is not None:
                # Tiles are the unit of supervised execution, so the
                # "cell" fault site fires here, keyed by cell index —
                # the pre-rectangle contract REPRO_FAULTS schedules use.
                schedule.fire("cell", tile.cell)
            cell = cells[tile.cell]
            request = cell.request
            with span(
                "scenario.tile",
                cell=tile.cell, start=tile.start, stop=tile.stop,
            ), no_trial_pool():
                return run_method_sweep(
                    self.zoo,
                    sigma=request.sigma,
                    technology=request.technology,
                    read_time=request.read_time,
                    nwc_targets=request.nwc_targets,
                    mc_runs=cell.mc_runs,
                    rng=cell.rng,
                    eval_samples=self.eval_samples,
                    sense_samples=self.sense_samples,
                    methods=request.methods,
                    device_bits=request.device_bits,
                    curvature_batches=request.curvature_batches,
                    batched=batched,
                    trial_range=(tile.start, tile.stop),
                    orders=plans[cell.key].orders,
                    **cell.sweep_kwargs,
                )

        def persist(t, partial):
            # An artifact that cannot be written must not take the
            # result (minutes of Monte Carlo work) down with it.
            tile_values[t] = partial
            try:
                self.cache.put("eval", tile_configs[t], encode_outcome(partial))
            except CacheWriteError as exc:
                report.checkpoint_errors += 1
                warnings.warn(
                    f"could not persist eval tile {labels[t]}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            remaining[tiles[t].cell] -= 1
            if remaining[tiles[t].cell] == 0:
                finish_cell(tiles[t].cell)

        def label(t):
            tile = tiles[t]
            key = repr(cells[tile.cell].key)
            if len(cell_tiles[tile.cell]) == 1:
                return key
            return f"{key} trials[{tile.start}:{tile.stop}]"

        labels = {t: label(t) for t in range(len(tiles))}

        # Cells served entirely from the evaluation cache merge without
        # scheduling anything — the warm-rerun (passless) path.
        for index in pending:
            if remaining[index] == 0:
                finish_cell(index)
                records[index] = CellRecord(
                    key=cells[index].key,
                    status="cached",
                    attempts=0,
                    tiles=len(cell_tiles[index]),
                    tiles_cached=len(cell_tiles[index]),
                )

        # --- schedule the remaining tiles on one supervised pool.
        tile_reports = {}
        parallel = workers and workers > 1 and len(todo) > 1
        if parallel and not has_fork():
            warnings.warn(
                "parallel tile scheduling needs the fork start method; "
                "falling back to the serial tile loop",
                RuntimeWarning,
                stacklevel=2,
            )
            parallel = False
        # The cell span: worker tile spans shipped back through
        # supervised_map's result channel re-attach under it.
        with span(
            "scenario.execute",
            scenario=scenario or "", tiles=len(todo),
            workers=int(workers or 0),
        ):
            if parallel:
                supervised = supervised_map(
                    execute,
                    todo,
                    workers=min(workers, len(todo)),
                    timeout=timeout,
                    retries=retries,
                    labels=labels,
                    on_result=persist,
                )
                tile_reports = supervised.reports
            else:
                for t in todo:
                    failures = []
                    started = time.monotonic()
                    try:
                        value, attempts = run_with_retry(
                            lambda t=t: execute(t),
                            retries=retries,
                            failures=failures,
                        )
                    except ScenarioConfigError:
                        raise  # a usage error poisons every tile — surface it
                    except Exception as exc:
                        tile_reports[t] = TaskReport(
                            item=t,
                            label=labels[t],
                            status="failed",
                            attempts=len(failures),
                            duration=time.monotonic() - started,
                            error=_describe(exc),
                            failures=failures,
                        )
                    else:
                        tile_reports[t] = TaskReport(
                            item=t,
                            label=labels[t],
                            status="ok" if attempts == 1 else "recovered",
                            attempts=attempts,
                            duration=time.monotonic() - started,
                            failures=failures,
                        )
                        persist(t, value)
        report.tiles_computed = sum(1 for t in todo if t in tile_values)

        # --- fold tile reports into per-cell records.
        for index in pending:
            if index in records:
                continue  # all-cached, recorded above
            own = [
                tile_reports[t] for t in cell_tiles[index] if t in tile_reports
            ]
            missing = [
                t for t in cell_tiles[index] if t not in tile_values
            ]
            if missing:
                status = "failed"
                error = next(
                    (tile_reports[t].error for t in missing
                     if t in tile_reports and tile_reports[t].error),
                    "tile not executed",
                )
            else:
                error = None
                statuses = {task.status for task in own}
                if "degraded" in statuses:
                    status = "degraded"
                elif "recovered" in statuses:
                    status = "recovered"
                else:
                    status = "ok"
            records[index] = CellRecord(
                key=cells[index].key,
                status=status,
                attempts=max((task.attempts for task in own), default=0),
                duration=sum(task.duration for task in own),
                error=error,
                failures=[f for task in own for f in task.failures],
                tiles=len(cell_tiles[index]),
                tiles_cached=sum(
                    1 for t in cell_tiles[index] if t in cached_tiles
                ),
            )

        for index in range(len(cells)):
            report.add(records[index])
        report.cache = self.cache.stats()
        metrics = scheduler_metrics()
        metrics["workers"].set(int(workers or 0))
        metrics["tiles"].labels(result="cached").inc(report.tiles_cached)
        metrics["tiles"].labels(result="computed").inc(report.tiles_computed)
        for record in records.values():
            metrics["cells"].labels(status=record.status).inc()
        return {
            cells[index].key: outcomes[index]
            for index in range(len(cells))
            if index in outcomes
        }
