"""Scenario orchestration: plan a grid once, evaluate its cells in parallel.

A scenario (devices / retention / spatial / table1) is a grid of
independent Monte Carlo evaluation cells that differ only in physics
parameters (technology, read time, correlation length, sigma).  The
orchestrator expresses the grid as :class:`~repro.plan.engine.
PlanRequest`\\ s, resolves them through one :class:`~repro.plan.engine.
PlanEngine` (so shared stages — above all the curvature pass — run
once), and then maps the evaluation cells over a supervised process
pool (``jobs=N`` / ``REPRO_JOBS``).

Fault tolerance
---------------
Cells run under :func:`~repro.robustness.supervisor.supervised_map`: a
worker that crashes (OOM kill, segfault) or overruns its wall-clock
budget (``REPRO_CELL_TIMEOUT``) is retried with bounded exponential
backoff (``REPRO_CELL_RETRIES``), then re-executed serially in the
parent, and only then declared failed.  A failed cell does not abort
the grid — its key is simply absent from the returned outcome dict, and
the per-cell story (ok / resumed / recovered / degraded / failed) is
recorded in :attr:`ScenarioOrchestrator.report`, a
:class:`~repro.robustness.report.RunReport` the CLI renders and exits
on.

Checkpoint / resume
-------------------
Every completed cell's :class:`~repro.experiments.sweeps.SweepOutcome`
is persisted the moment it lands, as a content-addressed ``cell``
artifact in the engine's :class:`~repro.plan.cache.PlanArtifactCache`
(keyed on model + data digests, the full request physics, the cell's
RNG seed, and the Monte Carlo envelope — everything that determines the
result).  A rerun with ``resume=True`` (or ``REPRO_RESUME=1``) loads
finished cells from the cache instead of re-running them; because the
round trip is exact and every cell's randomness comes from its own
named :class:`~repro.utils.rng.RngStream`, a resumed run's CSVs are
byte-identical to a straight-through run's.

Determinism
-----------
Every cell derives *all* of its randomness from its own named
:class:`~repro.utils.rng.RngStream` (the per-trial substream discipline
of the Monte Carlo engine), and the planned orders are computed before
any cell runs — so no mutable state is shared between cells, and the
supervised map (including any retried or degraded cell) is bitwise-equal
to the serial loop.  Workers receive the model via ``fork`` (models
carry closures that do not pickle); on platforms without fork the
orchestrator falls back to the serial loop with a warning.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field

from repro.core.mc import resolve_processes
from repro.plan.cache import data_digest
from repro.plan.engine import PlanEngine, PlanRequest
from repro.robustness.errors import CacheWriteError, ScenarioConfigError
from repro.robustness.faults import active_schedule
from repro.robustness.report import CellRecord, RunReport
from repro.robustness.checkpoint import decode_outcome, encode_outcome
from repro.robustness.supervisor import (
    _describe,
    has_fork,
    run_with_retry,
    supervised_map,
)

__all__ = [
    "ScenarioCell",
    "ScenarioOrchestrator",
    "resolve_jobs",
    "resolve_resume",
]


def resolve_jobs(jobs=None):
    """Resolve a scenario worker count: explicit arg, else ``REPRO_JOBS``."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "0").strip()
        try:
            jobs = int(raw or "0") or None
        except ValueError as exc:
            raise ScenarioConfigError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from exc
    if jobs is not None and jobs < 1:
        raise ScenarioConfigError("jobs must be >= 1")
    return jobs


def resolve_resume(resume=None):
    """Resolve the resume flag: explicit arg, else ``REPRO_RESUME``."""
    if resume is None:
        raw = os.environ.get("REPRO_RESUME", "").strip().lower()
        resume = raw in ("1", "true", "yes", "on")
    return bool(resume)


@dataclass
class ScenarioCell:
    """One grid point: a plan request plus its Monte Carlo envelope.

    Attributes
    ----------
    key:
        Scenario-specific cell identity (technology name, (technology,
        read time) pair, correlation length, sigma) — the key of the
        scenario's outcome dict.
    request:
        The :class:`~repro.plan.engine.PlanRequest` describing the
        cell's physics and method set.
    rng:
        Root :class:`~repro.utils.rng.RngStream` of the cell's Monte
        Carlo sweep.  Scenarios that pair draws across cells (retention
        read times, spatial correlation lengths) pass the *same* stream
        to every paired cell.
    mc_runs:
        Monte Carlo trials of the cell.
    sweep_kwargs:
        Extra keyword arguments forwarded to
        :func:`~repro.experiments.sweeps.run_method_sweep` (e.g.
        ``insitu_lr`` for Table 1).
    """

    key: object
    request: PlanRequest
    rng: object
    mc_runs: int
    sweep_kwargs: dict = field(default_factory=dict)


class ScenarioOrchestrator:
    """Plans and executes a scenario's cell grid.

    Parameters
    ----------
    zoo:
        The :class:`~repro.experiments.model_zoo.ZooModel` every cell
        evaluates.
    eval_samples / sense_samples:
        Evaluation and sensitivity subset sizes (the scale preset's).
    cache:
        Optional :class:`~repro.plan.cache.PlanArtifactCache` for the
        engine (default: the shared on-disk cache).
    engine:
        Optional pre-built :class:`~repro.plan.engine.PlanEngine`
        (overrides ``cache``); the orchestrator otherwise builds one on
        the zoo's training subset, mirroring the sweep machinery's
        sense-set slicing.

    Attributes
    ----------
    plans:
        ``cell key -> SelectionPlan`` of the most recent :meth:`run`
        (or :meth:`plan_cells`) — the offline-reusable artifact.
    report:
        :class:`~repro.robustness.report.RunReport` of the most recent
        :meth:`run` — one record per cell plus the cache's self-healing
        counters.
    """

    def __init__(self, zoo, eval_samples=400, sense_samples=512, cache=None,
                 engine=None):
        self.zoo = zoo
        self.eval_samples = int(eval_samples)
        self.sense_samples = int(sense_samples)
        if engine is None:
            engine = PlanEngine(
                zoo.model,
                zoo.data.train_x[:sense_samples],
                zoo.data.train_y[:sense_samples],
                workload=zoo.spec.key,
                cache=cache,
                curvature_batch_size=min(256, int(sense_samples)),
            )
        self.engine = engine
        self.plans = {}
        self.report = RunReport()
        self._eval_digest = None

    @property
    def cache(self):
        """The engine's artifact cache (checkpoints live here too)."""
        return self.engine.cache

    def plan_cells(self, cells):
        """Resolve every cell's plan (shared stages run once).

        Returns — and stores on :attr:`plans` — the
        ``cell key -> SelectionPlan`` mapping.
        """
        self.plans = {
            cell.key: plan
            for cell, plan in zip(
                cells, self.engine.plan_batch([c.request for c in cells])
            )
        }
        return self.plans

    # ----------------------------------------------------------- checkpoints

    def _cell_config(self, cell, batched):
        """Content address of one cell's outcome: everything that
        determines the result, nothing that does not.

        Model and data enter as digests, the request as its canonical
        physics dict (technology instances through their ``to_dict``
        form), randomness as the cell's root stream seed.  Neither
        ``jobs`` nor timeouts/retries appear — supervision must not
        change what a cell computes, only whether it completes.
        """
        request = cell.request
        technology = request.technology
        if technology is not None:
            from repro.cim import resolve_technology

            technology = resolve_technology(technology).to_dict()
        if self._eval_digest is None:
            data = self.zoo.data
            self._eval_digest = data_digest(data.test_x, data.test_y)
        return {
            "model": self.engine._model_digest,
            "sense": self.engine._sense_digest,
            "eval": self._eval_digest,
            "workload": self.zoo.spec.key,
            "request": {
                "methods": list(request.methods),
                "nwc_targets": [float(t) for t in request.nwc_targets],
                "technology": technology,
                "sigma": request.sigma,
                "read_time": request.read_time,
                "weight_bits": int(request.weight_bits),
                "device_bits": int(request.device_bits),
                "curvature_batches": int(request.curvature_batches),
                "wear_inflation": float(request.wear_inflation),
                "wear_consumed": request.wear_consumed,
            },
            "rng_seed": int(cell.rng.seed),
            "mc_runs": int(cell.mc_runs),
            "sweep_kwargs": {
                key: cell.sweep_kwargs[key] for key in sorted(cell.sweep_kwargs)
            },
            "eval_samples": self.eval_samples,
            "sense_samples": self.sense_samples,
            "batched": bool(batched),
        }

    # -------------------------------------------------------------- execution

    def run(self, cells, batched=True, processes=None, jobs=None,
            resume=None, timeout=None, retries=None, scenario=""):
        """Execute every cell's Monte Carlo sweep with planned orders.

        Parameters
        ----------
        cells:
            :class:`ScenarioCell` grid, in output order.
        batched / processes:
            Monte Carlo path selection inside each cell, as in
            :func:`~repro.experiments.sweeps.run_method_sweep`.
        jobs:
            Fan the *cells* across N supervised forked workers (or
            ``REPRO_JOBS``).  Mutually exclusive with ``processes``
            (which parallelizes trials *within* a cell): pool workers
            are daemonic and cannot fork their own pools, so combining
            the two raises instead of crashing mid-scenario.  Prefer
            ``jobs`` when the grid has enough cells to fill the
            machine.  Results are bitwise-equal to the serial loop.
        resume:
            Load already-checkpointed cells from the artifact cache
            instead of re-running them (default: ``REPRO_RESUME``).
            Checkpoints are *written* unconditionally whenever the
            cache has a disk tier.
        timeout / retries:
            Supervision overrides forwarded to :func:`~repro.
            robustness.supervisor.supervised_map` (default:
            ``REPRO_CELL_TIMEOUT`` / ``REPRO_CELL_RETRIES``).
        scenario:
            Label stored on :attr:`report`.

        Returns
        -------
        dict
            ``cell key -> SweepOutcome`` in cell order.  Permanently
            failed cells are absent; consult :attr:`report` (or its
            :attr:`~repro.robustness.report.RunReport.failed` list)
            before treating the grid as complete.
        """
        from repro.experiments.sweeps import run_method_sweep

        jobs = resolve_jobs(jobs)
        if jobs and jobs > 1 and resolve_processes(processes):
            raise ScenarioConfigError(
                "jobs= (parallel scenario cells) cannot be combined with "
                "the per-cell trial pool (processes=/REPRO_MC_PROCESSES): "
                "forked pool workers are daemonic and cannot spawn their "
                "own pools; pick one parallelism axis"
            )
        resume = resolve_resume(resume)
        cells = list(cells)
        plans = self.plan_cells(cells)
        report = RunReport(scenario=scenario)
        self.report = report
        schedule = active_schedule()

        configs = [self._cell_config(cell, batched) for cell in cells]
        outcomes = {}  # index -> SweepOutcome
        records = {}  # index -> CellRecord
        todo = []
        for index, cell in enumerate(cells):
            arrays = self.cache.get("cell", configs[index]) if resume else None
            if arrays is not None:
                outcomes[index] = decode_outcome(arrays)
                records[index] = CellRecord(
                    key=cell.key, status="resumed", attempts=0
                )
            else:
                todo.append(index)

        def execute(index):
            if schedule is not None:
                schedule.fire("cell", index)
            cell = cells[index]
            request = cell.request
            return run_method_sweep(
                self.zoo,
                sigma=request.sigma,
                technology=request.technology,
                read_time=request.read_time,
                nwc_targets=request.nwc_targets,
                mc_runs=cell.mc_runs,
                rng=cell.rng,
                eval_samples=self.eval_samples,
                sense_samples=self.sense_samples,
                methods=request.methods,
                device_bits=request.device_bits,
                curvature_batches=request.curvature_batches,
                batched=batched,
                processes=processes,
                orders=plans[cell.key].orders,
                **cell.sweep_kwargs,
            )

        def persist(index, outcome):
            # A checkpoint that cannot be written must not take the
            # result (minutes of Monte Carlo work) down with it.
            try:
                self.cache.put("cell", configs[index], encode_outcome(outcome))
            except CacheWriteError as exc:
                report.checkpoint_errors += 1
                warnings.warn(
                    f"could not checkpoint cell {cells[index].key!r}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )

        parallel = jobs and jobs > 1 and len(todo) > 1
        if parallel and not has_fork():
            warnings.warn(
                "parallel scenario cells need the fork start method; "
                "falling back to the serial cell loop",
                RuntimeWarning,
                stacklevel=2,
            )
            parallel = False
        if parallel:
            supervised = supervised_map(
                execute,
                todo,
                workers=min(jobs, len(todo)),
                timeout=timeout,
                retries=retries,
                labels={index: repr(cells[index].key) for index in todo},
                on_result=persist,
            )
            for index in todo:
                task = supervised.reports[index]
                records[index] = CellRecord(
                    key=cells[index].key,
                    status=task.status,
                    attempts=task.attempts,
                    duration=task.duration,
                    error=task.error,
                    failures=list(task.failures),
                )
                if index in supervised.values:
                    outcomes[index] = supervised.values[index]
        else:
            for index in todo:
                failures = []
                started = time.monotonic()
                try:
                    value, attempts = run_with_retry(
                        lambda index=index: execute(index),
                        retries=retries,
                        failures=failures,
                    )
                except ScenarioConfigError:
                    raise  # a usage error poisons every cell — surface it
                except Exception as exc:
                    records[index] = CellRecord(
                        key=cells[index].key,
                        status="failed",
                        attempts=len(failures),
                        duration=time.monotonic() - started,
                        error=_describe(exc),
                        failures=failures,
                    )
                else:
                    outcomes[index] = value
                    records[index] = CellRecord(
                        key=cells[index].key,
                        status="ok" if attempts == 1 else "recovered",
                        attempts=attempts,
                        duration=time.monotonic() - started,
                        failures=failures,
                    )
                    persist(index, value)

        for index in range(len(cells)):
            report.add(records[index])
        report.cache = self.cache.stats()
        return {
            cells[index].key: outcomes[index]
            for index in range(len(cells))
            if index in outcomes
        }
