"""Selection planning: cached, batched, parallel-orchestrated selection.

The layer between the device physics (:mod:`repro.cim`) and the
experiment drivers (:mod:`repro.experiments`): scenario grids are
expressed as batched :class:`PlanRequest`\\ s, resolved by a
:class:`PlanEngine` whose pure stages (curvature, variance maps,
selection orders) live in a content-addressed
:class:`PlanArtifactCache`, and executed by a
:class:`ScenarioOrchestrator` as a (cells x trial-blocks) work
rectangle on one supervised fork pool (``--workers N``; the deprecated
``--jobs``/``--processes`` pair combines into it) — serially or
parallel with bitwise-identical results, with every evaluation tile
cached content-addressed so warm reruns recompute only what changed.
"""

from repro.plan.cache import (
    PLAN_CACHE_VERSION,
    PlanArtifactCache,
    artifact_key,
    data_digest,
    model_digest,
    resolve_memory_items,
)
from repro.plan.engine import (
    PLANNED_METHODS,
    PlanEngine,
    PlanRequest,
    SelectionPlan,
    build_engine,
    load_plans,
    save_plans,
)
from repro.plan.orchestrator import (
    ScenarioCell,
    ScenarioOrchestrator,
    resolve_jobs,
    resolve_resume,
)

__all__ = [
    "PLAN_CACHE_VERSION",
    "PLANNED_METHODS",
    "PlanArtifactCache",
    "PlanEngine",
    "PlanRequest",
    "ScenarioCell",
    "ScenarioOrchestrator",
    "SelectionPlan",
    "artifact_key",
    "build_engine",
    "data_digest",
    "load_plans",
    "model_digest",
    "resolve_jobs",
    "resolve_memory_items",
    "resolve_resume",
    "save_plans",
]
