"""Batched selection planning: one curvature pass serves a whole grid.

The scenario runners sweep grids — read times, correlation lengths,
sigmas, technologies — and each grid point needs a resolved selection
order per method.  Before this subsystem every point paid its own
sensitivity pass even though the curvature diagonal depends only on
(model, sense set), not on the device physics of the point.  The
:class:`PlanEngine` splits planning into cacheable pure stages:

- **curvature** (model, sense set, scorer parameters) — the expensive
  second-derivative accumulation, shared by ``swim`` and
  ``hetero_swim`` across *every* grid point;
- **variance** (model, technology/stack dict, read time, wear) — the
  analytic per-weight ``E[dw^2]`` map, one per distinct physics point;
- **order** (curvature x variance x method) — the resolved descending
  ranking, which is what a deployment actually consumes.

Each stage is content-addressed in a :class:`~repro.plan.cache.
PlanArtifactCache`, so a warm re-plan of a whole retention grid is a
handful of disk reads, and a batch of :class:`PlanRequest`\\ s
deduplicates shared stages naturally: planning N read times costs one
curvature pass, N variance passes, and N rankings.

The resolved :class:`SelectionPlan` is a standalone artifact: it can be
applied to any accelerator hosting the same model
(:meth:`SelectionPlan.apply`) and round-trips through JSON for offline
reuse (:func:`save_plans` / :func:`load_plans`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.extensions import (
    variance_map_from_mapping,
    variance_map_from_stack,
)
from repro.core.metrics import DEFAULT_NWC_TARGETS
from repro.obs.trace import span
from repro.core.selection import WeightSpace, rank_descending
from repro.core.sensitivity import MagnitudeScorer, SwimScorer
from repro.plan.cache import (
    PLAN_CACHE_VERSION,
    PlanArtifactCache,
    data_digest,
    model_digest,
)

__all__ = [
    "PLANNED_METHODS",
    "PlanEngine",
    "PlanRequest",
    "SelectionPlan",
    "build_engine",
    "load_plans",
    "save_plans",
]

#: Methods whose rankings are deterministic functions of (model, sense
#: set, physics) and therefore plannable/cacheable.  ``random`` re-draws
#: per trial and ``insitu`` trains on-chip; neither has a plan.
PLANNED_METHODS = ("swim", "hetero_swim", "magnitude")


@dataclass(frozen=True)
class PlanRequest:
    """One grid point's planning inputs.

    Attributes
    ----------
    methods:
        Sweep methods; only those in :data:`PLANNED_METHODS` are
        resolved into orders (the rest ride through unplanned).
    nwc_targets:
        The NWC budget grid; the plan resolves one selection count per
        budget.
    technology:
        Registered :class:`~repro.cim.DeviceTechnology` name or
        instance, or None for the paper's plain-sigma setting.
    sigma:
        Device sigma override (required when ``technology`` is None).
    read_time:
        Seconds since programming at which the deployment is read;
        feeds the drift-aware variance map for ``hetero_swim``.
    weight_bits / device_bits:
        Workload quantization bits M, and cell bits K when no
        technology supplies them.
    curvature_batches:
        Batches accumulated in the shared curvature pass.
    wear_inflation:
        Manual programming-noise variance multiplier (1.0 = fresh).
    wear_consumed:
        Endurance consumed fraction; when set (and ``wear_inflation``
        is left at 1.0) the inflation is derived from the technology's
        sigma-growth-vs-cycling curve — see
        :meth:`~repro.cim.devices.EnduranceModel.wear_inflation`.
    """

    methods: tuple = PLANNED_METHODS
    nwc_targets: tuple = DEFAULT_NWC_TARGETS
    technology: object = None
    sigma: float = None
    read_time: float = None
    weight_bits: int = 4
    device_bits: int = 4
    curvature_batches: int = 2
    wear_inflation: float = 1.0
    wear_consumed: float = None

    def __post_init__(self):
        object.__setattr__(self, "methods", tuple(self.methods))
        object.__setattr__(self, "nwc_targets", tuple(self.nwc_targets))

    def resolve(self):
        """``(technology, device, mapping, stack)`` exactly as the sweep
        machinery derives them, so planned orders match inline ones
        bit for bit."""
        from repro.cim import DeviceConfig, MappingConfig, resolve_technology

        if self.technology is not None:
            tech = resolve_technology(self.technology)
            device = tech.device_config()
            if self.sigma is not None:
                device = device.with_sigma(self.sigma)
            stack = tech.build_stack()
        else:
            tech = None
            device = DeviceConfig(bits=self.device_bits, sigma=self.sigma)
            stack = None
        mapping = MappingConfig(weight_bits=self.weight_bits, device=device)
        return tech, device, mapping, stack

    def effective_wear_inflation(self, technology=None):
        """The variance multiplier this request plans for.

        The manual ``wear_inflation`` knob overrides; otherwise a
        ``wear_consumed`` fraction is run through the technology's
        endurance curve (fresh devices when neither is set).
        """
        if self.wear_inflation != 1.0 or self.wear_consumed is None:
            return float(self.wear_inflation)
        if technology is None:
            technology, _, _, _ = self.resolve()
        if technology is None:
            return 1.0
        return technology.endurance_model().wear_inflation(self.wear_consumed)


@dataclass
class SelectionPlan:
    """A resolved, deployable selection for one grid point.

    ``orders`` maps each planned method to its full descending flat
    ranking over the model's weight space; ``counts`` aligns with
    ``nwc_targets`` (weights selected at each budget).  The plan is
    model-content-bound: :meth:`apply` refuses a weight space of a
    different size.
    """

    workload: str
    methods: tuple
    nwc_targets: tuple
    counts: tuple
    orders: dict = field(default_factory=dict)
    technology: object = None
    sigma: float = None
    read_time: float = None
    weight_bits: int = 4
    device_bits: int = 4
    total_weights: int = 0
    wear_inflation: float = 1.0
    model: str = ""
    cache_version: int = PLAN_CACHE_VERSION

    def order(self, method):
        """The resolved descending ranking of one method."""
        if method not in self.orders:
            raise KeyError(
                f"plan has no order for {method!r}; planned: "
                f"{sorted(self.orders)}"
            )
        return self.orders[method]

    def count_for(self, nwc_target):
        """Selected-weight count at one budget of the plan's grid."""
        targets = np.asarray(self.nwc_targets, dtype=np.float64)
        matches = np.nonzero(np.isclose(targets, float(nwc_target)))[0]
        if matches.size == 0:
            raise KeyError(
                f"NWC target {nwc_target!r} is not on the plan's grid "
                f"{self.nwc_targets}"
            )
        return int(self.counts[int(matches[0])])

    def masks(self, space, method, nwc_target):
        """Per-tensor boolean masks for one (method, budget) cell."""
        if space.total_size != self.total_weights:
            raise ValueError(
                f"plan was resolved over {self.total_weights} weights but "
                f"the weight space has {space.total_size}"
            )
        count = self.count_for(nwc_target)
        return space.masks_from_indices(self.order(method)[:count])

    def apply(self, accelerator, method=None, nwc_target=None,
              read_stream=None):
        """Deploy one (method, budget) cell on a verified accelerator.

        The accelerator must have been programmed and write-verified;
        the plan contributes the selection (and its ``read_time``, so a
        drifting stack ages the deployment to the planned moment).
        Defaults: the first planned method, the last (largest) budget.

        Returns
        -------
        float
            Achieved NWC, as
            :meth:`~repro.cim.CimAccelerator.apply_selection`.
        """
        if method is None:
            method = next(iter(self.orders))
        if nwc_target is None:
            nwc_target = self.nwc_targets[-1]
        space = WeightSpace.from_model(accelerator.model)
        masks = self.masks(space, method, nwc_target)
        return accelerator.apply_selection(
            masks, read_time=self.read_time, read_stream=read_stream
        )

    # -------------------------------------------------------- serialization

    def to_json(self):
        """JSON-serializable dict (round-trips via :meth:`from_json`)."""
        technology = self.technology
        if technology is not None and not isinstance(technology, str):
            technology = technology.to_dict()
        return {
            "workload": self.workload,
            "methods": list(self.methods),
            "nwc_targets": list(self.nwc_targets),
            "counts": [int(c) for c in self.counts],
            "orders": {
                method: np.asarray(order).tolist()
                for method, order in self.orders.items()
            },
            "technology": technology,
            "sigma": self.sigma,
            "read_time": self.read_time,
            "weight_bits": int(self.weight_bits),
            "device_bits": int(self.device_bits),
            "total_weights": int(self.total_weights),
            "wear_inflation": float(self.wear_inflation),
            "model": self.model,
            "cache_version": int(self.cache_version),
        }

    @classmethod
    def from_json(cls, data):
        """Rebuild a plan from :meth:`to_json` output."""
        technology = data.get("technology")
        if isinstance(technology, dict):
            from repro.cim import DeviceTechnology

            technology = DeviceTechnology.from_dict(technology)
        return cls(
            workload=data["workload"],
            methods=tuple(data["methods"]),
            nwc_targets=tuple(data["nwc_targets"]),
            counts=tuple(int(c) for c in data["counts"]),
            orders={
                method: np.asarray(order, dtype=np.int64)
                for method, order in data["orders"].items()
            },
            technology=technology,
            sigma=data.get("sigma"),
            read_time=data.get("read_time"),
            weight_bits=int(data.get("weight_bits", 4)),
            device_bits=int(data.get("device_bits", 4)),
            total_weights=int(data.get("total_weights", 0)),
            wear_inflation=float(data.get("wear_inflation", 1.0)),
            model=data.get("model", ""),
            cache_version=int(data.get("cache_version", PLAN_CACHE_VERSION)),
        )


def save_plans(path, plans):
    """Write a ``cell key -> SelectionPlan`` mapping as one JSON file.

    Cell keys are stringified with ``repr`` (scenario keys are names or
    (name, value) tuples); :func:`load_plans` returns them as written.
    """
    payload = {
        "cache_version": PLAN_CACHE_VERSION,
        "plans": [
            {"cell": repr(key), "plan": plan.to_json()}
            for key, plan in plans.items()
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path


def load_plans(path):
    """Load :func:`save_plans` output: ``cell repr -> SelectionPlan``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return {
        entry["cell"]: SelectionPlan.from_json(entry["plan"])
        for entry in payload["plans"]
    }


class PlanEngine:
    """Resolves batched :class:`PlanRequest`\\ s against one model.

    Parameters
    ----------
    model:
        The trained network the plans select over.
    sense_x / sense_y:
        The sensitivity data (training subset — rankings must never see
        the evaluation set).
    workload:
        Label stored on emitted plans.
    cache:
        A :class:`~repro.plan.cache.PlanArtifactCache` (default: the
        shared on-disk cache under ``$REPRO_CACHE_DIR``).
    curvature_batch_size:
        Batch size of the curvature accumulation (default
        ``min(256, len(sense_x))`` — the sweep machinery's choice).

    Attributes
    ----------
    stats:
        ``{"curvature_passes", "variance_passes", "ranking_passes",
        "plans"}`` — producer-side counters; a warm cache keeps all of
        the pass counters at zero.
    """

    def __init__(self, model, sense_x, sense_y, workload="", cache=None,
                 curvature_batch_size=None):
        self.model = model
        self.space = WeightSpace.from_model(model)
        self.sense_x = sense_x
        self.sense_y = sense_y
        self.workload = workload
        self.cache = cache if cache is not None else PlanArtifactCache()
        self.curvature_batch_size = int(
            curvature_batch_size
            if curvature_batch_size is not None
            else min(256, len(sense_x))
        )
        self.stats = {
            "curvature_passes": 0,
            "variance_passes": 0,
            "ranking_passes": 0,
            "plans": 0,
        }
        self._model_digest = model_digest(model)
        self._sense_digest = data_digest(
            np.asarray(sense_x), np.asarray(sense_y)
        )

    # ---------------------------------------------------------- stage configs

    def _curvature_config(self, curvature_batches):
        return {
            "model": self._model_digest,
            "sense": self._sense_digest,
            "batch_size": self.curvature_batch_size,
            "max_batches": int(curvature_batches),
        }

    def _variance_config(self, request, technology, mapping, stack):
        return {
            "model": self._model_digest,
            "technology": technology.to_dict() if technology else None,
            "sigma": request.sigma,
            "weight_bits": int(mapping.weight_bits),
            "device_bits": int(mapping.device.bits),
            "differential": bool(mapping.differential),
            "read_time": request.read_time if stack is not None else None,
            "wear_inflation": request.effective_wear_inflation(technology),
        }

    # ------------------------------------------------------------ pure stages

    def curvature(self, curvature_batches=2):
        """The shared curvature pass: ``(scores, tie)`` flat vectors.

        Cached on (model digest, sense digest, scorer parameters), so a
        whole scenario grid — and every later warm re-plan — costs one
        second-derivative accumulation.
        """
        config = self._curvature_config(curvature_batches)

        def produce():
            with span("plan.curvature", batches=int(curvature_batches)):
                self.stats["curvature_passes"] += 1
                scorer = SwimScorer(
                    batch_size=self.curvature_batch_size,
                    max_batches=int(curvature_batches),
                )
                return {
                    "scores": scorer.scores(
                        self.model, self.space, self.sense_x, self.sense_y
                    ),
                    "tie": scorer.tie_break(self.model, self.space),
                }

        arrays = self.cache.get_or_create("curvature", config, produce)
        return arrays["scores"], arrays["tie"]

    def variance(self, request, resolved=None):
        """The per-weight ``E[dw^2]`` map of one request's physics point."""
        technology, _, mapping, stack = (
            resolved if resolved is not None else request.resolve()
        )
        config = self._variance_config(request, technology, mapping, stack)

        def produce():
            with span("plan.variance", read_time=request.read_time):
                self.stats["variance_passes"] += 1
                if stack is not None:
                    variance = variance_map_from_stack(
                        self.space, self.model, mapping, stack,
                        read_time=request.read_time,
                        wear_inflation=config["wear_inflation"],
                    )
                else:
                    variance = variance_map_from_mapping(
                        self.space, self.model, mapping
                    )
                return {"variance": variance}

        return self.cache.get_or_create("variance", config, produce)["variance"]

    # -------------------------------------------------------------- planning

    def _order(self, method, request, resolved):
        """The cached descending ranking of one (method, request) pair.

        Order artifacts are keyed on the *configs* of their inputs (not
        the arrays), so a warm hit loads the ranking without touching
        the curvature or variance stages at all.
        """
        technology, _, mapping, stack = resolved
        if method == "swim":
            config = {
                "method": "swim",
                "curvature": self._curvature_config(request.curvature_batches),
            }

            def produce():
                self.stats["ranking_passes"] += 1
                scores, tie = self.curvature(request.curvature_batches)
                return {"order": rank_descending(scores, tie)}

        elif method == "hetero_swim":
            config = {
                "method": "hetero_swim",
                "curvature": self._curvature_config(request.curvature_batches),
                "variance": self._variance_config(
                    request, technology, mapping, stack
                ),
            }

            def produce():
                self.stats["ranking_passes"] += 1
                scores, tie = self.curvature(request.curvature_batches)
                return {
                    "order": rank_descending(
                        scores * self.variance(request, resolved), tie
                    )
                }

        elif method == "magnitude":
            config = {"method": "magnitude", "model": self._model_digest}

            def produce():
                self.stats["ranking_passes"] += 1
                return {
                    "order": MagnitudeScorer().ranking(
                        self.model, self.space, None, None
                    )
                }

        else:
            raise KeyError(
                f"method {method!r} has no deterministic plan; plannable: "
                f"{PLANNED_METHODS}"
            )
        with span("plan.order", method=method):
            return self.cache.get_or_create("order", config, produce)["order"]

    def plan(self, request):
        """Resolve one request into a :class:`SelectionPlan`."""
        resolved = request.resolve()
        technology = resolved[0]
        with span("plan.resolve", workload=self.workload):
            orders = {
                method: self._order(method, request, resolved)
                for method in request.methods
                if method in PLANNED_METHODS
            }
        self.stats["plans"] += 1
        return SelectionPlan(
            workload=self.workload,
            methods=request.methods,
            nwc_targets=request.nwc_targets,
            counts=tuple(
                int(round(target * self.space.total_size))
                for target in request.nwc_targets
            ),
            orders=orders,
            technology=technology,
            sigma=request.sigma,
            read_time=request.read_time,
            weight_bits=request.weight_bits,
            device_bits=request.device_bits,
            total_weights=self.space.total_size,
            wear_inflation=request.effective_wear_inflation(technology),
            model=self._model_digest,
            cache_version=self.cache.version,
        )

    def plan_batch(self, requests):
        """Resolve a batch of requests, deduplicating shared stages.

        Deduplication is structural: every stage is content-addressed,
        so requests sharing a curvature (or variance) config hit the
        cache after the first resolution — a retention grid of N read
        times costs one curvature pass total.
        """
        return [self.plan(request) for request in requests]


def build_engine(workload="lenet-digits", scale=None, cache=None):
    """Load a zoo workload and wire a :class:`PlanEngine` over it.

    The one shared construction path behind the serving layer's engine
    registry and the serving benchmark.  Mirrors the orchestrator's
    engine construction (sense set = the scale's training-subset slice,
    curvature batch size capped at 256) so engine-resolved plans are the
    ones a scenario run would compute.

    Parameters
    ----------
    workload:
        A model-zoo workload key; an unknown one raises
        :class:`~repro.robustness.errors.ScenarioConfigError` (CLI
        exit 64, HTTP 400 through the serving layer).
    scale:
        A scale name (``smoke`` / ``default`` / ``full``), a
        :class:`~repro.experiments.config.ScalePreset`, or None for
        ``REPRO_SCALE``-resolved default.
    cache:
        The :class:`~repro.plan.cache.PlanArtifactCache` the engine
        stores stages in; the registry passes one shared cache to every
        engine it builds.
    """
    from repro.experiments.config import get_scale
    from repro.experiments.model_zoo import load_workload
    from repro.robustness.errors import ScenarioConfigError

    scale = get_scale(scale) if not hasattr(scale, "workloads") else scale
    try:
        spec = scale.workload(workload)
    except KeyError as exc:
        raise ScenarioConfigError(
            f"unknown workload {workload!r}; available: "
            f"{sorted(scale.workloads)}"
        ) from exc
    zoo = load_workload(spec)
    return PlanEngine(
        zoo.model,
        zoo.data.train_x[:scale.sense_samples],
        zoo.data.train_y[:scale.sense_samples],
        workload=zoo.spec.key,
        cache=cache if cache is not None else PlanArtifactCache(),
        curvature_batch_size=min(256, int(scale.sense_samples)),
    )
