"""Content-addressed, self-healing artifact cache for selection planning.

Every scenario grid re-derives the same expensive intermediates —
curvature flat vectors, stack variance maps, resolved selection orders —
once per grid point.  This cache makes them first-class artifacts:

- **content-addressed keys**: an artifact's key is the SHA-256 of a
  canonical JSON description of everything that determines it — the
  model's weight digest, the sense-set digest, the technology / stack
  parameter dict, ``read_time`` and the scorer parameters.  Mutating any
  of them (perturb a weight, change a drift exponent) changes the key,
  so stale artifacts are unreachable rather than invalidated by fiat.
- **memory + on-disk backends**: the in-process dict serves repeated
  lookups within one planning batch; the ``.npz`` store under
  ``$REPRO_CACHE_DIR/plan/v<N>/`` (see
  :func:`repro.utils.cache.default_cache_dir`) survives across processes
  and sessions, which is what makes warm re-planning of a whole
  retention grid cost one disk read instead of one curvature pass.
- **versioned invalidation**: :data:`PLAN_CACHE_VERSION` is folded into
  both the key and the directory name; bumping it (because key layout or
  artifact semantics changed) orphans every older entry at once.
- **self-healing reads**: every artifact embeds a checksum of its own
  content.  A truncated, garbled, or checksum-mismatched file — a dead
  writer on a non-atomic filesystem, a torn disk — is *quarantined*
  (renamed to ``<artifact>.corrupt``) and the lookup degrades to a
  miss, so :meth:`PlanArtifactCache.get_or_create` transparently
  recomputes instead of crashing the run.  Quarantines are counted in
  :meth:`~PlanArtifactCache.stats`.
- **orphan hygiene**: writes go through ``<path>.tmp.<pid>`` + atomic
  rename; a writer that dies in between leaves a tmp file, which init
  sweeps once it is older than ``tmp_max_age``.
- **bounded memory tier**: the in-process dict is an LRU keyed on
  access order; ``memory_items`` / ``REPRO_CACHE_MEM_ITEMS`` caps it
  (``0`` = unbounded, the historical default).  Evicted entries fall
  back to the on-disk tier — eviction trades a dict lookup for a disk
  read, never a recompute — and are counted in
  :meth:`~PlanArtifactCache.stats` as ``evictions``.  This is what
  lets a long-lived serving process (:mod:`repro.serve`) hold a
  working set without growing RSS with the key universe.

Keys are derived purely from content, never from wall-clock or process
state, so two processes planning the same grid agree byte-for-byte —
the property the cross-process tests pin down.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import warnings
from collections import OrderedDict

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.robustness.errors import (
    CacheCorruptionError,
    CacheWriteError,
    ScenarioConfigError,
)
from repro.robustness.faults import active_schedule
from repro.robustness.supervisor import run_with_retry
from repro.utils.cache import default_cache_dir

__all__ = [
    "PLAN_CACHE_VERSION",
    "PlanArtifactCache",
    "artifact_key",
    "data_digest",
    "model_digest",
    "resolve_memory_items",
]

#: Bump when the key layout or the artifact semantics change: every
#: older on-disk entry becomes unreachable (it lives under the old
#: version directory and hashes with the old version number).
#: v2: artifacts embed a content checksum (the self-healing read path).
PLAN_CACHE_VERSION = 2

#: Name of the embedded checksum entry inside each ``.npz`` artifact.
_CHECKSUM_NAME = "__checksum__"


def model_digest(model):
    """Content digest of a model's named parameters (shapes + bytes).

    Stable across processes and platforms: parameters are folded in
    sorted-name order with their shape and dtype, so any weight
    mutation — including in-place edits that keep the object identity —
    produces a different digest.
    """
    digest = hashlib.sha256()
    params = dict(model.named_parameters())
    for name in sorted(params):
        data = np.ascontiguousarray(params[name].data)
        digest.update(name.encode("utf-8"))
        digest.update(repr(data.shape).encode("utf-8"))
        digest.update(str(data.dtype).encode("utf-8"))
        digest.update(data.tobytes())
    return digest.hexdigest()[:16]


def data_digest(*arrays):
    """Content digest of one or more numpy arrays (the sense set)."""
    digest = hashlib.sha256()
    for array in arrays:
        data = np.ascontiguousarray(array)
        digest.update(repr(data.shape).encode("utf-8"))
        digest.update(str(data.dtype).encode("utf-8"))
        digest.update(data.tobytes())
    return digest.hexdigest()[:16]


def artifact_key(kind, config, version=PLAN_CACHE_VERSION):
    """Deterministic key for one artifact kind + configuration dict.

    ``config`` must be JSON-serializable (digests, parameter dicts,
    numbers, None); the JSON is canonicalized with sorted keys so dict
    insertion order never leaks into the key.
    """
    text = json.dumps(
        {"version": int(version), "kind": str(kind), "config": config},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


def resolve_memory_items(memory_items=None):
    """Resolve the memory-tier LRU cap: arg, else ``REPRO_CACHE_MEM_ITEMS``.

    ``0`` (the default when neither is given) means unbounded — the
    historical behavior; negative values raise
    :class:`~repro.robustness.errors.ScenarioConfigError`.
    """
    if memory_items is None:
        raw = os.environ.get("REPRO_CACHE_MEM_ITEMS", "").strip()
        if not raw:
            return 0
        try:
            memory_items = int(raw)
        except ValueError as exc:
            raise ScenarioConfigError(
                f"REPRO_CACHE_MEM_ITEMS must be an integer, got {raw!r}"
            ) from exc
    memory_items = int(memory_items)
    if memory_items < 0:
        raise ScenarioConfigError(
            "memory_items must be >= 1, or 0 for an unbounded memory tier"
        )
    return memory_items


def _content_checksum(arrays):
    """Checksum of an artifact's arrays (names, shapes, dtypes, bytes)."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        data = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(repr(data.shape).encode("utf-8"))
        digest.update(str(data.dtype).encode("utf-8"))
        digest.update(data.tobytes())
    return digest.hexdigest()


class PlanArtifactCache:
    """Two-tier (memory, disk) store of planning artifacts.

    Artifacts are ``name -> numpy array`` dicts (a curvature artifact
    holds ``scores`` and ``tie``; an order artifact holds ``order``).
    Cached arrays are returned by reference from the memory tier —
    treat them as immutable.

    Parameters
    ----------
    root:
        Base cache directory (default: :func:`~repro.utils.cache.
        default_cache_dir`, i.e. ``$REPRO_CACHE_DIR`` aware).
    memory / disk:
        Enable the in-process and on-disk tiers.  Disabling disk makes
        the cache session-local (useful in tests); disabling memory
        forces every hit through the filesystem.
    version:
        Key/layout version (default :data:`PLAN_CACHE_VERSION`).
    tmp_max_age:
        Age (seconds) past which an orphaned ``*.tmp.*`` file from a
        dead writer is swept at init; younger tmp files may belong to a
        live concurrent writer and are left alone.
    memory_items:
        LRU cap on the memory tier (least-recently-*used* entry evicted
        first); default :func:`resolve_memory_items` — i.e.
        ``REPRO_CACHE_MEM_ITEMS``, else ``0`` = unbounded.  Evictions
        degrade to the disk tier and are counted in :meth:`stats`.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to register the
        cache's counter families in.  Default: a private registry, so
        independent cache instances keep independent :meth:`stats`.
        The serving layer passes its shared registry so cache counters
        show up on ``/metricsz`` next to request counters.
    """

    def __init__(self, root=None, memory=True, disk=True,
                 version=PLAN_CACHE_VERSION, tmp_max_age=3600.0,
                 memory_items=None, metrics=None):
        self.version = int(version)
        self.disk = bool(disk)
        self._memory = OrderedDict() if memory else None
        self.memory_items = resolve_memory_items(memory_items)
        # The serving layer reads warm entries on the event loop while
        # a resolver thread writes cold ones; one uncontended lock keeps
        # the LRU's read-reorder + insert + evict sequences atomic.
        # Counters carry their own per-child locks in the registry.
        self._memory_lock = threading.Lock()
        self.root = os.path.join(
            root or default_cache_dir(), "plan", f"v{self.version}"
        )
        self.tmp_max_age = float(tmp_max_age)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        hits = self.metrics.counter(
            "repro_cache_hits_total", "Artifact cache hits by tier.",
            labels=("tier",),
        )
        self._hits = {
            "memory": hits.labels(tier="memory"),
            "disk": hits.labels(tier="disk"),
        }
        self._misses = self.metrics.counter(
            "repro_cache_misses_total", "Artifact cache misses (both tiers)."
        )
        self._quarantined = self.metrics.counter(
            "repro_cache_quarantined_total",
            "Corrupt artifacts moved aside by the self-healing read path.",
        )
        self._producer_retries = self.metrics.counter(
            "repro_cache_producer_retries_total",
            "Retries of transiently failing artifact producers.",
        )
        self._evictions = self.metrics.counter(
            "repro_cache_evictions_total",
            "Memory-tier LRU evictions (entries fall back to disk).",
        )
        self._memory_entries = self.metrics.gauge(
            "repro_cache_memory_entries", "Entries resident in the memory tier."
        )
        self._memory_cap = self.metrics.gauge(
            "repro_cache_memory_cap", "Memory-tier LRU cap (0 = unbounded)."
        )
        self._memory_cap.set(self.memory_items)
        self._memory_entries.set(0)
        # Touch every counter child so stats()/snapshot() expose the
        # full catalog from the first read, not only after traffic.
        for child in self._hits.values():
            child.inc(0)
        for family in (self._misses, self._quarantined,
                       self._producer_retries, self._evictions):
            family.inc(0)
        if self.disk:
            self._sweep_stale_tmp()

    # ------------------------------------------------------------ addressing

    def key(self, kind, config):
        """Content-addressed key of one artifact."""
        return artifact_key(kind, config, version=self.version)

    def path_for(self, kind, config):
        """On-disk path of one artifact (whether or not it exists)."""
        return os.path.join(self.root, f"{kind}-{self.key(kind, config)}.npz")

    # --------------------------------------------------------------- healing

    def _sweep_stale_tmp(self):
        """Remove tmp files orphaned by writers that died mid-write."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return  # no cache directory yet — nothing to sweep
        cutoff = time.time() - self.tmp_max_age
        for name in names:
            if ".tmp." not in name:
                continue
            path = os.path.join(self.root, name)
            try:
                if os.path.getmtime(path) <= cutoff:
                    os.unlink(path)
            except OSError:
                pass  # claimed by a concurrent sweeper, or vanished

    def _quarantine(self, path, reason):
        """Move a rotten artifact aside so the key reads as a miss."""
        self._quarantined.inc()
        try:
            os.replace(path, path + ".corrupt")
            where = f"quarantined as {os.path.basename(path)}.corrupt"
        except OSError:
            where = "could not be quarantined"
        warnings.warn(
            f"corrupt plan cache artifact {path} ({reason}); {where}, "
            "treating as a miss",
            RuntimeWarning,
            stacklevel=3,
        )

    def _load_checked(self, path):
        """Load + verify one on-disk artifact; None (and quarantine) if rotten."""
        try:
            with np.load(path, allow_pickle=False) as handle:
                arrays = {name: handle[name] for name in handle.files}
            stored = arrays.pop(_CHECKSUM_NAME, None)
            if stored is None:
                raise CacheCorruptionError("no embedded checksum")
            if bytes(bytearray(stored)).decode("ascii") != _content_checksum(arrays):
                raise CacheCorruptionError("checksum mismatch")
        except Exception as exc:  # truncated zip, bad header, short read...
            self._quarantine(path, f"{type(exc).__name__}: {exc}")
            return None
        return arrays

    # ------------------------------------------------------------ memory tier

    def _memory_get(self, key):
        """Memory-tier lookup; a hit refreshes the entry's LRU position."""
        if self._memory is None:
            return None
        with self._memory_lock:
            arrays = self._memory.get(key)
            if arrays is not None:
                self._memory.move_to_end(key)
            return arrays

    def _remember(self, key, arrays):
        """Insert into the memory tier, evicting past the LRU cap."""
        if self._memory is None:
            return
        with self._memory_lock:
            self._memory[key] = arrays
            self._memory.move_to_end(key)
            if self.memory_items > 0:
                while len(self._memory) > self.memory_items:
                    self._memory.popitem(last=False)
                    self._evictions.inc()
            self._memory_entries.set(len(self._memory))

    # ---------------------------------------------------------------- access

    def lookup(self, kind, key):
        """Load an artifact by its content key alone, or None on miss.

        The content-addressed read path shared by :meth:`get` and the
        serving layer's ``GET /v1/plan/<key>`` warm fetch: memory tier
        first, then the checked (self-healing) disk read.  Never runs a
        producer.
        """
        arrays = self._memory_get(key)
        if arrays is not None:
            self._hits["memory"].inc()
            return arrays
        if self.disk:
            path = os.path.join(self.root, f"{kind}-{key}.npz")
            schedule = active_schedule()
            if schedule is not None and os.path.exists(path):
                schedule.corrupt_file("artifact", kind, path)
            if os.path.exists(path):
                arrays = self._load_checked(path)
                if arrays is not None:
                    self._remember(key, arrays)
                    self._hits["disk"].inc()
                    return arrays
        self._misses.inc()
        return None

    def get(self, kind, config):
        """Load an artifact, or None on miss (memory tier first).

        A corrupted/truncated/checksum-mismatched disk entry is
        quarantined and reported as a miss, so callers transparently
        fall through to recomputation.
        """
        return self.lookup(kind, self.key(kind, config))

    def put(self, kind, config, arrays):
        """Store an artifact in every enabled tier; returns it."""
        key = self.key(kind, config)
        arrays = {name: np.asarray(value) for name, value in arrays.items()}
        self._remember(key, arrays)
        if self.disk:
            path = os.path.join(self.root, f"{kind}-{key}.npz")
            # Write-then-rename so a concurrent reader (parallel cells,
            # parallel CI shards) never sees a half-written artifact;
            # the embedded checksum catches the remaining failure modes
            # (torn writes on rename-less filesystems, disk rot).
            tmp = f"{path}.tmp.{os.getpid()}"
            payload = dict(arrays)
            payload[_CHECKSUM_NAME] = np.frombuffer(
                _content_checksum(arrays).encode("ascii"), dtype=np.uint8
            ).copy()
            try:
                os.makedirs(self.root, exist_ok=True)
                with open(tmp, "wb") as handle:
                    np.savez(handle, **payload)
                os.replace(tmp, path)
            except OSError as exc:
                raise CacheWriteError(
                    f"cannot write plan cache artifact under {self.root}: {exc}"
                ) from exc
            finally:
                # A failed write (full disk, killed savez) must not leak
                # its tmp file; a successful rename already consumed it.
                if os.path.exists(tmp):
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
        return arrays

    def get_or_create(self, kind, config, producer):
        """Load the artifact or produce + store it.

        ``producer`` is a zero-argument callable returning the
        ``name -> array`` dict; it runs only on a full (memory + disk)
        miss.  A producer that raises a :class:`~repro.robustness.
        errors.RetryableError` (a declared-transient failure) is retried
        with the supervisor's bounded-backoff policy; retry counts show
        up in :meth:`stats` as ``producer_retries``.
        """
        arrays = self.get(kind, config)
        if arrays is not None:
            return arrays

        def produce():
            schedule = active_schedule()
            if schedule is not None:
                schedule.fire("producer", kind)
            return producer()

        value, attempts = run_with_retry(produce)
        if attempts > 1:
            self._producer_retries.inc(attempts - 1)
        return self.put(kind, config, value)

    # -------------------------------------------------------------- plumbing

    def clear_memory(self):
        """Drop the in-process tier (disk entries survive)."""
        if self._memory is not None:
            with self._memory_lock:
                self._memory.clear()
                self._memory_entries.set(0)

    def stats(self):
        """Every counter the cache keeps, as one flat dict.

        This is the *single* stats surface: :class:`~repro.robustness.
        report.RunReport` embeds it verbatim and the serving layer's
        ``/statsz`` endpoint returns it verbatim — consumers must not
        re-derive counters from cache internals.  The dict itself is a
        flat view over ``metrics.snapshot()`` (families prefixed
        ``repro_cache_``), so a counter registered once shows up here,
        in :func:`~repro.robustness.report.render_cache_stats`, and on
        ``/metricsz`` without further plumbing.
        """
        return self.metrics.flat("repro_cache_")

    def __repr__(self):
        tiers = []
        if self._memory is not None:
            tiers.append(f"memory[{len(self._memory)}]")
        if self.disk:
            tiers.append(f"disk[{self.root}]")
        return f"PlanArtifactCache(v{self.version}, {' + '.join(tiers) or 'off'})"
