"""Content-addressed artifact cache for the selection-planning subsystem.

Every scenario grid re-derives the same expensive intermediates —
curvature flat vectors, stack variance maps, resolved selection orders —
once per grid point.  This cache makes them first-class artifacts:

- **content-addressed keys**: an artifact's key is the SHA-256 of a
  canonical JSON description of everything that determines it — the
  model's weight digest, the sense-set digest, the technology / stack
  parameter dict, ``read_time`` and the scorer parameters.  Mutating any
  of them (perturb a weight, change a drift exponent) changes the key,
  so stale artifacts are unreachable rather than invalidated by fiat.
- **memory + on-disk backends**: the in-process dict serves repeated
  lookups within one planning batch; the ``.npz`` store under
  ``$REPRO_CACHE_DIR/plan/v<N>/`` (see
  :func:`repro.utils.cache.default_cache_dir`) survives across processes
  and sessions, which is what makes warm re-planning of a whole
  retention grid cost one disk read instead of one curvature pass.
- **versioned invalidation**: :data:`PLAN_CACHE_VERSION` is folded into
  both the key and the directory name; bumping it (because key layout or
  artifact semantics changed) orphans every older entry at once.

Keys are derived purely from content, never from wall-clock or process
state, so two processes planning the same grid agree byte-for-byte —
the property the cross-process tests pin down.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from repro.utils.cache import default_cache_dir

__all__ = [
    "PLAN_CACHE_VERSION",
    "PlanArtifactCache",
    "artifact_key",
    "data_digest",
    "model_digest",
]

#: Bump when the key layout or the artifact semantics change: every
#: older on-disk entry becomes unreachable (it lives under the old
#: version directory and hashes with the old version number).
PLAN_CACHE_VERSION = 1


def model_digest(model):
    """Content digest of a model's named parameters (shapes + bytes).

    Stable across processes and platforms: parameters are folded in
    sorted-name order with their shape and dtype, so any weight
    mutation — including in-place edits that keep the object identity —
    produces a different digest.
    """
    digest = hashlib.sha256()
    params = dict(model.named_parameters())
    for name in sorted(params):
        data = np.ascontiguousarray(params[name].data)
        digest.update(name.encode("utf-8"))
        digest.update(repr(data.shape).encode("utf-8"))
        digest.update(str(data.dtype).encode("utf-8"))
        digest.update(data.tobytes())
    return digest.hexdigest()[:16]


def data_digest(*arrays):
    """Content digest of one or more numpy arrays (the sense set)."""
    digest = hashlib.sha256()
    for array in arrays:
        data = np.ascontiguousarray(array)
        digest.update(repr(data.shape).encode("utf-8"))
        digest.update(str(data.dtype).encode("utf-8"))
        digest.update(data.tobytes())
    return digest.hexdigest()[:16]


def artifact_key(kind, config, version=PLAN_CACHE_VERSION):
    """Deterministic key for one artifact kind + configuration dict.

    ``config`` must be JSON-serializable (digests, parameter dicts,
    numbers, None); the JSON is canonicalized with sorted keys so dict
    insertion order never leaks into the key.
    """
    text = json.dumps(
        {"version": int(version), "kind": str(kind), "config": config},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


class PlanArtifactCache:
    """Two-tier (memory, disk) store of planning artifacts.

    Artifacts are ``name -> numpy array`` dicts (a curvature artifact
    holds ``scores`` and ``tie``; an order artifact holds ``order``).
    Cached arrays are returned by reference from the memory tier —
    treat them as immutable.

    Parameters
    ----------
    root:
        Base cache directory (default: :func:`~repro.utils.cache.
        default_cache_dir`, i.e. ``$REPRO_CACHE_DIR`` aware).
    memory / disk:
        Enable the in-process and on-disk tiers.  Disabling disk makes
        the cache session-local (useful in tests); disabling memory
        forces every hit through the filesystem.
    version:
        Key/layout version (default :data:`PLAN_CACHE_VERSION`).
    """

    def __init__(self, root=None, memory=True, disk=True,
                 version=PLAN_CACHE_VERSION):
        self.version = int(version)
        self.disk = bool(disk)
        self._memory = {} if memory else None
        self.root = os.path.join(
            root or default_cache_dir(), "plan", f"v{self.version}"
        )
        self.hits = {"memory": 0, "disk": 0}
        self.misses = 0

    # ------------------------------------------------------------ addressing

    def key(self, kind, config):
        """Content-addressed key of one artifact."""
        return artifact_key(kind, config, version=self.version)

    def path_for(self, kind, config):
        """On-disk path of one artifact (whether or not it exists)."""
        return os.path.join(self.root, f"{kind}-{self.key(kind, config)}.npz")

    # ---------------------------------------------------------------- access

    def get(self, kind, config):
        """Load an artifact, or None on miss (memory tier first)."""
        key = self.key(kind, config)
        if self._memory is not None and key in self._memory:
            self.hits["memory"] += 1
            return self._memory[key]
        if self.disk:
            path = os.path.join(self.root, f"{kind}-{key}.npz")
            if os.path.exists(path):
                with np.load(path, allow_pickle=False) as handle:
                    arrays = {name: handle[name] for name in handle.files}
                if self._memory is not None:
                    self._memory[key] = arrays
                self.hits["disk"] += 1
                return arrays
        self.misses += 1
        return None

    def put(self, kind, config, arrays):
        """Store an artifact in every enabled tier; returns it."""
        key = self.key(kind, config)
        arrays = {name: np.asarray(value) for name, value in arrays.items()}
        if self._memory is not None:
            self._memory[key] = arrays
        if self.disk:
            os.makedirs(self.root, exist_ok=True)
            path = os.path.join(self.root, f"{kind}-{key}.npz")
            # Write-then-rename so a concurrent reader (parallel cells,
            # parallel CI shards) never sees a half-written artifact.
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(tmp, path)
        return arrays

    def get_or_create(self, kind, config, producer):
        """Load the artifact or produce + store it.

        ``producer`` is a zero-argument callable returning the
        ``name -> array`` dict; it runs only on a full (memory + disk)
        miss.
        """
        arrays = self.get(kind, config)
        if arrays is not None:
            return arrays
        return self.put(kind, config, producer())

    # -------------------------------------------------------------- plumbing

    def clear_memory(self):
        """Drop the in-process tier (disk entries survive)."""
        if self._memory is not None:
            self._memory.clear()

    def stats(self):
        """Hit/miss counters (memory hits, disk hits, misses)."""
        return {**self.hits, "misses": self.misses}

    def __repr__(self):
        tiers = []
        if self._memory is not None:
            tiers.append(f"memory[{len(self._memory)}]")
        if self.disk:
            tiers.append(f"disk[{self.root}]")
        return f"PlanArtifactCache(v{self.version}, {' + '.join(tiers) or 'off'})"
