"""Reproduction of SWIM: Selective Write-Verify for CiM Neural Accelerators.

Subpackages
-----------
``repro.nn``
    From-scratch NumPy deep-learning framework with gradient *and*
    diagonal-second-derivative backpropagation (the paper's Sec. 3.3).
``repro.data``
    Procedural synthetic datasets standing in for MNIST / CIFAR-10 /
    Tiny ImageNet (offline environment).
``repro.cim``
    Non-volatile CiM substrate: device variation model (Eqs. 14-16),
    bit-sliced weight mapping, iterative write-verify, crossbar MVM.
``repro.core``
    SWIM itself: sensitivity analysis, weight selection, Algorithm 1,
    and the Random / Magnitude / In-situ baselines.
``repro.plan``
    Selection planning: content-addressed artifact cache, batched plan
    engine, and parallel scenario orchestration.
``repro.experiments``
    Drivers that regenerate every table and figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
