"""The work-rectangle scheduler: one worker pool for cells x trials.

Before this module, a scenario run had two mutually-exclusive
parallelism axes — ``--jobs`` fanned grid *cells* across a fork pool
and ``--processes`` fanned Monte Carlo *trials* inside one cell — and
combining them exited 64, because daemonic pool workers cannot fork
nested pools.  A many-core box therefore could not be saturated on a
small grid of large cells.

The scheduler removes the axes entirely.  Every scenario run is a
**work rectangle**: the grid's cells on one side, each cell's Monte
Carlo trials on the other.  :func:`tile_ranges` decomposes each cell's
trial axis into *tiles* — contiguous runs of whole engine trial blocks
(see :meth:`~repro.core.mc.MonteCarloEngine.block_size`; the batched
verify stage draws one RNG per block, keyed on the block's first trial,
so only block-aligned splits are bitwise-identical to an unsplit run) —
and the resulting flat tile list is packed onto **one** supervised fork
pool (:func:`~repro.robustness.supervisor.supervised_map`; no second
supervision path), sized by :func:`resolve_workers`:

- ``workers`` / ``REPRO_WORKERS`` is the one knob: total concurrent
  worker processes; ``0`` means auto-size to the detected core count
  (:func:`auto_workers`).
- the deprecated ``jobs`` / ``processes`` pair (``REPRO_JOBS`` /
  ``REPRO_MC_PROCESSES``) now *combines* into ``jobs * processes``
  workers instead of conflicting.

Tile boundaries are a pure function of the cell's trial count and the
engine block size — never of the worker count — so a tile's
content-addressed cache key is stable across serial, ``--workers 4``,
and ``--jobs 2 --processes 2`` invocations, which is what makes warm
reruns incremental (only changed cells/blocks recompute) and still
byte-identical to a cold serial run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.obs.metrics import get_registry
from repro.robustness.errors import ScenarioConfigError

__all__ = [
    "DEFAULT_TILES_PER_CELL",
    "Tile",
    "auto_workers",
    "resolve_tile_trials",
    "resolve_worker_count",
    "resolve_workers",
    "scheduler_metrics",
    "tile_ranges",
]


def scheduler_metrics(registry=None):
    """The scheduler's metric families (global registry by default).

    The orchestrator feeds these as it executes a work rectangle:
    ``tiles`` counts decomposition outcomes by ``result`` (``cached`` /
    ``computed``), ``cells`` counts cell completions by final status,
    ``workers`` records the last resolved pool size.
    """
    registry = registry if registry is not None else get_registry()
    return {
        "tiles": registry.counter(
            "repro_scheduler_tiles_total",
            "Work-rectangle tiles by outcome.",
            labels=("result",),
        ),
        "cells": registry.counter(
            "repro_scheduler_cells_total",
            "Scenario cells by final status.",
            labels=("status",),
        ),
        "workers": registry.gauge(
            "repro_scheduler_workers",
            "Most recently resolved worker-pool size (0 = serial).",
        ),
    }

#: Upper bound on tiles per cell when no explicit tile size is given:
#: enough grain to saturate a many-core box on a handful of cells,
#: without paying per-tile setup (accelerator mapping, fork) for every
#: single trial block.  Part of the tile cache key's geometry — change
#: it and warm reruns re-tile (and therefore recompute).
DEFAULT_TILES_PER_CELL = 8


def auto_workers():
    """The machine's usable core count.

    ``len(os.sched_getaffinity(0))`` respects cgroup/CPU-set limits
    (what a containerized CI run can actually use); platforms without
    it fall back to ``os.cpu_count()``.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def resolve_worker_count(value, env, what):
    """Shared worker-count semantics for every parallelism knob.

    Explicit argument wins, else the environment variable; unset/empty
    means "not requested" (``None``).  ``0`` — from either source —
    consistently means "auto-size to the machine"
    (:func:`auto_workers`); negative values raise
    :class:`~repro.robustness.errors.ScenarioConfigError`.
    """
    if value is None:
        raw = os.environ.get(env, "").strip()
        if not raw:
            return None
        try:
            value = int(raw)
        except ValueError as exc:
            raise ScenarioConfigError(
                f"{env} must be an integer, got {raw!r}"
            ) from exc
    value = int(value)
    if value < 0:
        raise ScenarioConfigError(
            f"{what} must be >= 1, or 0 to auto-size to the core count"
        )
    if value == 0:
        return auto_workers()
    return value


def resolve_workers(workers=None, jobs=None, processes=None):
    """Resolve the rectangle's worker count from every supported knob.

    ``workers`` / ``REPRO_WORKERS`` is authoritative when given (``0``
    = auto).  Otherwise the deprecated pair is consulted — ``jobs`` /
    ``REPRO_JOBS`` (formerly: parallel cells) and ``processes`` /
    ``REPRO_MC_PROCESSES`` (formerly: the per-cell trial pool) — and
    *combined* into ``jobs * processes`` workers, the capacity the two
    pools would have claimed had nesting worked.  With no knob set at
    all the result is ``None``: the caller runs serially (parallelism
    stays opt-in, as before).
    """
    workers = resolve_worker_count(workers, "REPRO_WORKERS", "workers")
    if workers is not None:
        return workers
    jobs = resolve_worker_count(jobs, "REPRO_JOBS", "jobs")
    processes = resolve_worker_count(
        processes, "REPRO_MC_PROCESSES", "processes"
    )
    if jobs is None and processes is None:
        return None
    return max(1, (jobs or 1) * (processes or 1))


def resolve_tile_trials(tile_trials=None):
    """Optional explicit tile height (trials per tile): arg else
    ``REPRO_TILE_TRIALS``; unset means the :data:`DEFAULT_TILES_PER_CELL`
    heuristic.  Rounded up to a whole trial block by
    :func:`tile_ranges`.  Changes tile cache keys (a different
    decomposition is a different artifact), never results.
    """
    if tile_trials is None:
        raw = os.environ.get("REPRO_TILE_TRIALS", "").strip()
        if not raw:
            return None
        try:
            tile_trials = int(raw)
        except ValueError as exc:
            raise ScenarioConfigError(
                f"REPRO_TILE_TRIALS must be an integer, got {raw!r}"
            ) from exc
    tile_trials = int(tile_trials)
    if tile_trials < 1:
        raise ScenarioConfigError("tile_trials must be >= 1")
    return tile_trials


@dataclass(frozen=True)
class Tile:
    """One rectangle tile: trials ``[start, stop)`` of cell ``cell``."""

    cell: int
    start: int
    stop: int

    @property
    def trials(self):
        return self.stop - self.start


def tile_ranges(n_trials, block, tile_trials=None):
    """Deterministic tile boundaries for one cell's trial axis.

    Every tile is a contiguous run of whole trial blocks starting at a
    multiple of ``block`` — the alignment the batched verify stream
    requires for bitwise identity.  The decomposition depends only on
    ``(n_trials, block, tile_trials)``, never on the worker count, so
    the same cell always yields the same tiles (and the same tile cache
    keys) no matter how — or whether — the run is parallelized.
    """
    n_trials = int(n_trials)
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    block = max(1, int(block))
    if tile_trials is None:
        n_blocks = -(-n_trials // block)  # ceil
        per_tile = -(-n_blocks // DEFAULT_TILES_PER_CELL)
    else:
        per_tile = max(1, -(-int(tile_trials) // block))
    span = per_tile * block
    return [
        (start, min(start + span, n_trials))
        for start in range(0, n_trials, span)
    ]
