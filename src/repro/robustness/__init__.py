"""Fault tolerance for scenario execution: the reliability substrate.

Long multi-configuration simulation campaigns fail for infrastructure
reasons — a truncated cache artifact, an OOM-killed fork worker, a hung
cell — far more often than for physics reasons.  This package makes
those failures survivable and *testable*:

- :mod:`~repro.robustness.errors` — a retryable-vs-fatal exception
  taxonomy with per-family CLI exit codes;
- :mod:`~repro.robustness.supervisor` — :func:`supervised_map`, the
  crash/timeout/retry-aware replacement for ``Pool.map`` used by both
  the scenario orchestrator and the Monte Carlo trial pool;
- :mod:`~repro.robustness.checkpoint` — sweep-outcome serialization so
  completed grid cells persist as content-addressed artifacts and
  resumed runs skip them byte-identically;
- :mod:`~repro.robustness.report` — structured run reports (what ran,
  what recovered, what failed) behind the CLI summary and exit codes;
- :mod:`~repro.robustness.faults` — the deterministic fault-injection
  harness (``REPRO_FAULTS``) that drives all of the above in tests, CI
  chaos runs, and benchmarks.
"""

from repro.robustness.checkpoint import decode_outcome, encode_outcome
from repro.robustness.errors import (
    CacheCorruptionError,
    CacheWriteError,
    CellExecutionError,
    CellTimeoutError,
    FatalError,
    PartialGridError,
    ReproError,
    RetryableError,
    ScenarioConfigError,
    TransientFaultError,
    WorkerCrashError,
    is_retryable,
)
from repro.robustness.faults import (
    FaultEntry,
    FaultSchedule,
    active_schedule,
    parse_faults,
)
from repro.robustness.report import CellRecord, RunReport
from repro.robustness.supervisor import (
    SupervisedResult,
    TaskReport,
    has_fork,
    resolve_backoff,
    resolve_retries,
    resolve_timeout,
    run_with_retry,
    supervised_map,
)

__all__ = [
    "CacheCorruptionError",
    "CacheWriteError",
    "CellExecutionError",
    "CellRecord",
    "CellTimeoutError",
    "FatalError",
    "FaultEntry",
    "FaultSchedule",
    "PartialGridError",
    "ReproError",
    "RetryableError",
    "RunReport",
    "ScenarioConfigError",
    "SupervisedResult",
    "TaskReport",
    "TransientFaultError",
    "WorkerCrashError",
    "active_schedule",
    "decode_outcome",
    "encode_outcome",
    "has_fork",
    "is_retryable",
    "parse_faults",
    "resolve_backoff",
    "resolve_retries",
    "resolve_timeout",
    "run_with_retry",
    "supervised_map",
]
