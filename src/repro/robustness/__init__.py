"""Fault tolerance for scenario execution: the reliability substrate.

Long multi-configuration simulation campaigns fail for infrastructure
reasons — a truncated cache artifact, an OOM-killed fork worker, a hung
cell — far more often than for physics reasons.  This package makes
those failures survivable and *testable*:

- :mod:`~repro.robustness.errors` — a retryable-vs-fatal exception
  taxonomy with per-family CLI exit codes;
- :mod:`~repro.robustness.supervisor` — :func:`supervised_map`, the
  crash/timeout/retry-aware replacement for ``Pool.map`` used by both
  the scenario orchestrator and the Monte Carlo trial pool;
- :mod:`~repro.robustness.scheduler` — the work-rectangle scheduler:
  worker-count resolution (``--workers`` / ``REPRO_WORKERS``, with the
  deprecated jobs x processes pair folded in) and the worker-count
  independent (cells x trial-blocks) tile decomposition every scenario
  run schedules onto one :func:`supervised_map` pool;
- :mod:`~repro.robustness.checkpoint` — sweep-outcome serialization so
  completed grid cells and evaluation tiles persist as
  content-addressed artifacts and warm or resumed runs skip them
  byte-identically (:func:`merge_outcomes` reassembles tiles exactly);
- :mod:`~repro.robustness.report` — structured run reports (what ran,
  what recovered, what failed) behind the CLI summary and exit codes;
- :mod:`~repro.robustness.faults` — the deterministic fault-injection
  harness (``REPRO_FAULTS``) that drives all of the above in tests, CI
  chaos runs, and benchmarks.
"""

from repro.robustness.checkpoint import (
    decode_outcome,
    encode_outcome,
    merge_outcomes,
    merge_wear,
)
from repro.robustness.errors import (
    CacheCorruptionError,
    CacheWriteError,
    CellExecutionError,
    CellTimeoutError,
    FatalError,
    PartialGridError,
    ReproError,
    RetryableError,
    ScenarioConfigError,
    TransientFaultError,
    WorkerCrashError,
    is_retryable,
)
from repro.robustness.faults import (
    FaultEntry,
    FaultSchedule,
    active_schedule,
    parse_faults,
)
from repro.robustness.report import (
    CellRecord,
    RunReport,
    cache_eventful,
    render_cache_stats,
)
from repro.robustness.scheduler import (
    Tile,
    auto_workers,
    resolve_tile_trials,
    resolve_worker_count,
    resolve_workers,
    tile_ranges,
)
from repro.robustness.supervisor import (
    SupervisedResult,
    TaskReport,
    has_fork,
    resolve_backoff,
    resolve_retries,
    resolve_timeout,
    run_with_retry,
    supervised_map,
)

__all__ = [
    "CacheCorruptionError",
    "CacheWriteError",
    "CellExecutionError",
    "CellRecord",
    "CellTimeoutError",
    "FatalError",
    "FaultEntry",
    "FaultSchedule",
    "PartialGridError",
    "ReproError",
    "RetryableError",
    "RunReport",
    "ScenarioConfigError",
    "SupervisedResult",
    "TaskReport",
    "Tile",
    "TransientFaultError",
    "WorkerCrashError",
    "active_schedule",
    "auto_workers",
    "cache_eventful",
    "decode_outcome",
    "encode_outcome",
    "has_fork",
    "is_retryable",
    "merge_outcomes",
    "merge_wear",
    "parse_faults",
    "render_cache_stats",
    "resolve_backoff",
    "resolve_retries",
    "resolve_tile_trials",
    "resolve_timeout",
    "resolve_worker_count",
    "resolve_workers",
    "run_with_retry",
    "supervised_map",
]
