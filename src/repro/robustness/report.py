"""Structured run reports: what survived, what was retried, what failed.

A fault-tolerant grid run no longer has a binary outcome, so "it
printed a table" stops being evidence of health.  The orchestrator
records one :class:`CellRecord` per grid cell — executed, recovered
after retries, degraded to the serial fallback, resumed from a
checkpoint, or permanently failed — plus the cache's self-healing
counters, and the CLI renders the summary (and exits nonzero on partial
grids) from this report rather than from log archaeology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CellRecord", "RunReport", "cache_eventful", "render_cache_stats"]

#: Cache counters whose nonzero value means "something anomalous
#: happened" (rot healed, producers retried) — as opposed to ordinary
#: traffic counters (hits, misses, LRU evictions).
CACHE_EVENT_COUNTERS = ("quarantined", "producer_retries")


def cache_eventful(stats):
    """Whether a :meth:`~repro.plan.cache.PlanArtifactCache.stats` dict
    records anything beyond ordinary hit/miss traffic.

    The one shared predicate: :class:`RunReport`, the CLI, and the
    serving layer all consume the cache's ``stats()`` dict through this
    (and :func:`render_cache_stats`) instead of each re-deriving which
    counters matter.
    """
    return any(stats.get(counter, 0) for counter in CACHE_EVENT_COUNTERS)


#: Tier-hit keys folded into one leading ``hits=`` figure.
_HIT_TIER_KEYS = ("memory", "disk")

#: Keys always rendered (zero or not), in this order, after ``hits``.
_LEAD_KEYS = ("misses", "quarantined", "producer_retries")


def render_cache_stats(stats):
    """One-line human summary of a cache ``stats()`` dict.

    Generic over the dict — the headline counters render in a fixed
    order, and *every other* nonzero entry follows (sorted), so a
    counter added to the cache's registry once shows up here, on
    ``/statsz``, and on ``/metricsz`` without touching this function.
    """
    parts = [f"hits={sum(stats.get(key, 0) for key in _HIT_TIER_KEYS)}"]
    parts.extend(f"{key}={stats.get(key, 0)}" for key in _LEAD_KEYS)
    rendered = set(_HIT_TIER_KEYS) | set(_LEAD_KEYS)
    parts.extend(
        f"{key}={stats[key]}"
        for key in sorted(stats)
        if key not in rendered and stats[key]
    )
    return " ".join(parts)

#: Cell statuses in severity order (render order for anomalies).
#: ``cached`` means every evaluation tile of the cell was served from
#: the content-addressed eval cache (an incremental warm rerun);
#: ``resumed`` means the whole cell came from a ``--resume`` checkpoint.
STATUSES = ("ok", "cached", "resumed", "recovered", "degraded", "failed")


@dataclass
class CellRecord:
    """Execution outcome of one scenario cell.

    ``tiles`` / ``tiles_cached`` describe the cell's work-rectangle
    decomposition: how many trial-window tiles it spanned and how many
    of them were served from the evaluation-artifact cache instead of
    recomputed.
    """

    key: object
    status: str  # one of STATUSES
    attempts: int = 1
    duration: float = 0.0
    error: str = None
    failures: list = field(default_factory=list)
    tiles: int = 1
    tiles_cached: int = 0

    def to_json(self):
        return {
            "key": repr(self.key),
            "status": self.status,
            "attempts": self.attempts,
            "duration": round(self.duration, 3),
            "error": self.error,
            "failures": list(self.failures),
            "tiles": self.tiles,
            "tiles_cached": self.tiles_cached,
        }


@dataclass
class RunReport:
    """One scenario run's robustness ledger."""

    scenario: str = ""
    cells: list = field(default_factory=list)
    cache: dict = field(default_factory=dict)
    checkpoint_errors: int = 0
    tiles_total: int = 0
    tiles_cached: int = 0
    tiles_computed: int = 0

    def add(self, record):
        self.cells.append(record)
        return record

    def count(self, status):
        return sum(1 for cell in self.cells if cell.status == status)

    @property
    def failed(self):
        """Permanently failed cells, in grid order."""
        return [cell for cell in self.cells if cell.status == "failed"]

    @property
    def eventful(self):
        """Whether anything beyond clean first-attempt execution happened."""
        return (
            any(cell.status != "ok" for cell in self.cells)
            or self.checkpoint_errors > 0
            or cache_eventful(self.cache)
        )

    def to_json(self):
        return {
            "scenario": self.scenario,
            "counts": {status: self.count(status) for status in STATUSES},
            "cells": [cell.to_json() for cell in self.cells],
            "cache": dict(self.cache),
            "checkpoint_errors": self.checkpoint_errors,
            "tiles": {
                "total": self.tiles_total,
                "cached": self.tiles_cached,
                "computed": self.tiles_computed,
            },
        }

    def render(self):
        """Human summary: one counts line, one line per anomalous cell."""
        counts = " ".join(
            f"{status}={self.count(status)}" for status in STATUSES
        )
        tiles = ""
        if self.tiles_total:
            tiles = (
                f" | tiles: total={self.tiles_total}"
                f" cached={self.tiles_cached}"
                f" computed={self.tiles_computed}"
            )
        cache = ""
        if self.cache:
            cache = f" | cache: {render_cache_stats(self.cache)}"
        checkpoint = (
            f" checkpoint_errors={self.checkpoint_errors}"
            if self.checkpoint_errors else ""
        )
        lines = [
            f"[robustness] {self.scenario or 'run'}: cells={len(self.cells)} "
            f"{counts}{tiles}{cache}{checkpoint}"
        ]
        for cell in self.cells:
            if cell.status == "ok":
                continue
            detail = f"  cell {cell.key!r}: {cell.status}"
            if cell.attempts > 1:
                detail += f" after {cell.attempts} attempts"
            if cell.failures:
                detail += f" ({'; '.join(cell.failures)})"
            lines.append(detail)
        return "\n".join(lines)
