"""Deterministic fault injection for the execution and caching layers.

Recovery code that only runs when hardware actually misbehaves is
untested code.  This harness injects the four failure shapes the
robustness layer claims to survive — worker crashes, hung cells,
transient producer exceptions, and on-disk artifact corruption — on a
*deterministic schedule* described by the ``REPRO_FAULTS`` environment
variable, so a chaos run is exactly reproducible.

Grammar (entries separated by ``;``)::

    entry := kind ':' site ['@' key] ['*' times] ['=' param]

    kind  := crash | hang | raise | corrupt
    site  := cell | trial | artifact | producer

- ``crash:cell@0`` — the first execution of scenario cell 0 calls
  ``os._exit(1)`` (an OOM-kill / segfault stand-in).
- ``hang:cell@1=60`` — the first execution of cell 1 sleeps 60 seconds
  (to be killed by ``REPRO_CELL_TIMEOUT``).
- ``raise:producer@variance*2`` — the first two runs of a ``variance``
  artifact producer raise :class:`~repro.robustness.errors.
  TransientFaultError`.
- ``corrupt:artifact@curvature`` — the first on-disk read of a
  ``curvature`` artifact first truncates the file (exercising the
  cache's quarantine-and-recompute path).

Omitting ``@key`` matches every key at that site; ``*times`` (default 1)
fires the entry that many times.

Firing state lives in a filesystem ledger (one marker file per firing,
claimed with ``O_CREAT | O_EXCL``), because the processes that observe a
schedule — the parent, forked pool workers, retried workers, resumed
runs — do not share memory.  "Fire once" therefore means once *per
ledger*, across every process of a run; point ``REPRO_FAULTS_DIR`` at a
fresh directory per experiment (it defaults to a schedule-keyed
directory under the artifact cache).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

from repro.robustness.errors import ScenarioConfigError, TransientFaultError
from repro.utils.cache import default_cache_dir

__all__ = [
    "FaultEntry",
    "FaultSchedule",
    "active_schedule",
    "parse_faults",
]

_KINDS = ("crash", "hang", "raise", "corrupt")
_SITES = ("cell", "trial", "artifact", "producer")

#: Default sleep of a ``hang`` fault without an explicit ``=seconds`` —
#: long enough that only the supervisor's timeout ends it.
DEFAULT_HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class FaultEntry:
    """One parsed schedule entry."""

    index: int
    kind: str
    site: str
    key: str = None  # None matches every key at the site
    times: int = 1
    param: float = None

    def matches(self, site, key):
        return self.site == site and (
            self.key is None or self.key == str(key)
        )


def parse_faults(spec):
    """Parse a ``REPRO_FAULTS`` string into :class:`FaultEntry` list.

    Raises :class:`~repro.robustness.errors.ScenarioConfigError` on any
    malformed entry — a chaos run with a typo'd schedule must fail
    loudly, not silently run fault-free.
    """
    entries = []
    for index, raw in enumerate(part for part in spec.split(";") if part.strip()):
        text = raw.strip()
        head, param = text.split("=", 1) if "=" in text else (text, None)
        head, times = head.split("*", 1) if "*" in head else (head, "1")
        head, key = head.split("@", 1) if "@" in head else (head, None)
        if ":" not in head:
            raise ScenarioConfigError(
                f"fault entry {text!r} must look like kind:site[@key][*n][=param]"
            )
        kind, site = (part.strip() for part in head.split(":", 1))
        if kind not in _KINDS:
            raise ScenarioConfigError(
                f"unknown fault kind {kind!r} in {text!r}; known: {_KINDS}"
            )
        if site not in _SITES:
            raise ScenarioConfigError(
                f"unknown fault site {site!r} in {text!r}; known: {_SITES}"
            )
        try:
            times = int(times)
            param = float(param) if param is not None else None
        except ValueError as exc:
            raise ScenarioConfigError(f"bad count/param in fault {text!r}") from exc
        if times < 1:
            raise ScenarioConfigError(f"fault {text!r} must fire >= 1 time")
        entries.append(FaultEntry(
            index=index, kind=kind, site=site,
            key=key.strip() if key is not None else None,
            times=times, param=param,
        ))
    return entries


class FaultSchedule:
    """A parsed schedule plus its cross-process firing ledger."""

    def __init__(self, entries, ledger_dir):
        self.entries = list(entries)
        self.ledger_dir = ledger_dir

    # ------------------------------------------------------------- ledger

    def _claim(self, entry):
        """Atomically claim the next firing slot of one entry.

        Returns True when this call won a slot (< ``entry.times`` fired
        so far across every process sharing the ledger).
        """
        os.makedirs(self.ledger_dir, exist_ok=True)
        for slot in range(entry.times):
            marker = os.path.join(
                self.ledger_dir, f"fired-{entry.index}-{slot}"
            )
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def fired(self):
        """Count of firings recorded in the ledger (for reports/tests)."""
        try:
            names = os.listdir(self.ledger_dir)
        except OSError:
            return 0
        return sum(1 for name in names if name.startswith("fired-"))

    # ------------------------------------------------------------- firing

    def fire(self, site, key):
        """Inject any scheduled crash/hang/raise fault at one site.

        Called at the top of a cell/trial execution (in the worker — or
        the parent, for serial runs) and before a producer runs.  A
        ``crash`` terminates the calling process the way an OOM kill
        would; a ``hang`` sleeps; a ``raise`` throws
        :class:`TransientFaultError`.
        """
        for entry in self.entries:
            if entry.kind == "corrupt" or not entry.matches(site, key):
                continue
            if not self._claim(entry):
                continue
            if entry.kind == "crash":
                os._exit(1)
            if entry.kind == "hang":
                time.sleep(
                    entry.param if entry.param is not None
                    else DEFAULT_HANG_SECONDS
                )
                continue
            raise TransientFaultError(
                f"injected transient fault at {site}@{key}"
            )

    def corrupt_file(self, site, key, path):
        """Corrupt one on-disk artifact if the schedule says so.

        Truncates the file to half its size — reliably unloadable (or
        checksum-failing), exactly like a writer that died mid-flush on
        a filesystem without atomic rename.
        """
        for entry in self.entries:
            if entry.kind != "corrupt" or not entry.matches(site, key):
                continue
            if not self._claim(entry):
                continue
            try:
                size = os.path.getsize(path)
                with open(path, "r+b") as handle:
                    handle.truncate(max(1, size // 2))
            except OSError:
                pass


_CACHED = {}


def active_schedule():
    """The schedule described by ``REPRO_FAULTS``, or None when unset.

    Parsed once per distinct (spec, ledger dir) environment value, so
    hot paths pay a dict lookup.  The ledger directory defaults to a
    spec-keyed directory under the artifact cache (shared by fork
    children and resumed runs, which is the point); override with
    ``REPRO_FAULTS_DIR``.
    """
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    ledger = os.environ.get("REPRO_FAULTS_DIR", "").strip()
    if not ledger:
        digest = hashlib.sha256(spec.encode("utf-8")).hexdigest()[:12]
        ledger = os.path.join(default_cache_dir(), "fault-ledger", digest)
    cache_key = (spec, ledger)
    if cache_key not in _CACHED:
        _CACHED[cache_key] = FaultSchedule(parse_faults(spec), ledger)
    return _CACHED[cache_key]
