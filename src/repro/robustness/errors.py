"""Structured exception taxonomy for fault-tolerant scenario execution.

Failure handling only composes when every layer agrees on one question:
*is this worth retrying?*  A truncated cache artifact is — the producer
can simply run again; a misconfigured scenario is not — retrying would
repeat the same error forever.  Every failure the robustness layer can
observe is expressed as a :class:`ReproError` subclass that answers the
question statically (:data:`RetryableError` vs :data:`FatalError`), so
the supervisor, the cache, and the CLI never pattern-match on message
strings.

The CLI half of the contract is ``exit_code``: each fatal family maps to
a distinct (sysexits-flavored) process exit code, so scripted callers
can tell a usage error from an I/O error from a partially failed grid
without parsing stderr.
"""

from __future__ import annotations

__all__ = [
    "CacheCorruptionError",
    "CacheWriteError",
    "CellExecutionError",
    "CellTimeoutError",
    "FatalError",
    "PartialGridError",
    "ReproError",
    "RetryableError",
    "ScenarioConfigError",
    "TransientFaultError",
    "WorkerCrashError",
    "is_retryable",
]


class ReproError(Exception):
    """Base of the robustness taxonomy.

    Attributes
    ----------
    retryable:
        Whether re-running the failed operation can plausibly succeed.
    exit_code:
        The process exit code the CLI maps this failure family to.
    """

    retryable = False
    exit_code = 70  # EX_SOFTWARE


class RetryableError(ReproError):
    """A transient failure: the operation may succeed if re-run.

    The supervisor retries these (bounded, with exponential backoff)
    before degrading to serial re-execution; the cache retries producers
    that raise them.
    """

    retryable = True
    exit_code = 75  # EX_TEMPFAIL — only reached when retries are exhausted


class FatalError(ReproError):
    """A deterministic failure: re-running would fail identically."""

    retryable = False


class WorkerCrashError(RetryableError):
    """A pool worker died without reporting a result.

    Raised by the supervisor when a worker process exits nonzero (or is
    signal-killed) before delivering its task's value — an OOM kill, a
    segfault in a native extension, or an ``os._exit`` all look like
    this from the parent.  Retryable: the crash may be environmental
    (memory pressure), and a deterministic cell re-executes identically.
    """


class CellTimeoutError(RetryableError):
    """A supervised task exceeded its wall-clock budget and was killed."""


class TransientFaultError(RetryableError):
    """An injected (or genuinely transient) producer/cell exception.

    The fault-injection harness raises exactly this class, so recovery
    paths exercised under injection are the same ones that handle real
    transient failures.
    """


class CacheCorruptionError(RetryableError):
    """An on-disk artifact failed to load or failed its checksum.

    The cache quarantines the file and treats the lookup as a miss, so
    ``get_or_create`` transparently recomputes; this class exists for
    callers that probe ``get`` directly and want to distinguish "never
    existed" from "existed but was rotten".
    """


class CellExecutionError(FatalError):
    """A scenario cell raised a deterministic (non-retryable) exception."""


class ScenarioConfigError(FatalError, ValueError):
    """The requested run is misconfigured (conflicting flags, bad names).

    Also a :class:`ValueError` so pre-taxonomy callers that catch
    ``ValueError`` keep working.
    """

    exit_code = 64  # EX_USAGE


class CacheWriteError(FatalError, OSError):
    """The artifact cache cannot be written (unwritable ``REPRO_CACHE_DIR``).

    Also an :class:`OSError`: it wraps the underlying filesystem error.
    """

    exit_code = 74  # EX_IOERR


class PartialGridError(FatalError):
    """A scenario grid completed, but one or more cells permanently failed.

    The surviving cells' results are intact (and reported); this error
    carries the CLI's "the run is usable but incomplete" exit code.
    """

    exit_code = 75  # EX_TEMPFAIL


def is_retryable(exc):
    """Whether an exception is worth retrying.

    Taxonomy members answer for themselves; anything outside the
    taxonomy is conservatively treated as deterministic (not retryable)
    — transient failures must be *declared* transient to be retried.
    """
    return bool(getattr(exc, "retryable", False))
