"""Supervised process-pool execution: crash, hang, and retry handling.

``multiprocessing.Pool.map`` has exactly one failure mode the parent can
observe: an exception pickled back from a worker.  A worker that is
OOM-killed, segfaults, or hangs takes the whole map — and every
completed sibling's result — with it.  :func:`supervised_map` replaces
it with per-task supervision:

- each task runs in its own forked, daemonic worker process (the
  payload crosses via fork, results come back over a queue);
- a worker that *exits* without reporting (nonzero status, signal kill)
  is detected and its task retried — :class:`~repro.robustness.errors.
  WorkerCrashError`;
- a task that overruns its wall-clock budget (``REPRO_CELL_TIMEOUT``)
  is SIGKILLed and retried — :class:`~repro.robustness.errors.
  CellTimeoutError`;
- retries are bounded (``REPRO_CELL_RETRIES``) with exponential backoff
  (``REPRO_RETRY_BACKOFF`` base), and a task that exhausts them is
  re-executed *serially in the parent* — no pool, no timeout — before
  being declared failed;
- failures never abort the map: surviving tasks complete and the caller
  receives a per-task :class:`TaskReport` alongside the values.

Tasks must be deterministic for retry to be sound — true of every
scenario cell and Monte Carlo trial here (all randomness comes from
named RNG substreams), which is also what makes a recovered run
byte-identical to a fault-free one.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
import warnings
from collections import deque
from dataclasses import dataclass, field

from repro.obs.metrics import get_registry
from repro.obs.trace import TRACER
from repro.robustness.errors import (
    ScenarioConfigError,
    is_retryable,
)

__all__ = [
    "DEFAULT_BACKOFF",
    "DEFAULT_RETRIES",
    "SupervisedResult",
    "TaskReport",
    "has_fork",
    "resolve_backoff",
    "resolve_retries",
    "resolve_timeout",
    "run_with_retry",
    "supervised_map",
]

#: Worker-level retry budget per task (beyond the first attempt).
DEFAULT_RETRIES = 2
#: Base of the exponential retry backoff, in seconds.
DEFAULT_BACKOFF = 0.25
#: Grace period between observing a worker's death and declaring a
#: crash, so a result already in the queue's pipe buffer can land.
_CRASH_GRACE = 0.5


def has_fork():
    """Whether this platform supports the fork start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_timeout(timeout=None):
    """Per-task wall-clock budget: explicit arg, else ``REPRO_CELL_TIMEOUT``.

    Unset, empty, or ``<= 0`` means no timeout.
    """
    if timeout is None:
        raw = os.environ.get("REPRO_CELL_TIMEOUT", "").strip()
        if raw:
            try:
                timeout = float(raw)
            except ValueError as exc:
                raise ScenarioConfigError(
                    f"REPRO_CELL_TIMEOUT must be a number of seconds, got {raw!r}"
                ) from exc
    if timeout is not None and timeout <= 0:
        timeout = None
    return timeout


def resolve_retries(retries=None):
    """Retry budget per task: explicit arg, else ``REPRO_CELL_RETRIES``."""
    if retries is None:
        raw = os.environ.get("REPRO_CELL_RETRIES", "").strip()
        try:
            retries = int(raw) if raw else DEFAULT_RETRIES
        except ValueError as exc:
            raise ScenarioConfigError(
                f"REPRO_CELL_RETRIES must be an integer, got {raw!r}"
            ) from exc
    if retries < 0:
        raise ScenarioConfigError("retries must be >= 0")
    return int(retries)


def resolve_backoff(backoff=None):
    """Backoff base seconds: explicit arg, else ``REPRO_RETRY_BACKOFF``."""
    if backoff is None:
        raw = os.environ.get("REPRO_RETRY_BACKOFF", "").strip()
        try:
            backoff = float(raw) if raw else DEFAULT_BACKOFF
        except ValueError as exc:
            raise ScenarioConfigError(
                f"REPRO_RETRY_BACKOFF must be a number of seconds, got {raw!r}"
            ) from exc
    return max(0.0, float(backoff))


@dataclass
class TaskReport:
    """Supervision outcome of one task.

    ``status`` is one of ``ok`` (first attempt succeeded), ``recovered``
    (a retry succeeded in a worker), ``degraded`` (the serial parent
    fallback succeeded), or ``failed``; ``failures`` records every
    failed attempt's error string in order.
    """

    item: object
    label: str = ""
    status: str = "pending"
    attempts: int = 0
    duration: float = 0.0
    error: str = None
    failures: list = field(default_factory=list)

    def to_json(self):
        return {
            "item": repr(self.item),
            "label": self.label,
            "status": self.status,
            "attempts": self.attempts,
            "duration": round(self.duration, 3),
            "error": self.error,
            "failures": list(self.failures),
        }


@dataclass
class SupervisedResult:
    """Values and per-task reports of one :func:`supervised_map`."""

    values: dict = field(default_factory=dict)  # item -> value (successes)
    reports: dict = field(default_factory=dict)  # item -> TaskReport

    @property
    def failed(self):
        """Items whose task permanently failed, in report order."""
        return [
            item for item, report in self.reports.items()
            if report.status == "failed"
        ]


def _describe(exc):
    return f"{type(exc).__name__}: {exc}"


def _supervisor_metrics():
    """The supervisor's counter families in the global registry."""
    registry = get_registry()
    return {
        "tasks": registry.counter(
            "repro_supervisor_tasks_total",
            "Supervised tasks by final status.",
            labels=("status",),
        ),
        "retries": registry.counter(
            "repro_supervisor_retries_total",
            "Task retries scheduled after a failed attempt.",
        ),
        "crashes": registry.counter(
            "repro_supervisor_crashes_total",
            "Workers that died before reporting a result.",
        ),
        "timeouts": registry.counter(
            "repro_supervisor_timeouts_total",
            "Workers killed for exceeding the wall-clock budget.",
        ),
    }


def _count_statuses(metrics, result):
    for report in result.reports.values():
        metrics["tasks"].labels(status=report.status).inc()


def run_with_retry(fn, retries=None, backoff=None, failures=None):
    """Run ``fn()`` with the supervisor's retry policy, in-process.

    The serial counterpart of a supervised worker: retryable exceptions
    (see :func:`~repro.robustness.errors.is_retryable`) are retried up
    to ``retries`` times with exponential backoff; anything else — and
    the final retryable failure — propagates.  Returns ``(value,
    attempts)``; ``failures`` (a list, when given) collects the error
    string of every failed attempt.
    """
    retries = resolve_retries(retries)
    backoff = resolve_backoff(backoff)
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn(), attempt
        except Exception as exc:
            if failures is not None:
                failures.append(_describe(exc))
            if not is_retryable(exc) or attempt > retries:
                raise
            time.sleep(backoff * (2 ** (attempt - 1)))


def _child_run(fn, item, out_queue):
    """Worker body: report the value, or the error and its retryability.

    When tracing is enabled the worker also ships the spans it recorded:
    the fork copied the parent's span buffer *and* its open-span stack,
    so the child drops the inherited context (its spans must root at the
    task, not under a span the parent closes independently) and sends
    only spans recorded past the fork point.  The parent re-attaches
    them under the span that was open when the map was entered.
    """
    tracing = TRACER.enabled
    if tracing:
        TRACER.reset_context()
        baseline = TRACER.mark()
    try:
        value = fn(item)
    except BaseException as exc:
        spans = TRACER.take_since(baseline) if tracing else None
        out_queue.put((item, "error", _describe(exc), is_retryable(exc), spans))
    else:
        spans = TRACER.take_since(baseline) if tracing else None
        out_queue.put((item, "ok", value, spans))


def supervised_map(fn, items, workers, timeout=None, retries=None,
                   backoff=None, labels=None, serial_fallback=True,
                   on_result=None):
    """Map ``fn`` over ``items`` under crash/timeout/retry supervision.

    Parameters
    ----------
    fn:
        ``item -> value``.  Crosses to workers via fork (never pickled),
        so closures over models are fine; values cross back via a queue
        and must pickle.  Must be deterministic per item — a retried
        task re-executes from scratch.
    items:
        Hashable task identities (typically grid indices), in order.
    workers:
        Maximum concurrently running worker processes.
    timeout / retries / backoff:
        Supervision knobs; default to ``REPRO_CELL_TIMEOUT`` /
        ``REPRO_CELL_RETRIES`` / ``REPRO_RETRY_BACKOFF``.
    labels:
        Optional ``item -> str`` mapping for reports.
    serial_fallback:
        Re-execute a task that exhausted its worker retries serially in
        the parent (unsupervised: no timeout can apply) before declaring
        it failed.
    on_result:
        Optional ``(item, value)`` callback, invoked in the parent as
        each task completes — the checkpoint hook.

    Returns
    -------
    SupervisedResult
        ``values`` holds every successful item; failed items are absent
        from ``values`` and carry ``status == "failed"`` in ``reports``.
    """
    items = list(items)
    workers = max(1, int(workers))
    timeout = resolve_timeout(timeout)
    retries = resolve_retries(retries)
    backoff = resolve_backoff(backoff)
    labels = labels or {}
    result = SupervisedResult(
        reports={
            item: TaskReport(item=item, label=str(labels.get(item, item)))
            for item in items
        },
    )
    metrics = _supervisor_metrics()
    # Worker spans re-attach under the span open at map entry (the cell
    # span in the orchestrator) so traces nest across the fork boundary.
    adopt_parent = TRACER.current_span_id() if TRACER.enabled else None

    def adopt_spans(spans):
        if TRACER.enabled and spans:
            TRACER.adopt(spans, parent=adopt_parent)

    if not has_fork():
        # The payload crosses to workers via fork (closures over models
        # never pickle), so a fork-less platform cannot run the pool at
        # all: degrade to the serial parent loop with the same retry
        # policy rather than crash in get_context("fork").
        warnings.warn(
            "supervised_map needs the fork start method; running "
            f"{len(items)} task(s) serially in the parent",
            RuntimeWarning,
            stacklevel=2,
        )
        for item in items:
            report = result.reports[item]
            started = time.monotonic()
            try:
                value, attempts = run_with_retry(
                    lambda item=item: fn(item),
                    retries=retries,
                    backoff=backoff,
                    failures=report.failures,
                )
            except Exception as exc:
                report.attempts = max(1, len(report.failures))
                report.status = "failed"
                report.error = _describe(exc)
            else:
                report.attempts = attempts
                report.status = "ok" if attempts == 1 else "recovered"
                result.values[item] = value
                if on_result is not None:
                    on_result(item, value)
            if report.attempts > 1:
                metrics["retries"].inc(report.attempts - 1)
            report.duration = time.monotonic() - started
        _count_statuses(metrics, result)
        return result
    ctx = multiprocessing.get_context("fork")
    out_queue = ctx.Queue()
    pending = deque((item, 1, 0.0) for item in items)  # (item, attempt, not_before)
    running = {}  # item -> [proc, deadline, attempt, started, dead_since]
    degrade = []  # retry budget exhausted -> serial parent fallback

    def succeed(item, value, attempt, started):
        report = result.reports[item]
        report.attempts = attempt
        report.status = "ok" if attempt == 1 else "recovered"
        report.duration = time.monotonic() - started
        result.values[item] = value
        if on_result is not None:
            on_result(item, value)

    def fail_attempt(item, attempt, error, retryable):
        report = result.reports[item]
        report.attempts = attempt
        report.failures.append(error)
        if retryable and attempt <= retries:
            metrics["retries"].inc()
            delay = backoff * (2 ** (attempt - 1))
            pending.append((item, attempt + 1, time.monotonic() + delay))
        elif retryable and serial_fallback:
            degrade.append(item)
        else:
            report.status = "failed"
            report.error = error

    try:
        while pending or running:
            now = time.monotonic()
            for _ in range(len(pending)):
                if len(running) >= workers:
                    break
                if pending[0][2] > now:
                    pending.rotate(-1)
                    continue
                item, attempt, _ = pending.popleft()
                proc = ctx.Process(
                    target=_child_run, args=(fn, item, out_queue), daemon=True
                )
                started = time.monotonic()
                proc.start()
                deadline = None if timeout is None else started + timeout
                running[item] = [proc, deadline, attempt, started, None]

            try:
                message = out_queue.get(timeout=0.05)
            except queue_mod.Empty:
                message = None
            if message is not None:
                item = message[0]
                entry = running.pop(item, None)
                if entry is None:
                    continue  # stale report from a just-killed worker
                proc, _, attempt, started, _ = entry
                proc.join()
                if message[1] == "ok":
                    adopt_spans(message[3] if len(message) > 3 else None)
                    succeed(item, message[2], attempt, started)
                else:
                    adopt_spans(message[4] if len(message) > 4 else None)
                    fail_attempt(item, attempt, message[2], message[3])
                continue  # drain eagerly before liveness checks

            now = time.monotonic()
            for item in list(running):
                proc, deadline, attempt, started, dead_since = running[item]
                if deadline is not None and proc.is_alive() and now >= deadline:
                    proc.kill()
                    proc.join()
                    running.pop(item)
                    metrics["timeouts"].inc()
                    fail_attempt(
                        item, attempt,
                        f"CellTimeoutError: task exceeded {timeout:g}s "
                        f"wall-clock budget and was killed",
                        True,
                    )
                elif not proc.is_alive():
                    if dead_since is None:
                        running[item][4] = now
                    elif now - dead_since > _CRASH_GRACE:
                        # Dead, and the grace window for an in-flight
                        # result has passed: this worker crashed.
                        proc.join()
                        running.pop(item)
                        code = proc.exitcode
                        metrics["crashes"].inc()
                        fail_attempt(
                            item, attempt,
                            "WorkerCrashError: worker exited with "
                            f"{'signal ' + str(-code) if code and code < 0 else f'status {code}'}"
                            " before reporting a result",
                            True,
                        )
    finally:
        for proc, *_ in running.values():
            if proc.is_alive():
                proc.kill()
            proc.join()
        out_queue.close()

    for item in degrade:
        report = result.reports[item]
        started = time.monotonic()
        report.attempts += 1
        try:
            value = fn(item)
        except Exception as exc:
            report.failures.append(_describe(exc))
            report.status = "failed"
            report.error = _describe(exc)
        else:
            report.status = "degraded"
            report.duration = time.monotonic() - started
            result.values[item] = value
            if on_result is not None:
                on_result(item, value)
    _count_statuses(metrics, result)
    return result
