"""Checkpoint serialization: sweep outcomes as cache artifacts.

A scenario grid's unit of loss is one :class:`~repro.experiments.
sweeps.SweepOutcome` — minutes of Monte Carlo work at real scales.
These helpers round-trip an outcome through the ``name -> array`` dict
shape the :class:`~repro.plan.cache.PlanArtifactCache` stores, so the
orchestrator can persist each cell the moment it completes and a
resumed run can skip it.

The round trip is *exact*: accuracy/NWC arrays are stored as the
float64 they were computed in, and scalar metadata rides in a canonical
JSON blob (Python's ``json`` emits shortest-round-trip float literals),
so a CSV rendered from resumed cells is byte-identical to one rendered
from a straight-through run — the property the resume tests pin.

The same codec serializes work-rectangle *tiles* (partial outcomes
over a ``trial_range`` window, where ``achieved_nwc`` holds raw
per-trial rows instead of the across-trial mean): the arrays are
row-count agnostic.  :func:`merge_outcomes` reassembles an ordered set
of tiles into the cell's full :class:`~repro.experiments.sweeps.
SweepOutcome` — bit for bit, because stacking contiguous row slices
reproduces the full arrays and the reductions (the NWC mean, the wear
statistics via :func:`merge_wear`'s integer aggregates) repeat the
unsplit run's exact float operations.
"""

from __future__ import annotations

import json

import numpy as np

__all__ = ["decode_outcome", "encode_outcome", "merge_outcomes", "merge_wear"]


def _plain(value):
    """Recursively strip numpy scalar types for canonical JSON."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def encode_outcome(outcome):
    """A :class:`SweepOutcome` as a cacheable ``name -> array`` dict."""
    meta = _plain({
        "workload": outcome.workload,
        "sigma": outcome.sigma,
        "clean_accuracy": outcome.clean_accuracy,
        "nwc_targets": list(outcome.nwc_targets),
        "technology": outcome.technology,
        "read_time": outcome.read_time,
        "wear": outcome.wear,
        "methods": list(outcome.curves),
    })
    blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    arrays = {"meta": np.frombuffer(blob, dtype=np.uint8).copy()}
    for method, curve in outcome.curves.items():
        arrays[f"acc__{method}"] = np.asarray(curve.accuracy_runs)
        arrays[f"nwc__{method}"] = np.asarray(curve.achieved_nwc)
    return arrays


def decode_outcome(arrays):
    """Rebuild the :class:`SweepOutcome` stored by :func:`encode_outcome`.

    Curves come back in their original method order (recorded in the
    metadata), which is what keeps rendered tables and CSV row order
    stable across resume.
    """
    from repro.experiments.sweeps import MethodCurve, SweepOutcome

    meta = json.loads(bytes(bytearray(arrays["meta"])).decode("utf-8"))
    outcome = SweepOutcome(
        workload=meta["workload"],
        sigma=meta["sigma"],
        clean_accuracy=meta["clean_accuracy"],
        nwc_targets=tuple(meta["nwc_targets"]),
        technology=meta["technology"],
        read_time=meta["read_time"],
        wear=meta["wear"],
    )
    for method in meta["methods"]:
        outcome.curves[method] = MethodCurve(
            method=method,
            nwc_targets=tuple(meta["nwc_targets"]),
            accuracy_runs=np.asarray(arrays[f"acc__{method}"]),
            achieved_nwc=np.asarray(arrays[f"nwc__{method}"]),
        )
    return outcome


def merge_wear(summaries):
    """Merge per-tile endurance summaries into the full-run summary.

    Each tile's accelerator observes only its own trials, so its
    summary's raw integer aggregates (``devices``, ``verify_cycles``,
    ``max_verify_cycles`` — see :meth:`~repro.cim.devices.endurance.
    EnduranceObserver.summary`) cover a disjoint trial subset; summing
    (resp. maxing) them recovers the unsplit run's aggregates exactly,
    and the derived float statistics repeat the observer's own
    operations on those integers — so the merged dict is bitwise what a
    serial run would have reported.
    """
    summaries = list(summaries)
    if not summaries or summaries[0] is None:
        return None
    devices = sum(int(s["devices"]) for s in summaries)
    verify_cycles = sum(int(s["verify_cycles"]) for s in summaries)
    worst_cycles = max(int(s["max_verify_cycles"]) for s in summaries)
    initial_writes = int(summaries[0]["initial_writes"])
    endurance = summaries[0]["endurance_cycles"]
    worst = worst_cycles + initial_writes
    mean_pulses = verify_cycles / devices + initial_writes
    return {
        "endurance_cycles": endurance,
        "total_pulses": verify_cycles + devices * initial_writes,
        "mean_pulses_per_device": mean_pulses,
        "max_pulses_per_device": worst,
        "deployments_to_failure": endurance / max(worst, 1),
        "consumed_fraction": float(np.clip(mean_pulses / endurance, 0.0, 1.0)),
        "devices": devices,
        "verify_cycles": verify_cycles,
        "max_verify_cycles": worst_cycles,
        "initial_writes": initial_writes,
    }


def merge_outcomes(parts):
    """Reassemble ordered trial-window tiles into one full outcome.

    ``parts`` are the partial :class:`~repro.experiments.sweeps.
    SweepOutcome`\\ s of one cell's tiles, in trial order, jointly
    covering ``[0, mc_runs)`` (each produced by ``run_method_sweep(...,
    trial_range=...)``, so ``achieved_nwc`` holds raw per-trial rows).
    Stacking the rows reproduces the unsplit run's full arrays, the
    across-trial NWC mean is taken over the stacked array exactly as
    the unsplit run takes it, and wear merges through integer
    aggregates — the result is bitwise-identical to a serial,
    untiled sweep.
    """
    from repro.experiments.sweeps import MethodCurve, SweepOutcome

    parts = list(parts)
    first = parts[0]
    outcome = SweepOutcome(
        workload=first.workload,
        sigma=first.sigma,
        clean_accuracy=first.clean_accuracy,
        nwc_targets=first.nwc_targets,
        technology=first.technology,
        read_time=first.read_time,
        wear=merge_wear([p.wear for p in parts]),
    )
    for method in first.curves:
        accuracy_runs = np.vstack(
            [np.atleast_2d(p.curves[method].accuracy_runs) for p in parts]
        )
        nwc_rows = np.vstack(
            [np.atleast_2d(p.curves[method].achieved_nwc) for p in parts]
        )
        outcome.curves[method] = MethodCurve(
            method=method,
            nwc_targets=first.nwc_targets,
            accuracy_runs=accuracy_runs,
            achieved_nwc=nwc_rows.mean(axis=0),
        )
    return outcome
