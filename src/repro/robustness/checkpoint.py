"""Checkpoint serialization: sweep outcomes as cache artifacts.

A scenario grid's unit of loss is one :class:`~repro.experiments.
sweeps.SweepOutcome` — minutes of Monte Carlo work at real scales.
These helpers round-trip an outcome through the ``name -> array`` dict
shape the :class:`~repro.plan.cache.PlanArtifactCache` stores, so the
orchestrator can persist each cell the moment it completes and a
resumed run can skip it.

The round trip is *exact*: accuracy/NWC arrays are stored as the
float64 they were computed in, and scalar metadata rides in a canonical
JSON blob (Python's ``json`` emits shortest-round-trip float literals),
so a CSV rendered from resumed cells is byte-identical to one rendered
from a straight-through run — the property the resume tests pin.
"""

from __future__ import annotations

import json

import numpy as np

__all__ = ["decode_outcome", "encode_outcome"]


def _plain(value):
    """Recursively strip numpy scalar types for canonical JSON."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def encode_outcome(outcome):
    """A :class:`SweepOutcome` as a cacheable ``name -> array`` dict."""
    meta = _plain({
        "workload": outcome.workload,
        "sigma": outcome.sigma,
        "clean_accuracy": outcome.clean_accuracy,
        "nwc_targets": list(outcome.nwc_targets),
        "technology": outcome.technology,
        "read_time": outcome.read_time,
        "wear": outcome.wear,
        "methods": list(outcome.curves),
    })
    blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    arrays = {"meta": np.frombuffer(blob, dtype=np.uint8).copy()}
    for method, curve in outcome.curves.items():
        arrays[f"acc__{method}"] = np.asarray(curve.accuracy_runs)
        arrays[f"nwc__{method}"] = np.asarray(curve.achieved_nwc)
    return arrays


def decode_outcome(arrays):
    """Rebuild the :class:`SweepOutcome` stored by :func:`encode_outcome`.

    Curves come back in their original method order (recorded in the
    metadata), which is what keeps rendered tables and CSV row order
    stable across resume.
    """
    from repro.experiments.sweeps import MethodCurve, SweepOutcome

    meta = json.loads(bytes(bytearray(arrays["meta"])).decode("utf-8"))
    outcome = SweepOutcome(
        workload=meta["workload"],
        sigma=meta["sigma"],
        clean_accuracy=meta["clean_accuracy"],
        nwc_targets=tuple(meta["nwc_targets"]),
        technology=meta["technology"],
        read_time=meta["read_time"],
        wear=meta["wear"],
    )
    for method in meta["methods"]:
        outcome.curves[method] = MethodCurve(
            method=method,
            nwc_targets=tuple(meta["nwc_targets"]),
            accuracy_runs=np.asarray(arrays[f"acc__{method}"]),
            achieved_nwc=np.asarray(arrays[f"nwc__{method}"]),
        )
    return outcome
