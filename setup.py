"""Setup shim.

The offline execution environment lacks the ``wheel`` package, which the
PEP 517 editable-install path requires.  This shim lets
``pip install -e . --no-build-isolation`` (and ``python setup.py develop``)
work with the classic setuptools code path; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
