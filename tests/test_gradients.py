"""Gradient correctness: every layer's backward vs central finite differences.

These tests pin down the substrate the whole reproduction rests on.  Each
builds a small float64 model containing the layer under test, computes
analytic gradients, and compares against central differences on both the
parameters and the input.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.models import BasicBlock
from repro.nn.module import Sequential

from .helpers import analytic_grads, fd_gradient, to_float64

ATOL = 1e-7
RTOL = 1e-5


def _check_param_grads(model, loss, x, y):
    analytic_grads(model, loss, x, y)
    for name, param in model.named_parameters():
        got = param.grad.copy()
        want = fd_gradient(model, loss, x, y, param)
        np.testing.assert_allclose(
            got, want, atol=ATOL, rtol=RTOL, err_msg=f"grad mismatch for {name}"
        )


def _check_input_grad(model, loss, x, y, eps=1e-6):
    analytic_grads(model, loss, x, y)
    # Re-run forward/backward to obtain the input gradient.
    model.zero_grad()
    loss(model(x), y)
    got = model.backward(loss.backward())
    want = np.zeros_like(x)
    flat = x.reshape(-1)
    want_flat = want.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = loss(model(x), y)
        flat[i] = orig - eps
        f_minus = loss(model(x), y)
        flat[i] = orig
        want_flat[i] = (f_plus - f_minus) / (2 * eps)
    np.testing.assert_allclose(got, want, atol=1e-6, rtol=1e-4)


def test_linear_grads(rng):
    model = to_float64(Sequential(Linear(7, 5, rng=rng.child("l"))))
    x = rng.child("x").normal(size=(4, 7))
    y = rng.child("y").integers(0, 5, size=4)
    _check_param_grads(model, CrossEntropyLoss(), x, y)


def test_linear_input_grad(rng):
    model = to_float64(Sequential(Linear(6, 4, rng=rng.child("l"))))
    x = rng.child("x").normal(size=(3, 6))
    y = rng.child("y").integers(0, 4, size=3)
    _check_input_grad(model, CrossEntropyLoss(), x, y)


def test_linear_no_bias_grads(rng):
    model = to_float64(Sequential(Linear(5, 3, bias=False, rng=rng.child("l"))))
    x = rng.child("x").normal(size=(4, 5))
    y = rng.child("y").integers(0, 3, size=4)
    _check_param_grads(model, CrossEntropyLoss(), x, y)


@pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
def test_conv_grads(rng, stride, padding):
    model = to_float64(
        Sequential(
            Conv2d(2, 3, 3, stride=stride, padding=padding, rng=rng.child("c")),
            Flatten(),
        )
    )
    x = rng.child("x").normal(size=(2, 2, 6, 6))
    out = model(x)
    y = rng.child("y").integers(0, out.shape[1], size=2)
    _check_param_grads(model, CrossEntropyLoss(), x, y)


def test_conv_input_grad(rng):
    model = to_float64(
        Sequential(Conv2d(1, 2, 3, padding=1, rng=rng.child("c")), Flatten())
    )
    x = rng.child("x").normal(size=(2, 1, 5, 5))
    y = rng.child("y").integers(0, 2 * 25, size=2)
    _check_input_grad(model, CrossEntropyLoss(), x, y)


@pytest.mark.parametrize("act_cls", [ReLU, LeakyReLU, Tanh, Sigmoid])
def test_activation_grads(rng, act_cls):
    model = to_float64(
        Sequential(
            Linear(6, 8, rng=rng.child("l1")),
            act_cls(),
            Linear(8, 4, rng=rng.child("l2")),
        )
    )
    x = rng.child("x").normal(size=(5, 6))
    y = rng.child("y").integers(0, 4, size=5)
    _check_param_grads(model, CrossEntropyLoss(), x, y)


@pytest.mark.parametrize("pool_cls", [MaxPool2d, AvgPool2d])
def test_pooling_grads(rng, pool_cls):
    model = to_float64(
        Sequential(
            Conv2d(1, 3, 3, padding=1, rng=rng.child("c")),
            pool_cls(2),
            Flatten(),
        )
    )
    x = rng.child("x").normal(size=(2, 1, 6, 6))
    out = model(x)
    y = rng.child("y").integers(0, out.shape[1], size=2)
    _check_param_grads(model, CrossEntropyLoss(), x, y)
    _check_input_grad(model, CrossEntropyLoss(), x, y)


def test_global_avg_pool_grads(rng):
    model = to_float64(
        Sequential(
            Conv2d(1, 4, 3, padding=1, rng=rng.child("c")),
            GlobalAvgPool2d(),
            Linear(4, 3, rng=rng.child("l")),
        )
    )
    x = rng.child("x").normal(size=(3, 1, 5, 5))
    y = rng.child("y").integers(0, 3, size=3)
    _check_param_grads(model, CrossEntropyLoss(), x, y)


def test_batchnorm2d_train_grads(rng):
    model = to_float64(
        Sequential(
            Conv2d(2, 3, 3, padding=1, rng=rng.child("c")),
            BatchNorm2d(3),
            Flatten(),
        )
    )
    model.train()
    x = rng.child("x").normal(size=(4, 2, 4, 4))
    out = model(x)
    y = rng.child("y").integers(0, out.shape[1], size=4)
    _check_param_grads(model, CrossEntropyLoss(), x, y)
    _check_input_grad(model, CrossEntropyLoss(), x, y)


def test_batchnorm2d_eval_grads(rng):
    bn = BatchNorm2d(3)
    model = to_float64(
        Sequential(Conv2d(2, 3, 3, padding=1, rng=rng.child("c")), bn, Flatten())
    )
    # Populate running statistics, then freeze.
    model.train()
    warm = rng.child("warm").normal(size=(8, 2, 4, 4))
    model(warm)
    model.eval()
    bn.running_var = np.abs(bn.running_var) + 0.5  # keep well-conditioned
    x = rng.child("x").normal(size=(4, 2, 4, 4))
    out = model(x)
    y = rng.child("y").integers(0, out.shape[1], size=4)
    _check_param_grads(model, CrossEntropyLoss(), x, y)
    _check_input_grad(model, CrossEntropyLoss(), x, y)


def test_batchnorm1d_train_grads(rng):
    model = to_float64(
        Sequential(Linear(5, 6, rng=rng.child("l")), BatchNorm1d(6))
    )
    model.train()
    x = rng.child("x").normal(size=(6, 5))
    y = rng.child("y").integers(0, 6, size=6)
    _check_param_grads(model, CrossEntropyLoss(), x, y)


def test_basic_block_grads(rng):
    block = BasicBlock(2, 3, stride=2, rng=rng.child("blk"))
    model = to_float64(Sequential(block, Flatten()))
    model.train()
    x = rng.child("x").normal(size=(3, 2, 6, 6))
    out = model(x)
    y = rng.child("y").integers(0, out.shape[1], size=3)
    _check_param_grads(model, CrossEntropyLoss(), x, y)
    _check_input_grad(model, CrossEntropyLoss(), x, y)


def test_identity_shortcut_block_grads(rng):
    block = BasicBlock(3, 3, stride=1, rng=rng.child("blk"))
    model = to_float64(Sequential(block, Flatten()))
    model.train()
    x = rng.child("x").normal(size=(2, 3, 5, 5))
    out = model(x)
    y = rng.child("y").integers(0, out.shape[1], size=2)
    _check_param_grads(model, CrossEntropyLoss(), x, y)


def test_mse_loss_grads(rng):
    model = to_float64(Sequential(Linear(4, 3, rng=rng.child("l"))))
    x = rng.child("x").normal(size=(5, 4))
    y = rng.child("y").normal(size=(5, 3))
    loss = MSELoss()
    analytic_grads(model, loss, x, y)
    for name, param in model.named_parameters():
        got = param.grad.copy()
        want = fd_gradient(model, loss, x, y, param)
        np.testing.assert_allclose(
            got, want, atol=ATOL, rtol=RTOL, err_msg=f"grad mismatch for {name}"
        )


def test_deep_stack_grads(rng):
    """A LeNet-shaped miniature: conv-relu-pool-conv-relu-pool-fc-relu-fc."""
    model = to_float64(
        Sequential(
            Conv2d(1, 2, 3, padding=1, rng=rng.child("c1")),
            ReLU(),
            MaxPool2d(2),
            Conv2d(2, 3, 3, rng=rng.child("c2")),
            ReLU(),
            Flatten(),
            Linear(3 * 4 * 4, 8, rng=rng.child("f1")),
            ReLU(),
            Linear(8, 4, rng=rng.child("f2")),
        )
    )
    x = rng.child("x").normal(size=(2, 1, 12, 12))
    y = rng.child("y").integers(0, 4, size=2)
    _check_param_grads(model, CrossEntropyLoss(), x, y)
