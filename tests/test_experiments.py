"""Experiment drivers: presets, zoo caching, sweep machinery (smoke scale)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.metrics import DEFAULT_NWC_TARGETS
from repro.experiments.config import SCALES, SMOKE, get_scale
from repro.experiments.model_zoo import build_data, build_model, load_workload
from repro.experiments.reporting import render_ablation, save_sweep_csv
from repro.experiments.sweeps import run_method_sweep
from repro.experiments.table1 import render_table1
from repro.utils.rng import RngStream


def test_get_scale_resolution(monkeypatch):
    assert get_scale("smoke").name == "smoke"
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    assert get_scale().name == "smoke"
    with pytest.raises(KeyError, match="unknown scale"):
        get_scale("huge")


def test_presets_cover_all_workloads():
    keys = {"lenet-digits", "convnet-cifar", "resnet18-cifar", "resnet18-tiny"}
    for preset in SCALES.values():
        assert set(preset.workloads) == keys
    with pytest.raises(KeyError, match="unknown workload"):
        SMOKE.workload("alexnet")


def test_build_data_and_model_dispatch():
    spec = SMOKE.workload("lenet-digits")
    data = build_data(spec, RngStream(1).child("d"))
    assert data.train_x.shape[0] == spec.n_train
    model = build_model(spec, RngStream(1).child("m"))
    assert model.num_parameters() > 0


def test_zoo_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    spec = SMOKE.workload("lenet-digits")
    first = load_workload(spec)
    second = load_workload(spec)  # hits cache
    assert second.clean_accuracy == pytest.approx(first.clean_accuracy)
    state_a = first.model.state_dict()
    state_b = second.model.state_dict()
    for name in state_a:
        np.testing.assert_array_equal(state_a[name], state_b[name])


@pytest.fixture(scope="module")
def smoke_zoo():
    return load_workload(SMOKE.workload("lenet-digits"))


def test_method_sweep_shapes_and_endpoints(smoke_zoo):
    targets = (0.0, 0.2, 1.0)
    outcome = run_method_sweep(
        smoke_zoo, sigma=0.15, nwc_targets=targets, mc_runs=2,
        rng=RngStream(3).child("sweep"), eval_samples=120, sense_samples=128,
        methods=("swim", "random"),
    )
    assert set(outcome.curves) == {"swim", "random"}
    for curve in outcome.curves.values():
        assert curve.accuracy_runs.shape == (2, 3)
        assert curve.achieved_nwc[0] == 0.0
        assert curve.achieved_nwc[-1] == pytest.approx(1.0)
        assert np.all((0 <= curve.accuracy_runs) & (curve.accuracy_runs <= 1))
    # Same noise draw at NWC=1.0 -> identical accuracy across methods.
    np.testing.assert_allclose(
        outcome.curve("swim").accuracy_runs[:, -1],
        outcome.curve("random").accuracy_runs[:, -1],
    )


def test_method_sweep_insitu_row(smoke_zoo):
    outcome = run_method_sweep(
        smoke_zoo, sigma=0.15, nwc_targets=(0.0, 0.3), mc_runs=1,
        rng=RngStream(4).child("sweep"), eval_samples=100, sense_samples=128,
        methods=("insitu",), insitu_lr=0.01,
    )
    curve = outcome.curve("insitu")
    assert curve.accuracy_runs.shape == (1, 2)
    assert curve.achieved_nwc[1] > 0


def test_sweep_csv_round_trip(smoke_zoo, tmp_path):
    outcome = run_method_sweep(
        smoke_zoo, sigma=0.1, nwc_targets=(0.0, 1.0), mc_runs=1,
        rng=RngStream(5).child("sweep"), eval_samples=80, sense_samples=128,
        methods=("swim",),
    )
    path = save_sweep_csv(outcome, os.path.join(tmp_path, "out.csv"))
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().strip().splitlines()
    assert lines[0].startswith("workload,sigma,method")
    assert len(lines) == 1 + 2  # header + 2 targets x 1 method


def test_render_table1_layout(smoke_zoo):
    from repro.experiments.table1 import Table1Result

    outcome = run_method_sweep(
        smoke_zoo, sigma=0.1, nwc_targets=DEFAULT_NWC_TARGETS, mc_runs=1,
        rng=RngStream(6).child("sweep"), eval_samples=80, sense_samples=128,
        methods=("swim", "magnitude"),
    )
    result = Table1Result(
        workload=smoke_zoo.spec.key,
        clean_accuracy=smoke_zoo.clean_accuracy,
        nwc_targets=DEFAULT_NWC_TARGETS,
        outcomes={0.1: outcome},
    )
    text = render_table1(result)
    assert "SWIM" in text and "Magnitude" in text
    assert "NWC=0.1" in text
    markdown = render_table1(result, as_markdown=True)
    assert markdown.count("|") > 10


def test_render_ablation_formats():
    from repro.experiments.ablations import AblationRow

    rows = [AblationRow(label="a", metrics={"x": 1.0, "y": 2}),
            AblationRow(label="b", metrics={"x": 3.5, "y": 4})]
    text = render_ablation(rows, title="demo")
    assert "demo" in text and "3.5" in text
    with pytest.raises(ValueError):
        render_ablation([], title="none")


@pytest.mark.slow
def test_retention_accepts_unregistered_technology():
    """A custom DeviceTechnology instance runs and renders end to end."""
    from repro.cim import DeviceTechnology
    from repro.experiments.retention import render_retention, run_retention

    custom = DeviceTechnology(
        name="lab-pcm", drift_nu=0.03, drift_sigma_nu=0.005
    )
    result = run_retention(
        SMOKE, technologies=(custom,), times=(1.0, 3.6e3), methods=("swim",)
    )
    assert result.technologies == ("lab-pcm",)
    assert set(result.outcomes) == {("lab-pcm", 1.0), ("lab-pcm", 3.6e3)}
    text = render_retention(result)
    assert "Retention — lab-pcm" in text


def test_runner_cli_rejects_unknown():
    from repro.experiments.runner import main

    with pytest.raises(SystemExit):
        main(["definitely-not-an-experiment"])
