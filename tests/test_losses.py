"""Loss functions: values, gradients, and curvature seeds vs finite diffs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.losses import CrossEntropyLoss, MSELoss


def _fd_on_logits(loss_fn, logits, targets, eps=1e-6):
    """Central-difference gradient and diagonal Hessian w.r.t. logits."""
    grad = np.zeros_like(logits)
    curv = np.zeros_like(logits)
    base = loss_fn(logits, targets)
    flat = logits.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = loss_fn(logits, targets)
        flat[i] = orig - eps
        f_minus = loss_fn(logits, targets)
        flat[i] = orig
        grad.reshape(-1)[i] = (f_plus - f_minus) / (2 * eps)
        curv.reshape(-1)[i] = (f_plus - 2 * base + f_minus) / (eps * eps)
    return grad, curv


def test_cross_entropy_value_matches_manual(rng):
    logits = rng.child("l").normal(size=(4, 3))
    targets = np.array([0, 2, 1, 0])
    loss = CrossEntropyLoss()
    value = loss(logits, targets)
    probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
    want = -np.log(probs[np.arange(4), targets]).mean()
    assert value == pytest.approx(want, rel=1e-10)


def test_cross_entropy_gradient_matches_fd(rng):
    logits = rng.child("l").normal(size=(5, 4))
    targets = rng.child("t").integers(0, 4, size=5)
    loss = CrossEntropyLoss()
    loss(logits, targets)
    got = loss.backward()
    want, _ = _fd_on_logits(CrossEntropyLoss(), logits, targets, eps=1e-6)
    np.testing.assert_allclose(got, want, atol=1e-8)


def test_cross_entropy_second_matches_fd(rng):
    """The corrected Eq. 11: d2F/dO^2 = p (1 - p) / N."""
    logits = rng.child("l").normal(size=(3, 5))
    targets = rng.child("t").integers(0, 5, size=3)
    loss = CrossEntropyLoss()
    loss(logits, targets)
    got = loss.second()
    _, want = _fd_on_logits(CrossEntropyLoss(), logits, targets, eps=1e-4)
    np.testing.assert_allclose(got, want, atol=1e-6, rtol=1e-4)


def test_cross_entropy_second_is_p_one_minus_p(rng):
    logits = rng.child("l").normal(size=(2, 3))
    targets = np.array([0, 1])
    loss = CrossEntropyLoss()
    loss(logits, targets)
    probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
    np.testing.assert_allclose(loss.second(), probs * (1 - probs) / 2,
                               rtol=1e-10)


def test_cross_entropy_numerical_stability():
    logits = np.array([[1000.0, -1000.0], [-1000.0, 1000.0]])
    targets = np.array([0, 1])
    loss = CrossEntropyLoss()
    value = loss(logits, targets)
    assert np.isfinite(value) and value == pytest.approx(0.0, abs=1e-8)
    assert np.all(np.isfinite(loss.backward()))
    assert np.all(np.isfinite(loss.second()))


def test_cross_entropy_input_validation(rng):
    loss = CrossEntropyLoss()
    with pytest.raises(ValueError, match="logits"):
        loss(np.zeros(3), np.zeros(3, dtype=np.int64))
    with pytest.raises(ValueError, match="targets"):
        loss(np.zeros((3, 2)), np.zeros(4, dtype=np.int64))
    with pytest.raises(RuntimeError, match="forward"):
        CrossEntropyLoss().backward()


def test_mse_gradient_and_second(rng):
    outputs = rng.child("o").normal(size=(4, 3))
    targets = rng.child("t").normal(size=(4, 3))
    loss = MSELoss()
    loss(outputs, targets)
    got_grad = loss.backward()
    got_curv = loss.second()
    want_grad, want_curv = _fd_on_logits(MSELoss(), outputs, targets, eps=1e-6)
    np.testing.assert_allclose(got_grad, want_grad, atol=1e-8)
    np.testing.assert_allclose(got_curv, want_curv, atol=1e-3)
    # Paper Sec. 3.3: for L2 loss the curvature seed is a constant.
    assert np.allclose(got_curv, got_curv.flat[0])


def test_mse_shape_validation():
    loss = MSELoss()
    with pytest.raises(ValueError, match="mismatch"):
        loss(np.zeros((2, 3)), np.zeros((3, 2)))
