"""The selection-planning engine and scenario orchestration.

Pins the subsystem's contracts: planned orders are exactly what the
inline sweep machinery would compute, a whole grid shares one curvature
pass (the ROADMAP's dominant-rank-cost item), warm caches reproduce cold
plans bitwise without running any pass, plans round-trip through JSON
and deploy onto accelerators, and parallel scenario execution is
byte-identical to serial.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.cim import CimAccelerator, MappingConfig, resolve_technology
from repro.core import (
    MagnitudeScorer,
    SwimScorer,
    WeightSpace,
    rank_descending,
    variance_map_from_stack,
)
from repro.plan import (
    PlanArtifactCache,
    PlanEngine,
    PlanRequest,
    SelectionPlan,
    load_plans,
    save_plans,
)
from repro.utils.rng import RngStream

ONE_HOUR = 3.6e3
ONE_MONTH = 2.592e6


@pytest.fixture()
def mini_zoo(trained_lenet):
    """A ZooModel-shaped wrapper around the shared test LeNet."""
    model, data, accuracy = trained_lenet
    return SimpleNamespace(
        model=model,
        data=data,
        clean_accuracy=accuracy,
        spec=SimpleNamespace(key="lenet-test", weight_bits=4),
    )


def _engine(mini_zoo, sense=128, **cache_kwargs):
    cache = PlanArtifactCache(disk=False, **cache_kwargs)
    return PlanEngine(
        mini_zoo.model,
        mini_zoo.data.train_x[:sense],
        mini_zoo.data.train_y[:sense],
        workload=mini_zoo.spec.key,
        cache=cache,
        curvature_batch_size=min(256, sense),
    )


class TestPlanResolution:
    def test_orders_match_inline_scoring(self, mini_zoo):
        """A planned grid point ranks exactly as the sweep machinery."""
        engine = _engine(mini_zoo)
        tech = resolve_technology("pcm")
        request = PlanRequest(
            methods=("swim", "hetero_swim", "magnitude", "random"),
            nwc_targets=(0.0, 0.3, 1.0),
            technology=tech,
            read_time=ONE_MONTH,
            weight_bits=4,
        )
        plan = engine.plan(request)

        model = mini_zoo.model
        space = WeightSpace.from_model(model)
        sense_x = mini_zoo.data.train_x[:128]
        sense_y = mini_zoo.data.train_y[:128]
        scorer = SwimScorer(batch_size=128, max_batches=2)
        curvature = scorer.scores(model, space, sense_x, sense_y)
        tie = scorer.tie_break(model, space)
        mapping = MappingConfig(weight_bits=4, device=tech.device_config())
        variance = variance_map_from_stack(
            space, model, mapping, tech.build_stack(), read_time=ONE_MONTH
        )
        assert np.array_equal(plan.order("swim"),
                              rank_descending(curvature, tie))
        assert np.array_equal(plan.order("hetero_swim"),
                              rank_descending(curvature * variance, tie))
        assert np.array_equal(
            plan.order("magnitude"),
            MagnitudeScorer().ranking(model, space, None, None),
        )
        assert "random" not in plan.orders  # re-drawn per trial, unplannable
        assert plan.counts == (0, round(0.3 * space.total_size),
                               space.total_size)

    def test_grid_shares_one_curvature_pass(self, mini_zoo):
        """A retention-style grid costs one rank pass, not one per point."""
        engine = _engine(mini_zoo)
        requests = [
            PlanRequest(
                methods=("swim", "hetero_swim"),
                nwc_targets=(0.1, 0.3, 0.5),
                technology="pcm",
                read_time=t,
            )
            for t in (1.0, ONE_HOUR, ONE_MONTH)
        ]
        plans = engine.plan_batch(requests)
        assert engine.stats["curvature_passes"] == 1
        assert engine.stats["variance_passes"] == 3  # one per read time
        assert len(plans) == 3
        # The swim ranking is drift-independent and shared; hetero_swim
        # responds to the read time.
        assert np.array_equal(plans[0].order("swim"), plans[2].order("swim"))

    def test_warm_cache_is_bitwise_and_passless(self, mini_zoo, tmp_path):
        """Cold and warm plans are bitwise-equal; warm runs zero passes."""
        requests = [
            PlanRequest(
                methods=("swim", "hetero_swim", "magnitude"),
                nwc_targets=(0.1, 0.3, 0.5, 0.9),
                technology="pcm-comp",
                read_time=t,
            )
            for t in (1.0, ONE_HOUR, ONE_MONTH)
        ]

        def build():
            return PlanEngine(
                mini_zoo.model,
                mini_zoo.data.train_x[:128],
                mini_zoo.data.train_y[:128],
                cache=PlanArtifactCache(root=str(tmp_path)),
                curvature_batch_size=128,
            )

        cold_engine = build()
        cold = cold_engine.plan_batch(requests)
        assert cold_engine.stats["curvature_passes"] == 1

        warm_engine = build()  # fresh memory tier: hits must come from disk
        warm = warm_engine.plan_batch(requests)
        assert warm_engine.stats["curvature_passes"] == 0
        assert warm_engine.stats["variance_passes"] == 0
        assert warm_engine.stats["ranking_passes"] == 0
        for before, after in zip(cold, warm):
            for method in before.orders:
                assert np.array_equal(before.order(method),
                                      after.order(method))

    def test_wear_consumed_feeds_the_curve(self, mini_zoo):
        request = PlanRequest(technology="rram", wear_consumed=0.5)
        tech = resolve_technology("rram")
        expected = tech.endurance_model().wear_inflation(0.5)
        assert request.effective_wear_inflation(tech) == pytest.approx(expected)
        assert expected > 1.0
        # The manual knob overrides the derived curve.
        manual = PlanRequest(technology="rram", wear_consumed=0.5,
                             wear_inflation=1.25)
        assert manual.effective_wear_inflation(tech) == 1.25


class TestSelectionPlanArtifact:
    def _plan(self, mini_zoo):
        engine = _engine(mini_zoo)
        return engine.plan(PlanRequest(
            methods=("swim", "magnitude"),
            nwc_targets=(0.0, 0.3, 1.0),
            technology="fefet",
            read_time=None,
        ))

    def test_json_round_trip_bitwise(self, mini_zoo, tmp_path):
        plan = self._plan(mini_zoo)
        path = save_plans(str(tmp_path / "plans.json"), {"cell": plan})
        loaded = load_plans(path)["'cell'"]
        assert isinstance(loaded, SelectionPlan)
        assert loaded.nwc_targets == plan.nwc_targets
        assert loaded.counts == plan.counts
        assert loaded.technology.name == "fefet"
        assert loaded.model == plan.model
        for method in plan.orders:
            assert np.array_equal(loaded.order(method), plan.order(method))
            assert loaded.order(method).dtype == np.int64

    def test_apply_deploys_the_planned_selection(self, mini_zoo):
        plan = self._plan(mini_zoo)
        accelerator = CimAccelerator(mini_zoo.model, technology="fefet")
        stream = RngStream(31).child("apply")
        accelerator.program(stream.child("program").generator)
        accelerator.write_verify_all(stream.child("verify").generator)

        nwc = plan.apply(accelerator, method="swim", nwc_target=0.3)
        space = WeightSpace.from_model(mini_zoo.model)
        expected = accelerator.apply_selection(
            space.masks_from_indices(plan.order("swim")[:plan.count_for(0.3)])
        )
        assert nwc == expected
        assert 0.0 < nwc < 1.0
        accelerator.clear()

    def test_apply_rejects_foreign_model(self, mini_zoo):
        plan = self._plan(mini_zoo)
        from repro.nn.models import mlp

        other = mlp(RngStream(3).child("mlp"), (64, 16, 4))
        accelerator = CimAccelerator(other, technology="fefet")
        accelerator.program(RngStream(4).generator)
        accelerator.write_verify_all(RngStream(5).generator)
        with pytest.raises(ValueError, match="weights"):
            plan.apply(accelerator, method="swim", nwc_target=0.3)

    def test_off_grid_budget_is_an_error(self, mini_zoo):
        plan = self._plan(mini_zoo)
        with pytest.raises(KeyError, match="grid"):
            plan.count_for(0.42)


class TestScenarioIntegration:
    def test_jobs_and_processes_combine_into_one_pool(self, mini_zoo):
        """Regression: ``jobs=2, processes=2`` used to raise (exit 64 at
        the CLI) because cell and trial pools could not nest.  The
        work-rectangle scheduler folds the pair into one 4-worker pool,
        so the combination now schedules and completes."""
        from repro.plan import ScenarioCell, ScenarioOrchestrator

        orchestrator = ScenarioOrchestrator(
            mini_zoo, eval_samples=32, sense_samples=64,
            cache=PlanArtifactCache(disk=False),
        )
        cells = [
            ScenarioCell(key=i,
                         request=PlanRequest(methods=("magnitude",),
                                             nwc_targets=(0.0, 0.5),
                                             sigma=0.1),
                         rng=RngStream(1).child("pool", i), mc_runs=1)
            for i in range(2)
        ]
        outcomes = orchestrator.run(cells, jobs=2, processes=2)
        assert set(outcomes) == {0, 1}
        report = orchestrator.report
        assert not report.failed
        assert report.tiles_total == 2
        assert report.tiles_computed == 2

    @pytest.mark.slow
    def test_retention_grid_runs_one_sensitivity_pass(self, monkeypatch):
        """Regression for the ROADMAP item: scenarios must not recompute
        the curvature flat vector per grid point.

        The sweep-side scorer is replaced with a tripwire (any use means
        a cell scored inline) and the engine-side scorer with a counter:
        a 2-read-time pcm grid with swim + hetero_swim must cost exactly
        one sensitivity pass for the whole scenario.
        """
        import repro.experiments.sweeps as sweeps
        import repro.plan.engine as plan_engine
        from repro.experiments.config import get_scale
        from repro.experiments.retention import run_retention

        class TripwireScorer:
            def __init__(self, *args, **kwargs):
                raise AssertionError(
                    "run_method_sweep computed a curvature pass despite "
                    "planned orders"
                )

        passes = []

        class CountingScorer(SwimScorer):
            def scores(self, *args, **kwargs):
                passes.append(1)
                return super().scores(*args, **kwargs)

        monkeypatch.setattr(sweeps, "SwimScorer", TripwireScorer)
        monkeypatch.setattr(plan_engine, "SwimScorer", CountingScorer)

        result = run_retention(
            get_scale("smoke"),
            technologies=("pcm",),
            times=(1.0, ONE_HOUR),
            methods=("swim", "hetero_swim"),
            plan_cache=PlanArtifactCache(disk=False),
        )
        assert len(passes) == 1
        assert set(result.outcomes) == {("pcm", 1.0), ("pcm", ONE_HOUR)}

    @pytest.mark.slow
    def test_parallel_cells_byte_identical_to_serial(self, tmp_path):
        """``jobs=2`` and the serial loop write identical scenario CSVs."""
        from repro.experiments.config import get_scale
        from repro.experiments.reporting import save_retention_csv
        from repro.experiments.retention import run_retention

        scale = get_scale("smoke")
        kwargs = dict(
            technologies=("pcm",),
            times=(1.0, ONE_HOUR),
            methods=("swim", "magnitude"),
        )
        # Separate in-memory caches: the parallel run must actually
        # compute its tiles, not replay the serial run's eval artifacts.
        serial = run_retention(
            scale, plan_cache=PlanArtifactCache(disk=False), **kwargs
        )
        parallel = run_retention(
            scale, workers=2, plan_cache=PlanArtifactCache(disk=False),
            **kwargs
        )
        serial_path = save_retention_csv(serial, str(tmp_path / "serial.csv"))
        parallel_path = save_retention_csv(
            parallel, str(tmp_path / "parallel.csv")
        )
        with open(serial_path, "rb") as handle:
            serial_bytes = handle.read()
        with open(parallel_path, "rb") as handle:
            parallel_bytes = handle.read()
        assert serial_bytes == parallel_bytes
