"""Bit-sliced weight mapping (Eqs. 14-16): roundtrips and noise statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cim.device import DeviceConfig
from repro.cim.mapping import MappingConfig, WeightMapper


def test_slice_roundtrip_exact():
    """slice_codes -> assemble_codes is the identity on noiseless levels."""
    config = MappingConfig(weight_bits=8, device=DeviceConfig(bits=4, sigma=0.0))
    mapper = WeightMapper(config)
    codes = np.array([-255, -128, -1, 0, 1, 77, 200, 255], dtype=np.int64)
    levels, signs = mapper.slice_codes(codes)
    assert levels.shape == (2, 8)
    recovered = mapper.assemble_codes(levels, signs)
    np.testing.assert_array_equal(recovered, codes)


def test_slice_values_match_eq14():
    """Eq. 14: each slice holds K consecutive bits of the magnitude."""
    config = MappingConfig(weight_bits=8, device=DeviceConfig(bits=4, sigma=0.0))
    mapper = WeightMapper(config)
    levels, signs = mapper.slice_codes(np.array([0xAB]))
    assert levels[0][0] == 0xB  # low nibble
    assert levels[1][0] == 0xA  # high nibble
    assert signs[0] == 1


def test_single_slice_when_bits_match():
    config = MappingConfig(weight_bits=4, device=DeviceConfig(bits=4))
    assert config.num_slices == 1
    np.testing.assert_array_equal(config.slice_weights, [1])


def test_num_slices_rounds_up():
    config = MappingConfig(weight_bits=6, device=DeviceConfig(bits=4))
    assert config.num_slices == 2


def test_codes_exceeding_magnitude_rejected():
    config = MappingConfig(weight_bits=4, device=DeviceConfig(bits=4))
    mapper = WeightMapper(config)
    with pytest.raises(ValueError, match="exceed"):
        mapper.slice_codes(np.array([16]))


def test_quantize_respects_qmax(rng):
    config = MappingConfig(weight_bits=4)
    mapper = WeightMapper(config)
    weights = rng.child("w").normal(size=1000)
    codes, scale = mapper.quantize(weights)
    assert np.abs(codes).max() <= config.qmax
    np.testing.assert_allclose(codes * scale, weights, atol=scale / 2 + 1e-12)


def test_zero_weights_keep_positive_sign():
    mapper = WeightMapper(MappingConfig(weight_bits=4))
    _, signs = mapper.slice_codes(np.array([0, -3, 3]))
    np.testing.assert_array_equal(signs, [1, -1, 1])


def test_code_noise_std_matches_eq16():
    """Closed form: sigma_lv * sqrt(sum 4^(iK))."""
    device = DeviceConfig(bits=4, sigma=0.1)
    config = MappingConfig(weight_bits=8, device=device)
    want = device.sigma_levels * np.sqrt(1.0 + 4.0 ** 4)
    assert config.code_noise_std() == pytest.approx(want)


def test_differential_doubles_variance():
    base = MappingConfig(weight_bits=4, device=DeviceConfig(bits=4, sigma=0.1))
    diff = MappingConfig(
        weight_bits=4, device=DeviceConfig(bits=4, sigma=0.1), differential=True
    )
    assert diff.code_noise_std() == pytest.approx(base.code_noise_std() * np.sqrt(2))


def test_relative_noise_std_close_to_sigma():
    """The MSB slice dominates: relative weight noise ~ device sigma."""
    for weight_bits, device_bits in [(4, 4), (8, 4), (6, 3), (12, 4)]:
        config = MappingConfig(
            weight_bits=weight_bits, device=DeviceConfig(bits=device_bits, sigma=0.1)
        )
        assert 0.08 <= config.relative_noise_std() <= 0.13, (
            f"M={weight_bits}, K={device_bits}: "
            f"{config.relative_noise_std():.4f}"
        )


def test_programmed_noise_statistics(rng):
    """Empirical std of mapped codes matches the Eq. 16 closed form."""
    device = DeviceConfig(bits=4, sigma=0.1)
    config = MappingConfig(weight_bits=8, device=device)
    mapper = WeightMapper(config)
    gen = rng.child("mc").generator
    codes = gen.integers(-255, 256, size=20000)
    mapped = mapper.map_tensor(codes / 255.0)
    programmed = mapper.program_levels(mapped, gen)
    noisy_codes = mapper.assemble_codes(programmed, mapped.signs)
    errors = noisy_codes - mapped.codes
    assert abs(errors.mean()) < 0.1
    assert errors.std() == pytest.approx(config.code_noise_std(), rel=0.05)


def test_readout_weights_ideal_when_sigma_zero(rng):
    config = MappingConfig(weight_bits=6, device=DeviceConfig(bits=3, sigma=0.0))
    mapper = WeightMapper(config)
    weights = rng.child("w").normal(size=(4, 5))
    mapped = mapper.map_tensor(weights)
    programmed = mapper.program_levels(mapped, rng.child("p").generator)
    readout = mapper.readout_weights(mapped, programmed)
    np.testing.assert_allclose(readout, mapper.ideal_weights(mapped))


@settings(max_examples=40, deadline=None)
@given(
    weight_bits=st.integers(min_value=2, max_value=12),
    device_bits=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_roundtrip_property(weight_bits, device_bits, seed):
    """Any code within range survives slice/assemble for any M, K combo."""
    config = MappingConfig(
        weight_bits=weight_bits, device=DeviceConfig(bits=device_bits, sigma=0.0)
    )
    mapper = WeightMapper(config)
    gen = np.random.default_rng(seed)
    codes = gen.integers(-config.qmax, config.qmax + 1, size=64)
    levels, signs = mapper.slice_codes(codes)
    assert levels.min() >= 0
    assert levels.max() <= config.device.max_level
    np.testing.assert_array_equal(mapper.assemble_codes(levels, signs), codes)


@settings(max_examples=25, deadline=None)
@given(
    sigma=st.floats(min_value=0.01, max_value=0.3),
    weight_bits=st.sampled_from([4, 6, 8]),
)
def test_noise_std_monotone_in_sigma(sigma, weight_bits):
    """Eq. 16 noise scales linearly with device sigma."""
    config_1 = MappingConfig(
        weight_bits=weight_bits, device=DeviceConfig(bits=4, sigma=sigma)
    )
    config_2 = MappingConfig(
        weight_bits=weight_bits, device=DeviceConfig(bits=4, sigma=2 * sigma)
    )
    assert config_2.code_noise_std() == pytest.approx(2 * config_1.code_noise_std())
