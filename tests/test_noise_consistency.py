"""Fast-path noise injection vs the honest device simulation.

The Monte Carlo drivers rely on two equivalences:

1. pre-write-verify: the closed-form Eq. 16 injection
   (:func:`repro.cim.noise.inject_code_noise`) matches per-device
   programming + readout statistically;
2. post-write-verify: the empirical :class:`ResidualModel` sampler matches
   the verify-loop residual distribution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cim import (
    DeviceConfig,
    MappingConfig,
    ResidualModel,
    WeightMapper,
    WriteVerifyConfig,
    inject_code_noise,
    inject_weight_noise,
    write_verify,
)


@pytest.fixture
def mapping():
    return MappingConfig(weight_bits=8, device=DeviceConfig(bits=4, sigma=0.1))


def test_pre_verify_fast_path_matches_simulation(mapping, rng):
    mapper = WeightMapper(mapping)
    gen = rng.child("sim").generator
    codes = gen.integers(-255, 256, size=30000)

    # Honest path: program each device, read back.
    mapped = mapper.map_tensor(codes / 255.0)
    programmed = mapper.program_levels(mapped, gen)
    honest = mapper.assemble_codes(programmed, mapped.signs) - mapped.codes

    # Fast path: closed-form Eq. 16.
    fast = inject_code_noise(mapped.codes, mapping, gen) - mapped.codes

    assert honest.std() == pytest.approx(fast.std(), rel=0.05)
    assert abs(honest.mean()) < 0.15 and abs(fast.mean()) < 0.15
    # Both are Gaussian-shaped: compare interquartile ranges too.
    assert np.percentile(np.abs(honest), 75) == pytest.approx(
        np.percentile(np.abs(fast), 75), rel=0.08
    )


def test_inject_weight_noise_scale(mapping, rng):
    gen = rng.child("w").generator
    weights = gen.normal(size=20000) * 0.25
    noisy = inject_weight_noise(weights, mapping, gen)
    mapper = WeightMapper(mapping)
    codes, scale = mapper.quantize(weights)
    errors = (noisy - codes * scale) / scale
    assert errors.std() == pytest.approx(mapping.code_noise_std(), rel=0.05)


def test_zero_sigma_fast_path_is_exact(rng):
    mapping = MappingConfig(weight_bits=4, device=DeviceConfig(bits=4, sigma=0.0))
    codes = np.array([-3, 0, 7])
    out = inject_code_noise(codes, mapping, rng.child("z").generator)
    np.testing.assert_array_equal(out, codes)


def test_residual_model_distribution_matches_fresh_simulation(rng):
    device = DeviceConfig(bits=4, sigma=0.1)
    wv = WriteVerifyConfig()
    model = ResidualModel.from_simulation(device, wv, n_devices=8192)

    gen = rng.child("fresh").generator
    targets = gen.uniform(0, device.max_level, size=20000)
    initial = device.program(targets, gen)
    fresh = write_verify(targets, initial, device, wv, gen)
    fresh_residuals = fresh.levels - targets

    sampled = model.sample_levels(20000, gen)
    assert sampled.std() == pytest.approx(fresh_residuals.std(), rel=0.1)
    assert np.percentile(sampled, 90) == pytest.approx(
        np.percentile(fresh_residuals, 90), rel=0.15
    )
    assert model.mean_cycles == pytest.approx(fresh.mean_cycles, rel=0.15)


def test_residual_apply_to_codes_combines_slices(rng):
    device = DeviceConfig(bits=4, sigma=0.1)
    mapping = MappingConfig(weight_bits=8, device=device)
    model = ResidualModel.from_simulation(device, n_devices=4096)
    gen = rng.child("apply").generator
    codes = np.zeros(30000, dtype=np.int64)
    out = model.apply_to_codes(codes, mapping, gen)
    # Residual std should compose like Eq. 16 with per-device residual std.
    per_device = model.residual_std_levels()
    want = per_device * np.sqrt(1.0 + 4.0 ** 4)
    assert out.std() == pytest.approx(want, rel=0.1)


def test_verified_weights_much_closer_than_unverified(mapping, rng):
    """End-to-end: the verified error is several times smaller (the whole
    point of write-verify)."""
    device = mapping.device
    gen = rng.child("e2e").generator
    mapper = WeightMapper(mapping)
    weights = gen.normal(size=5000) * 0.2
    mapped = mapper.map_tensor(weights)
    programmed = mapper.program_levels(mapped, gen)
    unverified_err = np.abs(
        mapper.readout_weights(mapped, programmed)
        - mapper.ideal_weights(mapped)
    )
    result = write_verify(
        mapped.levels, programmed, device, WriteVerifyConfig(), gen
    )
    verified_err = np.abs(
        mapper.readout_weights(mapped, result.levels)
        - mapper.ideal_weights(mapped)
    )
    assert verified_err.mean() < unverified_err.mean() * 0.6
