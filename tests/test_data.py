"""Synthetic datasets: shapes, determinism, learnability signals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DataSplit,
    render_digit,
    subsample,
    synthetic_cifar,
    synthetic_digits,
    synthetic_tiny_imagenet,
)
from repro.data.cifar import class_recipes
from repro.data.procedural import (
    SHAPES,
    draw_segment,
    gabor_texture,
    shape_mask,
)
from repro.utils.rng import RngStream


def test_digits_shapes_and_ranges(rng):
    data = synthetic_digits(n_train=100, n_test=40, rng=rng.child("d"))
    assert data.train_x.shape == (100, 1, 28, 28)
    assert data.test_x.shape == (40, 1, 28, 28)
    assert data.train_x.dtype == np.float32
    assert data.train_y.min() >= 0 and data.train_y.max() <= 9
    assert -1.01 <= data.train_x.min() and data.train_x.max() <= 1.01


def test_digits_deterministic(rng):
    a = synthetic_digits(n_train=30, n_test=10, rng=RngStream(5).child("d"))
    b = synthetic_digits(n_train=30, n_test=10, rng=RngStream(5).child("d"))
    np.testing.assert_array_equal(a.train_x, b.train_x)
    np.testing.assert_array_equal(a.train_y, b.train_y)


def test_digits_seed_changes_data():
    a = synthetic_digits(n_train=30, n_test=10, rng=RngStream(5).child("d"))
    b = synthetic_digits(n_train=30, n_test=10, rng=RngStream(6).child("d"))
    assert not np.array_equal(a.train_x, b.train_x)


def test_digits_balanced_classes(rng):
    data = synthetic_digits(n_train=200, n_test=50, rng=rng.child("d"))
    counts = np.bincount(data.train_y, minlength=10)
    assert counts.min() >= 18 and counts.max() <= 22


def test_render_digit_classes_differ(rng):
    one = render_digit(1, rng.child("a"))
    eight = render_digit(8, rng.child("b"))
    # An 8 lights every segment; a 1 only two — mass must differ a lot.
    assert eight.sum() > one.sum() * 1.5


def test_render_digit_validates_input(rng):
    with pytest.raises(ValueError, match="digit"):
        render_digit(10, rng)


def test_cifar_shapes(rng):
    data = synthetic_cifar(n_train=60, n_test=20, rng=rng.child("c"))
    assert data.train_x.shape == (60, 3, 32, 32)
    assert data.num_classes == 10
    assert data.name == "synthetic-cifar"


def test_cifar_recipes_distinct():
    recipes = class_recipes(10)
    assert len({(r["shape"], r["palette"], r["texture_theta"],
                 r["texture_freq"]) for r in recipes}) == 10


def test_tiny_imagenet_shapes(rng):
    data = synthetic_tiny_imagenet(n_train=40, n_test=20, rng=rng.child("t"))
    assert data.train_x.shape == (40, 3, 64, 64)
    assert data.num_classes == 20
    assert data.train_y.max() <= 19


def test_within_class_similarity_exceeds_between(rng):
    """Mean per-pixel distance within a class < between classes (a weak
    but necessary condition for learnability)."""
    data = synthetic_digits(n_train=300, n_test=10, rng=rng.child("d"))
    x = data.train_x.reshape(300, -1)
    y = data.train_y
    centroids = np.stack([x[y == c].mean(axis=0) for c in range(10)])
    within = np.mean([
        np.linalg.norm(x[y == c] - centroids[c], axis=1).mean()
        for c in range(10)
    ])
    between = np.mean([
        np.linalg.norm(centroids[c] - centroids[d])
        for c in range(10) for d in range(10) if c != d
    ])
    assert between > within * 0.5


def test_subsample_respects_sizes(rng):
    data = synthetic_digits(n_train=100, n_test=40, rng=rng.child("d"))
    small = subsample(data, n_train=30, n_test=10, rng=rng.child("s"))
    assert small.train_x.shape[0] == 30
    assert small.test_x.shape[0] == 10
    assert small.num_classes == data.num_classes


def test_shape_masks_nonempty_and_distinct():
    masks = {kind: shape_mask(kind, 32, 16, 16, 8) for kind in SHAPES}
    for kind, mask in masks.items():
        assert mask.sum() > 10, kind
    areas = {kind: int(mask.sum()) for kind, mask in masks.items()}
    assert len(set(areas.values())) >= 4  # mostly different footprints


def test_draw_segment_marks_line():
    canvas = np.zeros((16, 16))
    draw_segment(canvas, 2, 8, 13, 8, thickness=2.0)
    assert canvas[8, 2:13].min() > 0.5
    assert canvas[2, 2] == 0.0


def test_gabor_texture_range():
    tex = gabor_texture(32, frequency=0.1, theta=0.5)
    assert tex.min() >= 0.0 and tex.max() <= 1.0
    assert tex.std() > 0.1


def test_data_split_repr_and_image_shape(rng):
    data = synthetic_digits(n_train=10, n_test=5, rng=rng.child("d"))
    assert data.image_shape == (1, 28, 28)
    assert "synthetic-digits" in repr(data)
