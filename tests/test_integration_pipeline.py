"""End-to-end pipeline integration: train -> map -> SWIM -> deploy -> age.

One test walks the full public API exactly as a downstream user would,
asserting cross-module invariants that unit tests cannot see (cycle
accounting consistency, override hygiene, accuracy ordering).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cim import (
    CimAccelerator,
    CostModel,
    DeviceConfig,
    EnduranceModel,
    MappingConfig,
)
from repro.core import (
    SwimConfig,
    SwimScorer,
    WeightSpace,
    evaluate_accuracy,
    nwc_to_reach,
    selective_write_verify,
)
from repro.utils.rng import RngStream


def test_full_pipeline(trained_lenet):
    model, data, clean = trained_lenet
    rng = RngStream(909).child("pipeline")
    mapping = MappingConfig(weight_bits=4, device=DeviceConfig(bits=4, sigma=0.15))
    accelerator = CimAccelerator(model, mapping_config=mapping)

    # 1. Algorithm 1 meets a 3% target with a partial selection.
    result = selective_write_verify(
        model, accelerator, SwimScorer(max_batches=2),
        data.test_x[:200], data.test_y[:200],
        baseline_accuracy=clean,
        config=SwimConfig(delta_a=0.03, granularity=0.05),
        rng=rng,
        sense_x=data.train_x[:256], sense_y=data.train_y[:256],
    )
    assert result.met_target
    assert 0.0 <= result.achieved_nwc <= 1.0

    # 2. Cycle accounting is self-consistent: the achieved NWC equals
    #    selected cycles over this run's total.
    cycles = accelerator.weight_cycles()
    total = accelerator.total_cycles()
    assert total == sum(int(c.sum()) for c in cycles.values())

    # 3. The NWC trace is exploitable by the pareto tools.
    reach = nwc_to_reach(result.nwc_history, result.accuracy_history,
                         clean - 0.03)
    assert reach is not None and reach <= result.achieved_nwc + 1e-9

    # 4. Physical cost and wear reports are finite and sensible.
    report = CostModel().speedup_report(
        accelerator.num_weights(), max(result.achieved_nwc, 1e-3)
    )
    assert report["saved_seconds"] >= 0
    flat_cycles = np.concatenate([c.reshape(-1) for c in cycles.values()])
    mask = np.zeros(flat_cycles.size, dtype=bool)
    mask[: int(result.selected_fraction * flat_cycles.size)] = True
    wear = EnduranceModel().compare_selection(flat_cycles, mask)
    assert wear["lifetime_gain"] >= 1.0

    # 5. Deployed accuracy ordering: none <= partial (SWIM) <= all, up to
    #    noise slack on a single draw.
    accelerator.apply_none()
    floor = evaluate_accuracy(model, data.test_x[:200], data.test_y[:200])
    accelerator.apply_all()
    ceiling = evaluate_accuracy(model, data.test_x[:200], data.test_y[:200])
    assert result.achieved_accuracy >= floor - 0.02
    assert result.achieved_accuracy <= ceiling + 0.02

    # 6. Clearing restores the float model exactly.
    accelerator.clear()
    restored = evaluate_accuracy(model, data.test_x[:200], data.test_y[:200])
    assert restored == pytest.approx(
        evaluate_accuracy(model, data.test_x[:200], data.test_y[:200])
    )
    for layer in accelerator._layers.values():
        assert layer.weight_override is None
