"""The plan-serving layer's three contracts, end to end.

Warm-path fast serving (a cache hit never constructs an engine
resolution — the ``engine_resolutions`` tripwire stays flat and the
bytes are identical to a direct resolve), single-flight coalescing
(K identical concurrent requests cost exactly one resolution), and a
disciplined wire surface (single-line 400s, clean drain on the first
signal, forced exit-75 on the second).
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from types import SimpleNamespace

import pytest

from repro.plan import PlanArtifactCache, PlanEngine, PlanRequest
from repro.robustness.errors import TransientFaultError
from repro.serve import (
    PlanClient,
    PlanClientError,
    PlanHTTPServer,
    PlanRequestError,
    PlanService,
    parse_plan_request,
    plan_bytes,
)

ONE_HOUR = 3.6e3
ONE_MONTH = 2.592e6

BODY = {
    "methods": ["swim", "magnitude"],
    "nwc_targets": [0.0, 0.5],
    "technology": "pcm",
    "read_time": ONE_MONTH,
    "weight_bits": 4,
}


@pytest.fixture()
def mini_zoo(trained_lenet):
    """A ZooModel-shaped wrapper around the shared test LeNet."""
    model, data, accuracy = trained_lenet
    return SimpleNamespace(
        model=model,
        data=data,
        clean_accuracy=accuracy,
        spec=SimpleNamespace(key="lenet-test", weight_bits=4),
    )


def _engine(mini_zoo, sense=96, **cache_kwargs):
    cache_kwargs.setdefault("disk", False)
    return PlanEngine(
        mini_zoo.model,
        mini_zoo.data.train_x[:sense],
        mini_zoo.data.train_y[:sense],
        workload=mini_zoo.spec.key,
        cache=PlanArtifactCache(**cache_kwargs),
        curvature_batch_size=min(256, sense),
    )


def _body(**overrides):
    payload = {**BODY, **overrides}
    return json.dumps(payload).encode("utf-8")


# --------------------------------------------------------------------- codec


class TestCodec:
    def test_parse_round_trip(self):
        request = parse_plan_request(_body())
        assert isinstance(request, PlanRequest)
        assert request.methods == ("swim", "magnitude")
        assert request.nwc_targets == (0.0, 0.5)
        assert request.technology == "pcm"
        assert request.read_time == ONE_MONTH
        assert request.weight_bits == 4

    @pytest.mark.parametrize("body", [
        b"not json",
        b"[1, 2]",
        json.dumps({**BODY, "frobnicate": 1}).encode(),
        json.dumps({**BODY, "methods": ["random"]}).encode(),
        json.dumps({**BODY, "nwc_targets": [1.5]}).encode(),
        json.dumps({"methods": ["swim"], "read_time": ONE_HOUR}).encode(),
        json.dumps({**BODY, "weight_bits": 0}).encode(),
    ])
    def test_malformed_bodies_raise_single_line(self, body):
        with pytest.raises(PlanRequestError) as excinfo:
            parse_plan_request(body)
        assert "\n" not in str(excinfo.value)


# ------------------------------------------------------------------- service


class TestPlanService:
    def test_coalescing_single_flight(self, mini_zoo):
        """K identical concurrent requests: exactly one engine resolution."""
        service = PlanService(_engine(mini_zoo))
        try:
            async def burst():
                return await asyncio.gather(
                    *(service.plan(_body()) for _ in range(8))
                )

            served = asyncio.run(burst())
        finally:
            service.close()

        assert service.counters["engine_resolutions"] == 1
        sources = sorted(plan.source for plan in served)
        assert sources.count("cold") == 1
        assert sources.count("coalesced") == 7
        assert len({plan.data for plan in served}) == 1
        assert len({plan.key for plan in served}) == 1
        assert service.counters["requests"] == 8

    def test_warm_path_is_passless_and_byte_identical(self, mini_zoo, tmp_path):
        """A warm hit replays stored bytes without any engine pass."""
        root = str(tmp_path / "serve-cache")
        cold_service = PlanService(_engine(mini_zoo, disk=True, root=root))
        try:
            cold = asyncio.run(cold_service.plan(_body()))
        finally:
            cold_service.close()
        assert cold.source == "cold"

        # A fresh engine + service over the same cache root: the warm
        # request must not touch the engine at all.
        warm_service = PlanService(_engine(mini_zoo, disk=True, root=root))
        try:
            warm = asyncio.run(warm_service.plan(_body()))
            assert warm.source == "warm"
            assert warm.key == cold.key
            assert warm.data == cold.data
            assert warm_service.counters["engine_resolutions"] == 0
            assert all(v == 0 for v in warm_service.engine.stats.values())

            # ... and byte-identical to a direct PlanEngine resolution.
            direct = _engine(mini_zoo).plan(parse_plan_request(_body()))
            assert warm.data == plan_bytes(direct)

            # fetch() replays the same bytes, also passlessly.
            fetched = warm_service.fetch(warm.key)
            assert fetched == warm.data
            assert warm_service.fetch("0" * 32) is None
            assert warm_service.fetch("not-a-key") is None
            assert warm_service.counters["engine_resolutions"] == 0
        finally:
            warm_service.close()

    def test_distinct_requests_do_not_coalesce(self, mini_zoo):
        service = PlanService(_engine(mini_zoo))
        try:
            async def two():
                return await asyncio.gather(
                    service.plan(_body(read_time=ONE_HOUR)),
                    service.plan(_body(read_time=ONE_MONTH)),
                )

            first, second = asyncio.run(two())
        finally:
            service.close()
        assert first.key != second.key
        assert service.counters["engine_resolutions"] == 2

    def test_bad_request_counted_and_raised(self, mini_zoo):
        service = PlanService(_engine(mini_zoo))
        try:
            with pytest.raises(PlanRequestError):
                asyncio.run(service.plan(b"not json"))
        finally:
            service.close()
        assert service.counters["bad_requests"] == 1
        assert service.counters["requests"] == 0

    def test_stats_shares_the_cache_code_path(self, mini_zoo):
        """/statsz's cache section is PlanArtifactCache.stats verbatim."""
        service = PlanService(_engine(mini_zoo))
        try:
            asyncio.run(service.plan(_body()))
            asyncio.run(service.plan(_body()))
            stats = service.stats()
        finally:
            service.close()
        assert stats["cache"] == service.cache.stats()
        assert stats["requests"]["warm"] == 1
        assert stats["requests"]["cold"] == 1
        assert stats["in_flight_coalesced"] == 0
        warm = stats["latency_ms"]["warm"]
        assert warm["count"] == 1 and warm["p50_ms"] is not None


# ---------------------------------------------------------------------- HTTP


class _ServerThread:
    """Run a PlanHTTPServer on a daemon thread with an ephemeral port."""

    def __init__(self, service):
        self.server = PlanHTTPServer(service, port=0)
        self._ready = threading.Event()
        self._loop = None
        self.result = None
        self.error = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self):
        async def serve():
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            return await self.server.run(install_signals=False)

        try:
            self.result = asyncio.run(serve())
        except BaseException as exc:  # surfaced to the test thread
            self.error = exc
        finally:
            self._ready.set()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=60), "server never came up"
        if self.error is not None:
            raise self.error
        return self

    def signal(self):
        try:
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        except RuntimeError:
            pass  # loop already closed — the server is already down

    def join(self, timeout=60):
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "server did not shut down"

    def __exit__(self, *exc_info):
        if self._thread.is_alive():
            self.signal()
            self._thread.join(timeout=30)
        if self._thread.is_alive():
            self.signal()  # escalate: force-abandon the drain
            self._thread.join(timeout=60)

    @property
    def port(self):
        return self.server.port


class TestHTTP:
    @pytest.fixture()
    def served(self, mini_zoo):
        service = PlanService(_engine(mini_zoo))
        with _ServerThread(service) as running:
            with PlanClient(port=running.port) as client:
                yield SimpleNamespace(
                    client=client, running=running, service=service
                )

    def test_round_trip_and_warm_fetch(self, served):
        health = served.client.healthz()
        assert health["status"] == "ok"
        assert health["workload"] == "lenet-test"

        response = served.client.plan(BODY)
        assert response.source == "cold"
        assert re.fullmatch(r"[0-9a-f]{32}", response.key)
        assert response.plan["workload"] == "lenet-test"

        again = served.client.plan(BODY)
        assert again.source == "warm"
        assert again.data == response.data

        fetched = served.client.fetch(response.key)
        assert fetched.source == "warm"
        assert fetched.data == response.data
        assert served.client.fetch("0" * 32) is None

        stats = served.client.statsz()
        assert stats["requests"]["engine_resolutions"] == 1
        assert stats["requests"]["warm"] == 1
        # The cold resolve missed the plan artifact plus the engine's
        # stage artifacts; the warm hit added a memory hit, no misses.
        assert stats["cache"]["misses"] >= 1
        assert stats["cache"]["memory"] >= 1

    def test_malformed_body_is_single_line_400(self, served):
        with pytest.raises(PlanClientError) as excinfo:
            served.client.plan({"methods": ["random"]})
        assert excinfo.value.status == 400
        message = str(excinfo.value)
        assert "\n" not in message
        assert "Traceback" not in message

        with pytest.raises(PlanClientError) as excinfo:
            served.client.plan({**BODY, "frobnicate": 1})
        assert excinfo.value.status == 400

    def test_routing_errors(self, served):
        status, _, _ = served.client._request("GET", "/nope")
        assert status == 404
        status, _, _ = served.client._request("GET", "/v1/plan")
        assert status == 405
        status, _, _ = served.client._request("POST", "/healthz")
        assert status == 405

    def test_clean_drain_returns_zero(self, mini_zoo):
        service = PlanService(_engine(mini_zoo))
        with _ServerThread(service) as running:
            with PlanClient(port=running.port) as client:
                client.healthz()
            running.signal()
            running.join()
        assert running.error is None
        assert running.result == 0


class TestForcedShutdown:
    def test_second_signal_abandons_and_raises(self):
        """A stuck in-flight request: drain hangs, second signal forces."""
        class StuckService:
            def __init__(self):
                self.closed = False

            async def plan(self, body):
                await asyncio.sleep(3600)  # never finishes on its own

            def healthz(self):
                return {"status": "ok"}

            def close(self):
                self.closed = True

        service = StuckService()
        running = _ServerThread(service)
        with running:
            with PlanClient(port=running.port, timeout=5.0) as client:
                # Fire the stuck request from a helper thread; it will
                # die with a connection error when the server forces.
                def doomed():
                    try:
                        client.plan(BODY)
                    except PlanClientError:
                        pass

                poster = threading.Thread(target=doomed, daemon=True)
                poster.start()
                deadline = time.time() + 30
                while running.server._inflight == 0:
                    assert time.time() < deadline, "request never arrived"
                    time.sleep(0.01)

                running.signal()           # drain starts, hangs forever
                time.sleep(0.1)
                running.signal()           # force
                running._thread.join(timeout=60)
                poster.join(timeout=60)
        assert running.result is None
        assert isinstance(running.error, TransientFaultError)
        assert running.error.exit_code == 75
        assert "abandoned 1" in str(running.error)
        assert service.closed


# ----------------------------------------------------------------------- CLI


def test_unknown_workload_exits_64(capsys):
    from repro.experiments.runner import run

    code = run(["serve", "--workload", "nope", "--scale", "smoke"])
    assert code == 64
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "Traceback" not in err


def test_bad_port_exits_64(capsys):
    from repro.experiments.runner import run

    code = run(["serve", "--port", "99999", "--scale", "smoke"])
    assert code == 64


@pytest.mark.slow
class TestServeSubprocess:
    def _spawn(self, tmp_path, *extra):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        env.setdefault("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        return subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.runner", "serve",
             "--scale", "smoke", "--port", "0", *extra],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )

    def _await_port(self, proc):
        deadline = time.time() + 600
        lines = []
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            lines.append(line)
            match = re.search(r"\[serving http://[\d.]+:(\d+)\]", line)
            if match:
                return int(match.group(1)), lines
        proc.kill()
        pytest.fail("server never announced its port: " + "".join(lines)
                    + proc.stderr.read())

    def test_serve_round_trip_and_clean_sigterm(self, tmp_path):
        proc = self._spawn(tmp_path)
        try:
            port, _ = self._await_port(proc)
            with PlanClient(port=port, timeout=600) as client:
                assert client.healthz()["status"] == "ok"
                served = client.plan(BODY)
                assert served.source == "cold"
                warm = client.plan(BODY)
                assert warm.source == "warm"
                assert warm.data == served.data
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=120)
        except Exception:
            proc.kill()
            raise
        assert proc.returncode == 0, err[-2000:]
        assert "[drained: served 2 plan request(s)" in out
        assert "warm=1 cold=1" in out
